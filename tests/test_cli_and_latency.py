"""Unit tests for the CLI entry point and latency reporting."""

import pytest

from repro.__main__ import build_parser, main
from repro.clients.workload import percentiles


class TestPercentiles:
    def test_empty(self):
        assert percentiles([]) == {}

    def test_single_sample(self):
        assert percentiles([42.0]) == {"p50": 42.0, "p95": 42.0,
                                       "p99": 42.0, "p99.9": 42.0,
                                       "mean": 42.0}

    def test_ordering_irrelevant(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        out = percentiles(samples, points=(50,))
        assert out["p50"] == 3.0

    def test_p99_near_max(self):
        samples = list(range(1, 101))
        out = percentiles(samples)
        assert out["p99"] == 99
        assert out["p50"] == 50
        assert out["p99.9"] == 100
        assert out["mean"] == pytest.approx(50.5)


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.series == "udp"
        assert args.clients == [100]
        assert args.nice == -20
        assert args.jobs is None
        assert not args.no_cache

    def test_parser_accepts_multiple_client_counts(self):
        args = build_parser().parse_args(
            ["--clients", "100", "500", "1000", "--jobs", "4"])
        assert args.clients == [100, 500, 1000]
        assert args.jobs == 4

    def test_parser_rejects_unknown_series(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--series", "carrier-pigeon"])

    def test_cli_runs_a_tiny_cell(self, capsys):
        code = main(["--series", "udp", "--clients", "4",
                     "--measure-us", "50000", "--workers", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "transactions/s" in out

    def test_cli_profile_output(self, capsys):
        code = main(["--series", "udp", "--clients", "2",
                     "--measure-us", "30000", "--workers", "2",
                     "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "parse_msg" in out


def test_benchmark_result_carries_latency_percentiles():
    from repro import ProxyConfig, Testbed, Workload, build_proxy
    from repro.clients import BenchmarkManager
    bed = Testbed(seed=1)
    proxy = build_proxy(bed.server,
                        ProxyConfig(transport="udp", workers=4)).start()
    result = BenchmarkManager(
        bed, proxy, Workload(clients=4, warmup_us=20_000.0,
                             measure_us=60_000.0)).run()
    latency = result.setup_latency_us
    assert set(latency) == {"p50", "p95", "p99", "p99.9", "mean"}
    assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"] \
        <= latency["p99.9"]
    # Setup includes at least two network round trips through the proxy.
    assert latency["p50"] > 100.0
    # Processing latency (BYE round trip) is measured too, and is shorter
    # than setup (one round trip, no provisional responses).
    processing = result.processing_latency_us
    assert set(processing) == set(latency)
    assert 0 < processing["p50"] < latency["p50"]
