"""Unit tests for the simulated profiler and report rendering."""

import pytest

from repro.profiling.profiler import Profiler
from repro.profiling.report import ProfileReport, compare, top_functions
from repro.sim.engine import Engine


@pytest.fixture
def profiler(engine):
    return Profiler(engine)


def test_record_accumulates(profiler):
    profiler.record("parse", 10.0, "w0")
    profiler.record("parse", 5.0, "w1")
    profiler.record("send", 2.0, "w0")
    assert profiler.by_label["parse"] == 15.0
    assert profiler.total_us == 17.0
    assert profiler.by_process["w0"] == 12.0


def test_share(profiler):
    profiler.record("a", 30.0)
    profiler.record("b", 70.0)
    assert profiler.share("a") == pytest.approx(0.3)
    assert profiler.share("missing") == 0.0


def test_zero_and_negative_ignored(profiler):
    profiler.record("a", 0.0)
    profiler.record("a", -5.0)
    assert profiler.total_us == 0.0


def test_snapshot_delta(profiler):
    profiler.record("a", 10.0)
    snap = profiler.snapshot()
    profiler.record("a", 7.0)
    profiler.record("b", 3.0)
    delta = profiler.delta(snap)
    assert delta == {"a": 7.0, "b": 3.0}


def test_snapshot_delta_processes(profiler):
    profiler.record("a", 10.0, "w0")
    snap = profiler.snapshot_processes()
    profiler.record("a", 7.0, "w0")
    profiler.record("b", 3.0, "w1")
    assert profiler.delta_processes(snap) == {"w0": 7.0, "w1": 3.0}


def test_delta_raises_on_stale_snapshot(profiler):
    profiler.record("a", 10.0, "w0")
    labels = profiler.snapshot()
    procs = profiler.snapshot_processes()
    profiler.reset()
    profiler.record("a", 2.0, "w0")
    with pytest.raises(ValueError, match="stale"):
        profiler.delta(labels)
    with pytest.raises(ValueError, match="stale"):
        profiler.delta_processes(procs)


def test_reset(profiler):
    profiler.record("a", 10.0)
    profiler.reset()
    assert profiler.total_us == 0.0
    assert profiler.by_label == {}


def test_top_functions_ordering():
    samples = {"big": 50.0, "mid": 30.0, "small": 20.0}
    rows = top_functions(samples, n=2)
    assert [label for label, __, __ in rows] == ["big", "mid"]
    assert rows[0][2] == pytest.approx(0.5)


def test_top_functions_kernel_only():
    samples = {"parse": 80.0, "kernel.sched_yield": 15.0,
               "lock.t.spin": 5.0}
    rows = top_functions(samples, kernel_only=True)
    labels = [label for label, __, __ in rows]
    assert "parse" not in labels
    assert "kernel.sched_yield" in labels
    assert "lock.t.spin" in labels


def test_compare_shares():
    before = {"ipc": 12.0, "other": 88.0}
    after = {"ipc": 4.6, "other": 95.4}
    rows = dict((label, (b, a)) for label, b, a in
                compare(before, after, ["ipc"]))
    assert rows["ipc"][0] == pytest.approx(0.12)
    assert rows["ipc"][1] == pytest.approx(0.046)


def test_report_renders(profiler):
    profiler.record("parse_msg", 1000.0)
    profiler.record("udp_send", 500.0)
    text = ProfileReport(profiler.snapshot(), "test").render(5)
    assert "parse_msg" in text
    assert "66.7%" in text


def test_report_width_covers_header_with_short_labels(profiler):
    # Labels shorter than the "function" header must not skew columns.
    profiler.record("a", 10.0)
    header, *rows = ProfileReport(profiler.snapshot(), "t").render().split(
        "\n")[1:]
    assert header.index("cpu (ms)") > len("function")
    column = header.index("cpu (ms)") + len("cpu (ms)")
    for row in rows:
        assert len(row.split()[0]) <= header.index("cpu (ms)")
        assert row[:column].endswith(f"{10.0 / 1000.0:.2f}")
