"""End-to-end tests: TCP architecture (Fig. 1) and the §5 fixes."""

import pytest

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager

SMALL = dict(warmup_us=30_000.0, measure_us=100_000.0)


def run_tcp(clients=5, workers=4, seed=1, workload_extra=None, **config):
    bed = Testbed(seed=seed)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=workers, **config)).start()
    wl = dict(SMALL)
    wl.update(workload_extra or {})
    result = BenchmarkManager(bed, proxy, Workload(clients=clients, **wl)).run()
    return bed, proxy, result


def test_calls_complete_over_tcp():
    __, proxy, result = run_tcp()
    assert result.ops > 30
    assert result.calls_failed == 0
    assert proxy.stats.accepts == 10  # 5 callers + 5 callees connected
    assert proxy.stats.parse_errors == 0


def test_fd_requests_flow_through_supervisor():
    __, proxy, result = run_tcp(fd_cache=False)
    # Every cross-connection forward needs a descriptor round trip.
    assert proxy.stats.fd_requests > result.ops


@pytest.mark.slow


def test_fd_cache_eliminates_most_ipc():
    __, base_proxy, base = run_tcp(fd_cache=False, seed=5)
    __, cached_proxy, cached = run_tcp(fd_cache=True, seed=5)
    assert cached_proxy.stats.fd_requests < base_proxy.stats.fd_requests / 5
    assert cached_proxy.stats.fd_cache_hits > 0
    # And the throughput improves (Fig. 4).
    assert cached.throughput_ops_s > base.throughput_ops_s


def test_supervisor_at_nice0_is_slower():
    """§4.3: without the priority elevation the supervisor starves."""
    __, __, elevated = run_tcp(supervisor_nice=-20, workers=8, clients=10,
                               seed=7)
    __, __, starved = run_tcp(supervisor_nice=0, workers=8, clients=10,
                              seed=7)
    assert starved.throughput_ops_s < elevated.throughput_ops_s


@pytest.mark.slow


def test_tcp_slower_than_udp_baseline():
    from test_integration_udp import run_cell
    __, __, udp = run_cell(clients=10, workers=4)
    __, __, tcp = run_tcp(clients=10, workers=4)
    assert tcp.throughput_ops_s < udp.throughput_ops_s


def test_nonpersistent_connections_reconnect_and_relias():
    __, proxy, result = run_tcp(
        clients=5, workload_extra=dict(ops_per_conn=10,
                                       measure_us=300_000.0))
    # Phones opened fresh connections beyond the initial ten.
    assert proxy.stats.accepts > 10
    assert result.ops > 50
    # Calls continued to complete across reconnects.
    assert result.calls_failed <= result.calls_completed * 0.1 + 2


def test_idle_scan_examines_whole_population():
    __, proxy, __ = run_tcp(idle_strategy="scan")
    assert proxy.stats.idle_scans > 0
    assert proxy.stats.idle_scan_entries_examined >= \
        proxy.stats.idle_scans  # every pass touches every live conn


@pytest.mark.slow


def test_pq_touches_less_than_scan_under_churn():
    extra = dict(ops_per_conn=10, measure_us=300_000.0)
    __, scan_proxy, __ = run_tcp(idle_strategy="scan", seed=9,
                                 workload_extra=extra)
    __, pq_proxy, __ = run_tcp(idle_strategy="pq", seed=9,
                               workload_extra=extra)
    assert pq_proxy.stats.pq_operations < \
        scan_proxy.stats.idle_scan_entries_examined


def test_abandoned_connections_eventually_destroyed():
    bed = Testbed(seed=1)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=4, idle_timeout_us=100_000.0)).start()
    manager = BenchmarkManager(bed, proxy, Workload(
        clients=4, ops_per_conn=6, warmup_us=30_000.0,
        measure_us=400_000.0))
    manager.run()
    manager.stop()  # silence the phones so the backlog can drain
    # Releases now only happen on worker ticks (1 s): let a few elapse
    # so the two-phase teardown (§3.1) runs to completion.
    bed.engine.run(until=bed.engine.now + 3_000_000.0)
    assert proxy.stats.conns_released_by_worker > 0
    assert proxy.stats.conns_closed_idle > 0
    # The abandoned population drains to (at most) the live conns.
    assert len(proxy.conn_table) <= 8 + 4


def test_supervisor_counts_match_workers():
    __, proxy, __ = run_tcp()
    stats = proxy.stats
    assert stats.conns_created == stats.accepts + stats.outbound_connects


def test_worker_counts_exceeding_connections_is_fine():
    __, __, result = run_tcp(clients=2, workers=16)
    assert result.ops > 10
