"""The fault subsystem: plan DSL, injector, deadlock detector, watchdog.

Integration tests reuse the §6 wedge configuration from
test_integration_deadlock.py: tiny IPC buffers + blocking supervisor
sends under connection churn reliably form the supervisor↔worker cycle.
"""

import json

import pytest

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager
from repro.faults import (DeadlockDetector, FaultInjector, FaultPlan,
                          FaultPlanError, IpcStall, LatencyWindow, LossBurst,
                          Partition, Watchdog, WorkerCrash, WorkerHang)
from repro.faults.deadlock import _sccs


# ======================================================================
# plan DSL
# ======================================================================
def full_plan():
    return FaultPlan([
        LossBurst(start_us=10_000, duration_us=5_000, loss_rate=0.5),
        LatencyWindow(start_us=30_000, duration_us=5_000,
                      extra_latency_us=200.0, extra_jitter_us=50.0),
        Partition(start_us=50_000, duration_us=5_000, a="server",
                  b="client1"),
        WorkerCrash(start_us=70_000, worker=1),
        WorkerHang(start_us=80_000, duration_us=10_000, worker=2),
        IpcStall(start_us=90_000, duration_us=10_000, channel="assign"),
    ])


def test_plan_round_trips_through_json():
    plan = full_plan()
    payload = json.loads(json.dumps(plan.to_dict()))
    assert FaultPlan.from_dict(payload).to_dict() == plan.to_dict()


def test_plan_orders_events_by_start_time():
    plan = FaultPlan([WorkerCrash(start_us=500), WorkerCrash(start_us=100)])
    assert [event.start_us for event in plan] == [100, 500]


@pytest.mark.parametrize("events", [
    [LossBurst(start_us=-1, duration_us=5)],
    [LossBurst(start_us=0, duration_us=0)],
    [LossBurst(start_us=0, duration_us=5, loss_rate=1.5)],
    [LossBurst(start_us=0, duration_us=10),
     LossBurst(start_us=5, duration_us=10)],  # overlapping windows
    [LatencyWindow(start_us=0, duration_us=5)],  # no impairment
    [Partition(start_us=0, duration_us=5, a="x", b="x")],
    [IpcStall(start_us=0, duration_us=5, channel="bogus")],
    [WorkerHang(start_us=0, duration_us=5, worker=-1)],
])
def test_plan_validation_rejects(events):
    with pytest.raises(FaultPlanError):
        FaultPlan(events)


def test_from_dict_rejects_unknown_kinds_and_fields():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"events": [{"kind": "meteor", "start_us": 0}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"events": [
            {"kind": "worker-crash", "start_us": 0, "blast_radius": 3}]})


# ======================================================================
# injector: fabric-level windows
# ======================================================================
def test_injector_applies_and_reverts_fabric_windows():
    bed = Testbed(seed=1)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=2)).start()
    plan = FaultPlan([
        LossBurst(start_us=10_000, duration_us=20_000, loss_rate=0.9),
        LatencyWindow(start_us=40_000, duration_us=20_000,
                      extra_latency_us=300.0),
        Partition(start_us=70_000, duration_us=20_000,
                  a="server", b="client1"),
    ])
    injector = FaultInjector(bed, proxy, plan).arm(bed.engine.now)
    bed.engine.run(until=bed.engine.now + 15_000)
    assert bed.fabric.loss_rate == 0.9
    bed.engine.run(until=bed.engine.now + 20_000)
    assert bed.fabric.loss_rate == 0.0
    bed.engine.run(until=bed.engine.now + 15_000)   # t=50k
    assert bed.fabric.extra_latency_us == 300.0
    bed.engine.run(until=bed.engine.now + 25_000)   # t=75k
    assert bed.fabric.extra_latency_us == 0.0
    assert bed.fabric.partitioned("server", "client1")
    assert bed.fabric.partitioned("client1", "server")
    bed.engine.run(until=bed.engine.now + 20_000)   # t=95k
    assert not bed.fabric.partitioned("server", "client1")
    actions = [(entry["action"], entry["kind"]) for entry in injector.log]
    assert actions == [
        ("apply", "loss-burst"), ("revert", "loss-burst"),
        ("apply", "latency-window"), ("revert", "latency-window"),
        ("apply", "partition"), ("revert", "partition"),
    ]


def test_injector_rejects_nonexistent_worker():
    bed = Testbed(seed=1)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=2)).start()
    plan = FaultPlan([WorkerCrash(start_us=0, worker=99)])
    FaultInjector(bed, proxy, plan).arm(bed.engine.now)
    with pytest.raises(ValueError):
        bed.engine.run(until=bed.engine.now + 1_000)
    plan = FaultPlan([WorkerHang(start_us=0, duration_us=10, worker=99)])
    bed2 = Testbed(seed=1)
    proxy2 = build_proxy(bed2.server, ProxyConfig(
        transport="tcp", workers=2)).start()
    FaultInjector(bed2, proxy2, plan).arm(bed2.engine.now)
    with pytest.raises(FaultPlanError):
        bed2.engine.run(until=bed2.engine.now + 1_000)


# ======================================================================
# deadlock detector: graph mechanics on synthetic endpoints
# ======================================================================
class _StubEndpoint:
    def __init__(self):
        self.blocked_sending_since = None
        self.blocked_receiving_since = None


def test_sccs_finds_cycles_not_chains():
    assert _sccs({"a": {"b"}, "b": {"a"}}) == [frozenset({"a", "b"})]
    assert _sccs({"a": {"b"}, "b": {"c"}}) == []          # a chain
    assert _sccs({"a": {"a"}}) == [frozenset({"a"})]      # self-wait
    three = _sccs({"a": {"b"}, "b": {"c"}, "c": {"a"}})
    assert three == [frozenset({"a", "b", "c"})]


def test_detector_ignores_one_sided_backpressure(engine):
    """A supervisor blocked on a slow-but-runnable worker is not a
    deadlock: there is no edge back."""
    sup = _StubEndpoint()
    detector = DeadlockDetector(engine)
    detector.watch(sup, "supervisor", "worker-0")
    sup.blocked_sending_since = 0.0
    engine.run(until=1.0)
    assert detector.scan() == []
    assert detector.detections == []


def test_detector_fires_once_and_refires_after_dissolve(engine):
    sup, wrk = _StubEndpoint(), _StubEndpoint()
    detector = DeadlockDetector(engine)
    detector.watch(sup, "supervisor", "worker-0")
    detector.watch(wrk, "worker-0", "supervisor")
    sup.blocked_sending_since = 0.0
    wrk.blocked_receiving_since = 0.0
    engine.run(until=1.0)
    assert len(detector.scan()) == 1
    assert detector.scan() == []              # same cycle: no re-report
    wrk.blocked_receiving_since = None        # cycle dissolves...
    assert detector.scan() == []
    wrk.blocked_receiving_since = 0.5         # ...and re-forms
    assert len(detector.scan()) == 1
    assert len(detector.detections) == 2


def test_detector_min_blocked_filter(engine):
    sup, wrk = _StubEndpoint(), _StubEndpoint()
    detector = DeadlockDetector(engine, min_blocked_us=100.0)
    detector.watch(sup, "supervisor", "worker-0")
    detector.watch(wrk, "worker-0", "supervisor")
    sup.blocked_sending_since = 0.0
    wrk.blocked_receiving_since = 0.0
    engine.run(until=50.0)
    assert detector.scan() == []              # too young
    engine.run(until=200.0)
    assert len(detector.scan()) == 1


# ======================================================================
# the §6 cycle, end to end
# ======================================================================
def wedge_run(seed=11, watchdog=False):
    bed = Testbed(seed=seed)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=2, ipc_capacity=1,
        supervisor_blocking_send=True)).start()
    detector = DeadlockDetector(bed.engine).watch_proxy(proxy).start()
    dog = (Watchdog(proxy, detector=detector).start()
           if watchdog else None)
    workload = Workload(clients=12, ops_per_conn=2, warmup_us=50_000.0,
                        measure_us=400_000.0,
                        register_deadline_us=6_000_000.0)
    manager = BenchmarkManager(bed, proxy, workload)
    manager.setup_phones()
    try:
        result = manager.run()
        ops = result.ops
    except RuntimeError:
        ops = 0  # registration never completed: the server wedged
    bed.engine.run(until=bed.engine.now + 1_000_000.0)
    return bed, proxy, detector, dog, ops


def test_detector_fires_on_the_section6_cycle():
    bed, proxy, detector, __, __ = wedge_run()
    assert len(detector.detections) == 1
    record = detector.detections[0]
    assert "supervisor" in record["members"]
    assert any(m.startswith("worker-") for m in record["members"])
    # Detection lag is bounded by one scan period: the cycle's youngest
    # edge formed within period_us of the detection timestamp... plus
    # the worker->supervisor edge may predate it, which blocked_us
    # reflects (it measures the *youngest* edge).
    assert record["blocked_us"] <= detector.period_us


def test_detection_timestamp_is_deterministic():
    first = wedge_run()[2].detections
    second = wedge_run()[2].detections
    assert first == second


def test_detector_quiet_on_healthy_run():
    """Ample buffers: blocking sends cause only transient backpressure,
    which must produce zero detections."""
    bed = Testbed(seed=11)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=2, ipc_capacity=256,
        supervisor_blocking_send=True)).start()
    detector = DeadlockDetector(bed.engine).watch_proxy(proxy).start()
    workload = Workload(clients=8, ops_per_conn=2, warmup_us=50_000.0,
                        measure_us=200_000.0,
                        register_deadline_us=6_000_000.0)
    manager = BenchmarkManager(bed, proxy, workload)
    manager.setup_phones()
    result = manager.run()
    assert result.ops > 0
    assert detector.scans > 0
    assert detector.detections == []


def test_watchdog_recovers_the_section6_deadlock():
    bed, proxy, detector, dog, ops = wedge_run(watchdog=True)
    assert ops > 0, "watchdog failed to unwedge the server"
    assert any(r["reason"] == "deadlock" for r in dog.restarts)
    assert proxy.stats.workers_restarted >= 1
    # The supervisor is no longer blocked on any assign channel.
    assert all(chan.a.blocked_sending_since is None
               for chan in proxy.assign_chans)


# ======================================================================
# watchdog: crash and hang recovery through run_cell
# ======================================================================
def crash_spec(watchdog, **overrides):
    from repro.analysis.experiments import ExperimentSpec
    plan = FaultPlan([WorkerCrash(start_us=150_000.0, worker=0)])
    kw = dict(series="tcp-persistent", clients=16, seed=3, workers=4,
              warmup_us=200_000.0, measure_us=600_000.0,
              sip_t1_us=20_000.0, offered_cps=400.0, sample_us=10_000.0,
              scale_windows=False, fault_plan=plan.to_dict(),
              detect_deadlocks=True, watchdog=watchdog)
    kw.update(overrides)
    return ExperimentSpec(**kw)


def test_worker_crash_with_watchdog_restarts_and_redispatches():
    from repro.analysis.experiments import run_cell
    result = run_cell(crash_spec(watchdog=True, fd_cache=True))
    faults = result.faults
    assert [e["kind"] for e in faults["injected"]] == ["worker-crash"]
    restarts = faults["restarts"]
    assert len(restarts) == 1 and restarts[0]["reason"] == "crash"
    assert restarts[0]["redispatched"] > 0
    # The replacement worker got a fresh process slot and fd cache.
    proxy = result.proxy
    assert proxy.stats.workers_restarted == 1
    assert all(proc.alive for __, proc in proxy.worker_processes())
    assert proxy.fd_caches[0] is not None


def test_worker_crash_without_watchdog_loses_goodput():
    """The crashed worker's share of round-robin assignments stays dark
    without recovery; with the watchdog the loss is repaired."""
    from repro.analysis.experiments import run_cell
    from repro.obs.metrics import series_window_mean

    def post_over_pre(result):
        t0, t_end = result.metrics["window_us"]
        pre = series_window_mean(result.metrics, "client_goodput_cps",
                                 from_us=t0, to_us=t0 + 150_000.0)
        post = series_window_mean(result.metrics, "client_goodput_cps",
                                  from_us=t0 + 350_000.0, to_us=t_end)
        return post / pre

    unprotected = post_over_pre(run_cell(crash_spec(watchdog=False)))
    protected = post_over_pre(run_cell(crash_spec(watchdog=True)))
    assert unprotected < 0.8
    assert protected >= 0.9
    assert protected > unprotected


def test_worker_hang_is_detected_and_restarted():
    from repro.analysis.experiments import run_cell
    plan = FaultPlan([WorkerHang(start_us=150_000.0, duration_us=500_000.0,
                                 worker=1)])
    result = run_cell(crash_spec(watchdog=True, fault_plan=plan.to_dict(),
                                 measure_us=800_000.0))
    restarts = result.faults["restarts"]
    assert any(r["reason"] == "hang" for r in restarts)
    assert result.calls_completed > 0


def test_udp_worker_crash_restart():
    from repro.analysis.experiments import ExperimentSpec, run_cell
    plan = FaultPlan([WorkerCrash(start_us=100_000.0, worker=2)])
    result = run_cell(ExperimentSpec(
        series="udp", clients=16, seed=3, workers=6,
        warmup_us=150_000.0, measure_us=400_000.0, sip_t1_us=20_000.0,
        offered_cps=400.0, sample_us=10_000.0, scale_windows=False,
        fault_plan=plan.to_dict(), watchdog=True))
    restarts = result.faults["restarts"]
    assert len(restarts) == 1 and restarts[0]["reason"] == "crash"
    assert result.proxy.stats.workers_restarted == 1
    assert result.calls_completed > 0


def test_ipc_stall_wedges_and_recovers():
    """Stalling a worker's assign channel mimics a wedged socketpair;
    unstalling wakes the blocked parties and traffic resumes."""
    from repro.analysis.experiments import run_cell
    plan = FaultPlan([IpcStall(start_us=150_000.0, duration_us=100_000.0,
                               channel="assign", worker=0)])
    result = run_cell(crash_spec(watchdog=False,
                                 fault_plan=plan.to_dict()))
    actions = [(e["action"], e["kind"]) for e in result.faults["injected"]]
    assert actions == [("apply", "ipc-stall"), ("revert", "ipc-stall")]
    assert result.calls_completed > 0


# ======================================================================
# the figure (slow acceptance)
# ======================================================================
@pytest.mark.slow
def test_fig_faults_recovery_ratio(tmp_path):
    """Acceptance: with the watchdog a worker-crash run recovers to
    >= 90% of pre-fault goodput; without it, it does not."""
    from repro.analysis.cache import ResultCache
    from repro.analysis.faults import render_faults_figure, run_faults_figure

    data = run_faults_figure(clients=16, workers=4, seed=3,
                             cache=ResultCache(tmp_path / "cache"))
    cells = data["grid"]["tcp-persistent"]
    on, off = cells["watchdog-on"], cells["watchdog-off"]
    assert on["recovery_ratio"] >= 0.9
    assert off["recovery_ratio"] < on["recovery_ratio"]
    assert len(on["restarts"]) == 1
    assert on["restarts"][0]["reason"] == "crash"
    text = render_faults_figure(data)
    assert "watchdog-on" in text and "worker-crash" in text


@pytest.mark.slow
def test_fig_faults_cli_smoke(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out_json = tmp_path / "faults.json"
    assert main(["fig-faults", "--smoke", "--workers", "4", "--seed", "3",
                 "--json", str(out_json), "--jobs", "1"]) == 0
    data = json.loads(out_json.read_text())
    assert data["grid"]["tcp-persistent"]["watchdog-on"]["recovery_ratio"] \
        >= 0.9
    assert "recovery" in capsys.readouterr().out
