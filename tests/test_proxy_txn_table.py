"""Unit tests for the shared transaction table and timer list."""

import pytest

from repro.sim.engine import Engine
from repro.proxy.costs import CostModel
from repro.proxy.txn_table import ProxyTransaction, TimerList, TransactionTable

from conftest import drive


def make_txn(branch="z9hG4bK-pxy-1", upstream=("z9hG4bKcaller", "INVITE"),
             method="INVITE"):
    return ProxyTransaction(
        upstream_key=upstream, our_branch=branch, method=method,
        source=("client1", 20000), forward_target=None,
        forwarded_text="INVITE ...", created_at=0.0)


@pytest.fixture
def table():
    return TransactionTable(CostModel(), buckets=64)


class TestTransactionTable:
    def test_insert_and_lookup_both_indexes(self, engine, table):
        txn = make_txn()
        drive(engine, table.insert(txn))
        assert drive(engine, table.lookup_upstream(txn.upstream_key)) is txn
        assert drive(engine, table.lookup_branch(txn.our_branch)) is txn
        assert len(table) == 1

    def test_lookup_miss_returns_none(self, engine, table):
        assert drive(engine, table.lookup_branch("nope")) is None
        assert drive(engine, table.lookup_upstream(("x", "BYE"))) is None

    def test_update_sets_fields(self, engine, table):
        txn = make_txn()
        drive(engine, table.insert(txn))
        drive(engine, table.update(txn, responded=True,
                                   last_response_text="200 OK"))
        assert txn.responded
        assert txn.last_response_text == "200 OK"

    def test_remove_clears_both_indexes(self, engine, table):
        txn = make_txn()
        drive(engine, table.insert(txn))
        drive(engine, table.remove(txn))
        assert len(table) == 0
        assert drive(engine, table.lookup_branch(txn.our_branch)) is None
        assert drive(engine, table.lookup_upstream(txn.upstream_key)) is None

    def test_operations_charge_cpu(self, engine, table):
        drive(engine, table.insert(make_txn()))
        assert engine.now > 0.0

    def test_probe_cost_grows_with_load(self, engine):
        costs = CostModel()
        small = costs.txn_probe_cost(0, 64)
        large = costs.txn_probe_cost(640, 64)
        assert large > small

    def test_peak_size_tracked(self, engine, table):
        for i in range(5):
            drive(engine, table.insert(make_txn(branch=f"b{i}",
                                                upstream=(f"u{i}", "INVITE"))))
        drive(engine, table.remove(
            drive(engine, table.lookup_branch("b0"))))
        assert table.peak_size == 5


class TestTimerList:
    def test_insert_and_pop_expired(self, engine):
        timers = TimerList(CostModel())
        drive(engine, timers.insert(100.0, "rtx", "b1"))
        drive(engine, timers.insert(200.0, "gc", "b2"))
        out = drive(engine, timers.pop_expired(150.0, limit=10))
        assert out == [("rtx", "b1")]
        out = drive(engine, timers.pop_expired(250.0, limit=10))
        assert out == [("gc", "b2")]

    def test_pop_respects_limit(self, engine):
        timers = TimerList(CostModel())
        for i in range(5):
            drive(engine, timers.insert(10.0, "rtx", f"b{i}"))
        out = drive(engine, timers.pop_expired(100.0, limit=2))
        assert len(out) == 2
        assert len(timers) == 3

    def test_pop_orders_by_deadline(self, engine):
        timers = TimerList(CostModel())
        drive(engine, timers.insert(300.0, "rtx", "late"))
        drive(engine, timers.insert(100.0, "rtx", "early"))
        out = drive(engine, timers.pop_expired(1000.0, limit=10))
        assert [branch for __, branch in out] == ["early", "late"]

    def test_nothing_expired(self, engine):
        timers = TimerList(CostModel())
        drive(engine, timers.insert(1000.0, "rtx", "b"))
        assert drive(engine, timers.pop_expired(10.0, limit=10)) == []
