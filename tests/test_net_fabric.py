"""Unit tests for the LAN fabric."""

import pytest

from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.net.fabric import Fabric

from conftest import make_lan


def test_delivery_after_latency_plus_serialization(engine):
    fabric, __ = make_lan(engine, ["a", "b"], latency_us=50.0)
    arrived = []
    fabric.deliver("a", "b", 125, arrived.append, engine)
    engine.run()
    # 125 bytes at 125 B/us = 1us serialization + 50us latency.
    assert engine.now == pytest.approx(51.0)
    assert arrived == [engine]


def test_egress_serialization_queues_packets(engine):
    fabric, __ = make_lan(engine, ["a", "b"], latency_us=0.0)
    times = []
    for __ in range(3):
        fabric.deliver("a", "b", 1250, lambda: times.append(engine.now))
    engine.run()
    # Each 1250B packet takes 10us on the wire; they serialize.
    assert times == [pytest.approx(10.0), pytest.approx(20.0),
                     pytest.approx(30.0)]


def test_different_senders_do_not_serialize(engine):
    fabric, __ = make_lan(engine, ["a", "b", "c"], latency_us=0.0)
    times = []
    fabric.deliver("a", "c", 1250, lambda: times.append(("a", engine.now)))
    fabric.deliver("b", "c", 1250, lambda: times.append(("b", engine.now)))
    engine.run()
    assert dict(times) == {"a": pytest.approx(10.0), "b": pytest.approx(10.0)}


def test_unknown_destination_raises(engine):
    fabric, __ = make_lan(engine, ["a"])
    with pytest.raises(KeyError):
        fabric.deliver("a", "nowhere", 100, lambda: None)


def test_duplicate_machine_name_rejected(engine):
    fabric, machines = make_lan(engine, ["a"])
    with pytest.raises(ValueError):
        fabric.attach(machines["a"])


def test_loss_rate_drops_packets(engine):
    rng = RngStreams(seed=7).stream("net")
    fabric = Fabric(engine, latency_us=0.0, loss_rate=0.5, rng=rng)
    from repro.kernel.machine import Machine
    for name in ("a", "b"):
        fabric.attach(Machine(engine, name))
    delivered = []
    for __ in range(200):
        fabric.deliver("a", "b", 100, delivered.append, 1)
    engine.run()
    assert fabric.packets_lost > 50
    assert len(delivered) == 200 - fabric.packets_lost


def test_statistics(engine):
    fabric, __ = make_lan(engine, ["a", "b"])
    fabric.deliver("a", "b", 100, lambda: None)
    fabric.deliver("a", "b", 200, lambda: None)
    assert fabric.packets_sent == 2
    assert fabric.bytes_sent == 300


def test_lost_packets_still_consume_egress(engine):
    """Loss happens at the switch, after the NIC: a dropped frame still
    serialized, so the next packet departs later and the sent counters
    include it."""
    rng = RngStreams(seed=7).stream("net")
    fabric = Fabric(engine, latency_us=0.0, loss_rate=1.0, rng=rng)
    from repro.kernel.machine import Machine
    for name in ("a", "b"):
        fabric.attach(Machine(engine, name))
    for __ in range(3):
        fabric.deliver("a", "b", 1250, lambda: None)  # 10us each, all lost
    assert fabric.packets_lost == 3
    assert fabric.packets_sent == 3
    assert fabric.bytes_sent == 3750
    fabric.loss_rate = 0.0
    times = []
    fabric.deliver("a", "b", 1250, lambda: times.append(engine.now))
    engine.run()
    # 4th frame queued behind the three lost ones: departs at 40us.
    assert times == [pytest.approx(40.0)]


def test_jitter_never_reorders_a_pair(engine):
    rng = RngStreams(seed=3).stream("net")
    fabric = Fabric(engine, latency_us=50.0, jitter_us=500.0, rng=rng)
    from repro.kernel.machine import Machine
    for name in ("a", "b"):
        fabric.attach(Machine(engine, name))
    arrivals = []
    for i in range(100):
        fabric.deliver("a", "b", 1, lambda i=i: arrivals.append(
            (i, engine.now)))
    engine.run()
    assert [i for i, __ in arrivals] == list(range(100))
    times = [t for __, t in arrivals]
    assert times == sorted(times)


def test_jitter_floor_is_per_pair(engine):
    """One pair's jittered arrival must not delay another pair."""
    rng = RngStreams(seed=3).stream("net")
    fabric = Fabric(engine, latency_us=10.0, rng=rng)
    from repro.kernel.machine import Machine
    for name in ("a", "b", "c"):
        fabric.attach(Machine(engine, name))
    fabric.extra_jitter_us = 10_000.0
    fabric.deliver("a", "b", 1, lambda: None)  # raises a->b floor only
    fabric.extra_jitter_us = 0.0
    times = []
    fabric.deliver("a", "c", 1, lambda: times.append(engine.now))
    engine.run()
    assert times[0] < 100.0


def test_partition_drops_and_heals(engine):
    fabric, __ = make_lan(engine, ["a", "b"], latency_us=0.0)
    delivered = []
    fabric.partition("a", "b")
    assert fabric.partitioned("a", "b") and fabric.partitioned("b", "a")
    fabric.deliver("a", "b", 1250, delivered.append, "cut")
    fabric.deliver("b", "a", 1250, delivered.append, "cut-back")
    engine.run()
    assert delivered == []
    assert fabric.packets_partitioned == 2
    assert fabric.packets_lost == 2
    assert fabric.packets_sent == 2  # the NIC still transmitted them
    fabric.heal("a", "b")
    fabric.deliver("a", "b", 1250, delivered.append, "healed")
    engine.run()
    assert delivered == ["healed"]
    # Egress consumed by the partitioned frame: 10us + 10us serialization.
    assert engine.now == pytest.approx(20.0)
