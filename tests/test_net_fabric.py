"""Unit tests for the LAN fabric."""

import pytest

from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.net.fabric import Fabric

from conftest import make_lan


def test_delivery_after_latency_plus_serialization(engine):
    fabric, __ = make_lan(engine, ["a", "b"], latency_us=50.0)
    arrived = []
    fabric.deliver("a", "b", 125, arrived.append, engine)
    engine.run()
    # 125 bytes at 125 B/us = 1us serialization + 50us latency.
    assert engine.now == pytest.approx(51.0)
    assert arrived == [engine]


def test_egress_serialization_queues_packets(engine):
    fabric, __ = make_lan(engine, ["a", "b"], latency_us=0.0)
    times = []
    for __ in range(3):
        fabric.deliver("a", "b", 1250, lambda: times.append(engine.now))
    engine.run()
    # Each 1250B packet takes 10us on the wire; they serialize.
    assert times == [pytest.approx(10.0), pytest.approx(20.0),
                     pytest.approx(30.0)]


def test_different_senders_do_not_serialize(engine):
    fabric, __ = make_lan(engine, ["a", "b", "c"], latency_us=0.0)
    times = []
    fabric.deliver("a", "c", 1250, lambda: times.append(("a", engine.now)))
    fabric.deliver("b", "c", 1250, lambda: times.append(("b", engine.now)))
    engine.run()
    assert dict(times) == {"a": pytest.approx(10.0), "b": pytest.approx(10.0)}


def test_unknown_destination_raises(engine):
    fabric, __ = make_lan(engine, ["a"])
    with pytest.raises(KeyError):
        fabric.deliver("a", "nowhere", 100, lambda: None)


def test_duplicate_machine_name_rejected(engine):
    fabric, machines = make_lan(engine, ["a"])
    with pytest.raises(ValueError):
        fabric.attach(machines["a"])


def test_loss_rate_drops_packets(engine):
    rng = RngStreams(seed=7).stream("net")
    fabric = Fabric(engine, latency_us=0.0, loss_rate=0.5, rng=rng)
    from repro.kernel.machine import Machine
    for name in ("a", "b"):
        fabric.attach(Machine(engine, name))
    delivered = []
    for __ in range(200):
        fabric.deliver("a", "b", 100, delivered.append, 1)
    engine.run()
    assert fabric.packets_lost > 50
    assert len(delivered) == 200 - fabric.packets_lost


def test_statistics(engine):
    fabric, __ = make_lan(engine, ["a", "b"])
    fabric.deliver("a", "b", 100, lambda: None)
    fabric.deliver("a", "b", 200, lambda: None)
    assert fabric.packets_sent == 2
    assert fabric.bytes_sent == 300
