"""Regression tests for the parallel experiment runner and result cache.

The contract the rest of the project builds on:

- serial (``jobs=1``) and parallel (``jobs=4``) execution of the same
  spec grid produce byte-identical results;
- a cache hit returns the identical result without re-execution;
- duplicate specs in one batch are computed once;
- cache keys capture everything result-affecting (spec fields and
  ``REPRO_SCALE``) and nothing else.
"""

import dataclasses
import json

import pytest

from repro.analysis import ExperimentSpec, ResultCache, run_cells, spec_key
from repro.analysis.cache import SCHEMA_VERSION, spec_payload
from repro.clients.workload import BenchmarkResult


def tiny_grid():
    """A small multi-cell grid (UDP cells keep this suite fast)."""
    return [ExperimentSpec(series="udp", clients=count, workers=2,
                           warmup_us=10_000.0, measure_us=30_000.0, seed=1)
            for count in (2, 3, 4, 5)]


def canonical(outcomes):
    return [json.dumps(dataclasses.asdict(outcome.result), sort_keys=True)
            for outcome in outcomes]


class TestRunner:
    def test_parallel_matches_serial_byte_identical(self, tmp_path):
        serial = run_cells(tiny_grid(), jobs=1,
                           cache=ResultCache(tmp_path / "serial"))
        parallel = run_cells(tiny_grid(), jobs=4,
                             cache=ResultCache(tmp_path / "parallel"))
        assert canonical(serial) == canonical(parallel)
        assert not any(outcome.cached for outcome in serial)
        assert not any(outcome.cached for outcome in parallel)

    def test_results_in_input_order(self, tmp_path):
        specs = tiny_grid()
        outcomes = run_cells(specs, jobs=4, cache=ResultCache(tmp_path))
        assert [outcome.spec.clients for outcome in outcomes] == \
            [spec.clients for spec in specs]

    def test_runs_without_a_cache(self):
        outcomes = run_cells(tiny_grid()[:1], jobs=1, cache=None)
        assert outcomes[0].result.ops > 0
        assert not outcomes[0].cached

    def test_duplicate_specs_computed_once(self, tmp_path):
        spec = tiny_grid()[0]
        outcomes = run_cells([spec, spec, spec], jobs=1,
                             cache=ResultCache(tmp_path))
        assert len(ResultCache(tmp_path)) == 1
        first, *rest = canonical(outcomes)
        assert all(other == first for other in rest)

    def test_elapsed_recorded_for_computed_cells(self, tmp_path):
        outcomes = run_cells(tiny_grid()[:1], jobs=1,
                             cache=ResultCache(tmp_path))
        assert outcomes[0].elapsed_s > 0


class TestCacheHits:
    def test_cache_hit_skips_reexecution(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_cells(tiny_grid(), jobs=1, cache=cache)
        again = run_cells(tiny_grid(), jobs=1, cache=cache)
        assert all(outcome.cached for outcome in again)
        # elapsed==0 is the per-cell-timing proof nothing re-ran.
        assert all(outcome.elapsed_s == 0.0 for outcome in again)
        assert canonical(first) == canonical(again)

    def test_parallel_run_reuses_serial_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_cells(tiny_grid(), jobs=1, cache=cache)
        again = run_cells(tiny_grid(), jobs=4, cache=cache)
        assert all(outcome.cached for outcome in again)
        assert canonical(first) == canonical(again)

    def test_clear_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells(tiny_grid()[:2], jobs=1, cache=cache)
        assert cache.clear() == 2
        outcomes = run_cells(tiny_grid()[:2], jobs=1, cache=cache)
        assert not any(outcome.cached for outcome in outcomes)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_grid()[0]
        run_cells([spec], jobs=1, cache=cache)
        key = spec_key(spec)
        cache._path(key).write_text("{not json")
        outcomes = run_cells([spec], jobs=1, cache=cache)
        assert not outcomes[0].cached


class TestSpecKeys:
    def test_key_is_stable(self):
        spec = ExperimentSpec(series="tcp-50", clients=100)
        assert spec_key(spec) == spec_key(
            ExperimentSpec(series="tcp-50", clients=100))

    def test_key_covers_every_spec_field(self):
        base = spec_key(ExperimentSpec())
        assert spec_key(ExperimentSpec(seed=2)) != base
        assert spec_key(ExperimentSpec(fd_cache=True)) != base
        assert spec_key(ExperimentSpec(config_overrides={"port": 5080})) \
            != base

    def test_key_covers_repro_scale(self, monkeypatch):
        spec = ExperimentSpec()
        base = spec_key(spec)
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert spec_key(spec) != base

    def test_payload_embeds_schema_version(self):
        assert spec_payload(ExperimentSpec())["schema"] == SCHEMA_VERSION

    def test_unserializable_spec_is_uncacheable(self):
        spec = ExperimentSpec(config_overrides={"hook": object()})
        assert spec_key(spec) is None
        assert ResultCache().get(None) is None  # uncacheable → always miss


class TestSerializableResults:
    def test_runner_results_carry_server_summaries(self, tmp_path):
        spec = ExperimentSpec(series="tcp-persistent", clients=4, workers=4,
                              warmup_us=50_000.0, measure_us=100_000.0)
        cache = ResultCache(tmp_path)
        fresh = run_cells([spec], jobs=1, cache=cache)[0].result
        cached = run_cells([spec], jobs=1, cache=cache)[0].result
        for result in (fresh, cached):
            assert result.proxy_totals["messages_received"] > 0
            assert result.open_conns > 0
        assert fresh.proxy_totals == cached.proxy_totals
