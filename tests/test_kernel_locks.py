"""Unit tests for spinlocks and kernel mutexes."""

import pytest

from repro.sim.engine import Engine
from repro.sim.primitives import Compute
from repro.sim.process import SimProcess
from repro.kernel.locks import KMutex, SpinLock
from repro.kernel.scheduler import Scheduler

from conftest import run_until_done


def test_spinlock_uncontended_acquire_release(engine):
    lock = SpinLock("t")

    def body():
        yield from lock.acquire("p")
        assert lock.held
        lock.release()

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert not lock.held
    assert lock.acquisitions == 1
    assert lock.contentions == 0


def test_spinlock_mutual_exclusion(engine):
    lock = SpinLock("t")
    in_section = []
    overlaps = []

    def body(tag):
        yield from lock.acquire(tag)
        if in_section:
            overlaps.append((tag, list(in_section)))
        in_section.append(tag)
        yield Compute(50.0, "critical")
        in_section.remove(tag)
        lock.release()

    procs = [SimProcess(engine, body(i), f"p{i}").start() for i in range(4)]
    run_until_done(engine, procs)
    assert overlaps == []
    assert lock.acquisitions == 4


def test_spinlock_contention_burns_cpu_on_scheduler(engine):
    """Contended spinlocks spin and sched_yield — with two cores, the
    waiters burn real CPU while the holder works."""
    sched = Scheduler(engine, n_cores=2, quantum_us=1000.0, ctx_switch_us=0.0)
    lock = SpinLock("t", spin_us=0.5, spins_before_yield=8)

    def body(tag):
        yield from lock.acquire(tag)
        yield Compute(200.0, "critical")
        lock.release()

    procs = [sched.spawn(body(i), f"p{i}").start() for i in range(3)]
    run_until_done(engine, procs)
    # Critical sections serialize: at least 600us of lock-held time.
    assert engine.now > 600.0
    assert lock.contentions >= 1
    # The waiters' spinning consumed CPU beyond the critical sections.
    assert sched.total_busy_us() > 600.0 + 1.0


def test_spinlock_release_unheld_raises():
    lock = SpinLock("t")
    with pytest.raises(RuntimeError):
        lock.release()


def test_kmutex_blocks_instead_of_spinning(engine):
    mutex = KMutex(engine, "m", acquire_us=0.0)
    order = []

    def holder():
        yield from mutex.acquire("holder")
        yield Compute(100.0, "work")
        order.append(("holder-done", engine.now))
        mutex.release()

    def waiter():
        yield Compute(1.0, "startup")
        yield from mutex.acquire("waiter")
        order.append(("waiter-in", engine.now))
        mutex.release()

    h = SimProcess(engine, holder(), "h").start()
    w = SimProcess(engine, waiter(), "w").start()
    run_until_done(engine, [h, w])
    times = dict(order)
    assert times["waiter-in"] >= times["holder-done"]
    assert mutex.contentions == 1


def test_kmutex_fifo_handoff(engine):
    mutex = KMutex(engine, "m", acquire_us=0.0)
    order = []

    def body(tag, delay):
        yield Compute(delay, "startup")
        yield from mutex.acquire(tag)
        order.append(tag)
        yield Compute(10.0, "cs")
        mutex.release()

    procs = [SimProcess(engine, body(i, i * 0.1), f"p{i}").start()
             for i in range(4)]
    run_until_done(engine, procs)
    assert order == [0, 1, 2, 3]


def test_kmutex_release_unheld_raises(engine):
    mutex = KMutex(engine, "m")
    with pytest.raises(RuntimeError):
        mutex.release()
