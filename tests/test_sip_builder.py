"""Unit tests for message construction."""

import random

import pytest

from repro.sip.builder import MessageBuilder
from repro.sip.dialogs import Dialog
from repro.sip.parser import parse_message


@pytest.fixture
def alice():
    return MessageBuilder("alice", "example.com", "client1", 40000, "udp",
                          random.Random(1))


@pytest.fixture
def bob():
    return MessageBuilder("bob", "example.com", "client2", 40001, "udp",
                          random.Random(2))


def test_register_shape(alice):
    register = alice.register()
    assert register.method == "REGISTER"
    assert register.uri.host == "example.com"
    assert register.to_addr.uri.aor == "alice@example.com"
    assert register.contact.uri.host == "client1"
    assert register.get("Expires") == "3600"
    parse_message(register.render())  # round-trips


def test_invite_shape(alice):
    invite = alice.invite("bob")
    assert invite.method == "INVITE"
    assert invite.uri.aor == "bob@example.com"
    assert invite.from_addr.tag is not None
    assert invite.to_addr.tag is None
    assert invite.top_via.branch.startswith("z9hG4bK")
    assert invite.body.startswith("v=0")
    assert invite.content_length == len(invite.body)
    assert invite.get("Content-Type") == "application/sdp"


def test_invite_is_realistic_size(alice):
    # Real SIP INVITEs run a few hundred bytes to ~1KB.
    size = alice.invite("bob").wire_size
    assert 300 <= size <= 1000


def test_fresh_identifiers_per_invite(alice):
    first = alice.invite("bob")
    second = alice.invite("bob")
    assert first.call_id != second.call_id
    assert first.top_via.branch != second.top_via.branch
    assert first.cseq.number != second.cseq.number


def test_deterministic_given_same_seed():
    a1 = MessageBuilder("a", "d", "h", 1, "udp", random.Random(9))
    a2 = MessageBuilder("a", "d", "h", 1, "udp", random.Random(9))
    assert a1.invite("b").render() == a2.invite("b").render()


def test_response_for_echoes_routing_headers(alice, bob):
    invite = alice.invite("bob")
    ringing = bob.response_for(invite, 180, to_tag="bobtag")
    assert ringing.status == 180
    assert ringing.get("Via") == invite.get("Via")
    assert ringing.get("From") == invite.get("From")
    assert ringing.call_id == invite.call_id
    assert ringing.to_addr.tag == "bobtag"
    assert ringing.cseq.method == "INVITE"


def test_response_with_contact(alice, bob):
    invite = alice.invite("bob")
    ok = bob.response_for(invite, 200, to_tag="t", with_contact=True)
    assert ok.contact.uri.host == "client2"


def test_ack_matches_invite_dialog(alice, bob):
    invite = alice.invite("bob")
    ok = bob.response_for(invite, 200, to_tag="bobtag", with_contact=True)
    ack = alice.ack_for(invite, ok)
    assert ack.method == "ACK"
    assert ack.call_id == invite.call_id
    assert ack.cseq.number == invite.cseq.number
    assert ack.cseq.method == "ACK"
    assert ack.get("To") == ok.get("To")
    assert ack.uri.host == "client2"  # routed to the contact
    # New branch per RFC 3261 §17.1.1.3 for 2xx ACK.
    assert ack.top_via.branch != invite.top_via.branch


def test_bye_from_dialog(alice, bob):
    invite = alice.invite("bob")
    ok = bob.response_for(invite, 200, to_tag="bobtag", with_contact=True)
    dialog = Dialog.from_invite_success(invite, ok)
    bye = alice.bye(dialog)
    assert bye.method == "BYE"
    assert bye.call_id == invite.call_id
    assert bye.from_addr.tag == invite.from_addr.tag
    assert bye.to_addr.tag == "bobtag"
    assert bye.cseq.number > invite.cseq.number


def test_dialog_from_both_sides_share_key(alice, bob):
    invite = alice.invite("bob")
    ok = bob.response_for(invite, 200, to_tag="bobtag", with_contact=True)
    caller_dialog = Dialog.from_invite_success(invite, ok)
    callee_dialog = Dialog.from_uas_invite(invite, "bobtag")
    assert caller_dialog.key == callee_dialog.key
