"""The §6 deadlock, reproduced in the full TCP architecture.

"When a worker process requests a connection from the supervisor process,
it then blocks waiting to receive that file descriptor.  If, at the same
time, the supervisor process blocks waiting to send a new connection to
the same worker (since the buffer at the receiver is full), the two
processes will deadlock.  Once the supervisor process deadlocks, no other
worker can make progress either."
"""

import pytest

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager


def build(bed, blocking_send, ipc_capacity, workers=2):
    return build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=workers,
        ipc_capacity=ipc_capacity,
        supervisor_blocking_send=blocking_send)).start()


def attempt_run(blocking_send, ipc_capacity, seed=11):
    bed = Testbed(seed=seed)
    proxy = build(bed, blocking_send, ipc_capacity)
    workload = Workload(clients=12, ops_per_conn=2,
                        warmup_us=50_000.0, measure_us=400_000.0,
                        register_deadline_us=3_000_000.0)
    manager = BenchmarkManager(bed, proxy, workload)
    manager.setup_phones()
    try:
        result = manager.run()
        ops = result.ops
    except RuntimeError:
        # Registration never completed: the server wedged early.
        ops = 0
    return bed, proxy, ops


def supervisor_wedged(proxy):
    return any(chan.a.blocked_sending_since is not None
               for chan in proxy.assign_chans)


def test_tiny_buffers_with_blocking_sends_deadlock():
    bed, proxy, ops = attempt_run(blocking_send=True, ipc_capacity=1)
    # Let plenty of time pass; a healthy server would be making progress.
    bed.engine.run(until=bed.engine.now + 2_000_000.0)
    assert supervisor_wedged(proxy)
    blocked_worker = any(chan.a.blocked_receiving_since is not None
                         for chan in proxy.req_chans)
    assert blocked_worker


@pytest.mark.slow


def test_ample_buffers_do_not_deadlock():
    bed, proxy, ops = attempt_run(blocking_send=True, ipc_capacity=256)
    assert ops > 0
    assert not supervisor_wedged(proxy)


@pytest.mark.slow


def test_nonblocking_supervisor_survives_tiny_buffers():
    """The defensive alternative: shed assignments instead of blocking."""
    bed, proxy, ops = attempt_run(blocking_send=False, ipc_capacity=1)
    bed.engine.run(until=bed.engine.now + 1_000_000.0)
    assert not supervisor_wedged(proxy)
