"""Unit tests for the transport-independent proxy core."""

import random

import pytest

from repro.sim.engine import Engine
from repro.proxy.config import ProxyConfig
from repro.proxy.core import ProxyCore
from repro.proxy.costs import CostModel
from repro.proxy.routing import ToBinding, ToSource
from repro.proxy.stats import ProxyStats
from repro.proxy.txn_table import TimerList, TransactionTable
from repro.sip.builder import MessageBuilder
from repro.sip.location import LocationService
from repro.sip.parser import parse_message

from conftest import drive


def make_core(engine, transport="udp", stateful=True):
    config = ProxyConfig(transport=transport, workers=2, stateful=stateful)
    costs = CostModel()
    location = LocationService()
    stats = ProxyStats()
    core = ProxyCore(engine, config, costs, location,
                     TransactionTable(costs), TimerList(costs), stats,
                     via_host="server")
    return core


def alice(transport="udp"):
    return MessageBuilder("alice", "example.com", "client1", 20000,
                          transport, random.Random(1))


def bob(transport="udp"):
    return MessageBuilder("bob", "example.com", "client2", 40000,
                          transport, random.Random(2))


def register(engine, core, builder, source):
    return drive(engine, core.process(builder.register().render(), source))


class TestRegister:
    def test_register_creates_binding_and_replies_200(self, engine):
        core = make_core(engine)
        actions = register(engine, core, bob(), ("client2", 40000))
        assert len(actions) == 1
        reply = parse_message(actions[0].text)
        assert reply.status == 200
        assert isinstance(actions[0].target, ToSource)
        binding = core.location.lookup("bob@example.com")
        assert binding is not None
        assert binding.addr == "client2"
        assert binding.port == 40000

    def test_register_contact_hook_for_tcp(self, engine):
        core = make_core(engine, transport="tcp")
        register(engine, core, bob("tcp"), "conn-record")
        assert core.take_register_contact() == ("client2", 40000)
        assert core.take_register_contact() is None  # one-shot

    def test_tcp_register_stores_source_conn(self, engine):
        core = make_core(engine, transport="tcp")
        source = object()
        register(engine, core, bob("tcp"), source)
        assert core.location.lookup("bob@example.com").conn is source


class TestInvite:
    def setup_call(self, engine, core):
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        actions = drive(engine, core.process(invite.render(),
                                             ("client1", 20000)))
        return invite, actions

    def test_stateful_invite_sends_trying_and_forwards(self, engine):
        core = make_core(engine)
        __, actions = self.setup_call(engine, core)
        assert len(actions) == 2
        trying = parse_message(actions[0].text)
        assert trying.status == 100
        forwarded = parse_message(actions[1].text)
        assert forwarded.method == "INVITE"
        assert isinstance(actions[1].target, ToBinding)
        assert actions[1].target.binding.aor == "bob@example.com"

    def test_forwarded_invite_gets_our_via_and_decremented_max_forwards(
            self, engine):
        core = make_core(engine)
        invite, actions = self.setup_call(engine, core)
        forwarded = parse_message(actions[1].text)
        vias = forwarded.vias
        assert len(vias) == 2
        assert vias[0].host == "server"
        assert vias[1].host == "client1"
        assert forwarded.max_forwards == invite.max_forwards - 1

    def test_stateless_invite_skips_trying(self, engine):
        core = make_core(engine, stateful=False)
        __, actions = self.setup_call(engine, core)
        assert len(actions) == 1
        assert parse_message(actions[0].text).method == "INVITE"

    def test_unknown_callee_gets_404(self, engine):
        core = make_core(engine)
        invite = alice().invite("nobody")
        actions = drive(engine, core.process(invite.render(),
                                             ("client1", 20000)))
        finals = [parse_message(a.text) for a in actions]
        assert finals[-1].status == 404
        assert core.stats.routing_failures == 1

    def test_max_forwards_zero_gets_483(self, engine):
        core = make_core(engine)
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        invite.set("Max-Forwards", "0")
        actions = drive(engine, core.process(invite.render(),
                                             ("client1", 20000)))
        assert parse_message(actions[-1].text).status == 483

    def test_retransmitted_invite_absorbed_with_last_response(self, engine):
        core = make_core(engine)
        invite, __ = self.setup_call(engine, core)
        actions = drive(engine, core.process(invite.render(),
                                             ("client1", 20000)))
        # The stateful proxy replays the TRYING, and does NOT forward again.
        assert len(actions) == 1
        assert parse_message(actions[0].text).status == 100
        assert core.stats.retransmissions_absorbed == 1

    def test_duplicate_invite_after_completion_absorbed_within_linger(
            self, engine):
        """A duplicate branch arriving *after* the final response but
        inside GC_LINGER_US must hit the lingering transaction: the 200
        is replayed from state, nothing is re-routed, and the proxy
        counts an absorption, not a new transaction."""
        from repro.proxy.core import GC_LINGER_US

        core = make_core(engine)
        invite, actions = self.setup_call(engine, core)
        forwarded = parse_message(actions[1].text)
        ok = bob().response_for(forwarded, 200, to_tag="bt")
        drive(engine, core.process(ok.render(), ("client2", 40000)))
        assert core.stats.invite_completed == 1
        created_before = core.stats.transactions_created

        engine.run(until=engine.now + GC_LINGER_US / 2.0)
        actions = drive(engine, core.process(invite.render(),
                                             ("client1", 20000)))
        assert core.stats.retransmissions_absorbed == 1
        assert core.stats.transactions_created == created_before
        # The best (final) response is replayed to the caller; the callee
        # never sees the duplicate.
        assert len(actions) == 1
        replay = parse_message(actions[0].text)
        assert replay.status == 200
        assert isinstance(actions[0].target, ToSource)
        assert actions[0].target.source == ("client1", 20000)

    def test_retransmission_timer_armed_for_udp_only(self, engine):
        core = make_core(engine, transport="udp")
        self.setup_call(engine, core)
        assert len(core.timer_list) == 1
        core_tcp = make_core(engine, transport="tcp")
        register(engine, core_tcp, bob("tcp"), "conn")
        invite = alice("tcp").invite("bob")
        drive(engine, core_tcp.process(invite.render(), "conn"))
        assert len(core_tcp.timer_list) == 0


class TestResponseRelay:
    def relay_response(self, engine, core, status=200):
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        actions = drive(engine, core.process(invite.render(),
                                             ("client1", 20000)))
        forwarded = parse_message(actions[1].text)
        response = bob().response_for(forwarded, status, to_tag="bt")
        return drive(engine, core.process(response.render(),
                                          ("client2", 40000)))

    def test_response_pops_our_via_and_goes_to_caller(self, engine):
        core = make_core(engine)
        actions = self.relay_response(engine, core)
        assert len(actions) == 1
        relayed = parse_message(actions[0].text)
        assert relayed.status == 200
        assert len(relayed.vias) == 1
        assert relayed.top_via.host == "client1"
        assert isinstance(actions[0].target, ToSource)
        assert actions[0].target.source == ("client1", 20000)

    def test_final_response_completes_transaction(self, engine):
        core = make_core(engine)
        self.relay_response(engine, core, status=200)
        assert core.stats.invite_completed == 1
        assert core.stats.transactions_completed == 1

    def test_provisional_response_does_not_complete(self, engine):
        core = make_core(engine)
        self.relay_response(engine, core, status=180)
        assert core.stats.transactions_completed == 0

    def test_stray_response_dropped(self, engine):
        core = make_core(engine)
        response = bob().response_for(alice().invite("bob"), 200)
        actions = drive(engine, core.process(response.render(),
                                             ("client2", 40000)))
        assert actions == []
        assert core.stats.routing_failures == 1


class TestByeAndAck:
    def test_bye_routed_to_contact_uri_directly(self, engine):
        core = make_core(engine)
        bye = alice().invite("bob")  # craft a BYE at bob's contact
        from repro.sip.message import SipRequest
        from repro.sip.uri import SipUri
        bye = SipRequest("BYE", SipUri.parse("sip:bob@client2:40000"))
        bye.add("Via", "SIP/2.0/UDP client1:20000;branch=z9hG4bKbye1")
        bye.add("Max-Forwards", "70")
        bye.add("From", "<sip:alice@example.com>;tag=a")
        bye.add("To", "<sip:bob@example.com>;tag=b")
        bye.add("Call-ID", "c1")
        bye.add("CSeq", "2 BYE")
        bye.add("Content-Length", "0")
        actions = drive(engine, core.process(bye.render(),
                                             ("client1", 20000)))
        assert len(actions) == 1  # no TRYING for non-INVITE
        target = actions[0].target
        assert isinstance(target, ToBinding)
        assert target.binding.addr == "client2"
        assert target.binding.port == 40000

    def test_ack_forwarded_statelessly(self, engine):
        core = make_core(engine)
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        drive(engine, core.process(invite.render(), ("client1", 20000)))
        created = core.stats.transactions_created
        ok = bob().response_for(invite, 200, to_tag="bt", with_contact=True)
        ack = alice().ack_for(invite, ok)
        actions = drive(engine, core.process(ack.render(),
                                             ("client1", 20000)))
        assert len(actions) == 1
        assert parse_message(actions[0].text).method == "ACK"
        assert core.stats.transactions_created == created  # stateless


class TestTimerPass:
    def test_unanswered_invite_retransmitted(self, engine):
        core = make_core(engine)
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        drive(engine, core.process(invite.render(), ("client1", 20000)))
        engine.run(until=engine.now + 600_000.0)  # past T1
        actions = drive(engine, core.timer_pass())
        assert len(actions) == 1
        assert actions[0].kind == "retransmit"
        assert core.stats.retransmissions_sent == 1

    def test_answered_invite_not_retransmitted(self, engine):
        core = make_core(engine)
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        fwd = drive(engine, core.process(invite.render(),
                                         ("client1", 20000)))
        response = bob().response_for(parse_message(fwd[1].text), 200,
                                      to_tag="bt")
        drive(engine, core.process(response.render(), ("client2", 40000)))
        engine.run(until=engine.now + 600_000.0)
        actions = drive(engine, core.timer_pass())
        assert actions == []

    def test_gc_removes_completed_transaction(self, engine):
        core = make_core(engine)
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        fwd = drive(engine, core.process(invite.render(),
                                         ("client1", 20000)))
        response = bob().response_for(parse_message(fwd[1].text), 200,
                                      to_tag="bt")
        drive(engine, core.process(response.render(), ("client2", 40000)))
        assert len(core.txn_table) == 1
        engine.run(until=engine.now + 2_000_000.0)  # past GC linger
        drive(engine, core.timer_pass())
        assert len(core.txn_table) == 0

    def test_retransmissions_give_up_after_64_t1(self, engine):
        core = make_core(engine)
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        drive(engine, core.process(invite.render(), ("client1", 20000)))
        # Walk sim time forward well past 64*T1 running timer passes.
        for __ in range(80):
            engine.run(until=engine.now + 500_000.0)
            drive(engine, core.timer_pass())
        assert core.stats.transactions_timed_out == 1
        assert len(core.txn_table) == 0


class TestMalformed:
    def test_garbage_counts_parse_error(self, engine):
        core = make_core(engine)
        actions = drive(engine, core.process("NOT SIP\r\n\r\n",
                                             ("client1", 20000)))
        assert actions == []
        assert core.stats.parse_errors == 1

    def test_unsupported_method_gets_501(self, engine):
        core = make_core(engine)
        from repro.sip.message import SipRequest
        from repro.sip.uri import SipUri
        options = SipRequest("OPTIONS", SipUri.parse("sip:example.com"))
        options.add("Via", "SIP/2.0/UDP client1:20000;branch=z9hG4bKopt")
        options.add("Call-ID", "c")
        options.add("CSeq", "1 OPTIONS")
        options.add("Content-Length", "0")
        actions = drive(engine, core.process(options.render(),
                                             ("client1", 20000)))
        assert parse_message(actions[0].text).status == 501
