"""Unit tests for the O(1)-scheduler interactivity model (§4.3)."""

import pytest

from repro.sim.engine import Engine
from repro.sim.primitives import Compute, Sleep
from repro.kernel.scheduler import Scheduler

from conftest import run_until_done


def make_sched(engine, cores=1, o1=True, timeslice=50_000.0, park=100_000.0):
    return Scheduler(engine, n_cores=cores, ctx_switch_us=0.0,
                     o1_model=o1, o1_timeslice_us=timeslice,
                     o1_park_us=park)


def cpu_hog(rounds=20, burst=20_000.0, nap=100.0):
    def body():
        for __ in range(rounds):
            yield Compute(burst, "work")
            yield Sleep(nap)
    return body()


def interactive(rounds=50, burst=1_000.0, nap=9_000.0):
    def body():
        for __ in range(rounds):
            yield Compute(burst, "light")
            yield Sleep(nap)
    return body()


def test_cpu_hog_gets_parked(engine):
    sched = make_sched(engine)
    proc = sched.spawn(cpu_hog(), "hog", nice=0).start()
    run_until_done(engine, [proc])
    assert proc.epochs_parked > 0
    # Parking stretches wall time beyond pure CPU time.
    assert engine.now > proc.cpu_us * 1.1


def test_interactive_task_never_parked(engine):
    sched = make_sched(engine)
    proc = sched.spawn(interactive(), "light", nice=0).start()
    run_until_done(engine, [proc])
    assert proc.epochs_parked == 0


def test_negative_nice_exempt(engine):
    sched = make_sched(engine)
    proc = sched.spawn(cpu_hog(), "hog", nice=-20).start()
    run_until_done(engine, [proc])
    assert proc.epochs_parked == 0
    assert engine.now == pytest.approx(proc.cpu_us + 20 * 100.0, rel=0.01)


def test_o1_model_can_be_disabled(engine):
    sched = make_sched(engine, o1=False)
    proc = sched.spawn(cpu_hog(), "hog", nice=0).start()
    run_until_done(engine, [proc])
    assert proc.epochs_parked == 0


def test_parked_task_resumes_and_finishes(engine):
    sched = make_sched(engine, timeslice=10_000.0, park=20_000.0)
    proc = sched.spawn(cpu_hog(rounds=5, burst=15_000.0), "hog").start()
    run_until_done(engine, [proc])
    assert proc.epochs_parked >= 2
    assert proc.cpu_us == pytest.approx(75_000.0)


def test_parking_leaves_cores_idle_despite_ready_work(engine):
    """The §4.3 signature: the machine idles while the parked task has
    work — the paper's 'multiple processors being idle'."""
    sched = make_sched(engine, cores=2, timeslice=10_000.0, park=50_000.0)
    proc = sched.spawn(cpu_hog(rounds=4, burst=20_000.0), "hog").start()
    run_until_done(engine, [proc])
    busy = sched.total_busy_us()
    # Lots of wall time with idle cores.
    assert engine.now > busy / 2 * 1.5
