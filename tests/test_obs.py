"""Tests for the tracing + time-series metrics subsystem (repro.obs)."""

import json
import math

import pytest

from repro.analysis.experiments import ExperimentSpec, run_cell
from repro.analysis.runner import run_cells
from repro.clients.workload import percentiles
from repro.obs import (
    MetricSampler,
    StreamingHistogram,
    TimelineReport,
    Tracer,
    to_chrome_events,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.chrome_trace import validate_chrome_trace
from repro.obs.metrics import series_window_mean
from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# Tracer ring buffer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_records_simulated_time(self, engine):
        tracer = Tracer(engine)
        span = tracer.begin("work", cat="proxy", who="w0", conn=7)
        engine.schedule(125.0, lambda: None)
        engine.run()
        tracer.end(span)
        assert span.start_us == 0.0
        assert span.end_us == 125.0
        assert span.duration_us == 125.0
        assert span.attrs["conn"] == 7
        assert list(tracer.events()) == [span]

    def test_ring_buffer_caps_and_evicts_oldest(self, engine):
        tracer = Tracer(engine, capacity=10)
        for index in range(25):
            tracer.instant(f"ev{index}", who="w0")
        assert len(tracer) == 10
        assert tracer.emitted == 25
        assert tracer.dropped == 15
        names = [event.name for event in tracer.events()]
        # Oldest evicted: only the newest 10 survive, in order.
        assert names == [f"ev{i}" for i in range(15, 25)]

    def test_unclosed_span_not_buffered(self, engine):
        tracer = Tracer(engine, capacity=4)
        tracer.begin("open", who="w0")  # never ended
        tracer.instant("tick", who="w0")
        assert [e.name for e in tracer.events()] == ["tick"]

    def test_clear(self, engine):
        tracer = Tracer(engine, capacity=4)
        tracer.instant("a", who="w0")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------
class TestChromeTrace:
    def _tracer(self, engine):
        tracer = Tracer(engine)
        span = tracer.begin("process_msg", cat="proxy",
                            who="server/worker-1", call_id="abc")
        engine.schedule(40.0, lambda: None)
        engine.run()
        tracer.end(span)
        tracer.instant("context_switch", cat="kernel", who="server/worker-2")
        tracer.instant("bare_who", cat="kernel", who="timer")
        return tracer

    def test_event_structure(self, engine):
        events = to_chrome_events(self._tracer(engine).events())
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 1 and len(instants) == 2
        # pid/tid are interned ints; metadata events carry the names.
        pid_names = {e["pid"]: e["args"]["name"] for e in metadata
                     if e["name"] == "process_name"}
        tid_names = {(e["pid"], e["tid"]): e["args"]["name"]
                     for e in metadata if e["name"] == "thread_name"}
        # who "server/worker-1" splits into pid/tid; bare who -> pid "sim".
        assert pid_names[complete[0]["pid"]] == "server"
        assert tid_names[(complete[0]["pid"],
                          complete[0]["tid"])] == "worker-1"
        assert complete[0]["dur"] == 40.0
        assert complete[0]["args"]["call_id"] == "abc"
        bare = [e for e in instants if e["name"] == "bare_who"][0]
        assert pid_names[bare["pid"]] == "sim"
        assert tid_names[(bare["pid"], bare["tid"])] == "timer"
        assert all(e["s"] == "t" for e in instants)

    def test_written_file_validates(self, engine, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, self._tracer(engine),
                                   extra={"series": "test"})
        info = validate_chrome_trace(path)
        assert info["events"] == count == 3
        assert info["complete"] == 1
        assert info["instants"] == 2
        assert "process_msg" in info["names"]
        payload = json.loads(path.read_text())
        assert payload["otherData"]["series"] == "test"
        assert payload["otherData"]["events_dropped"] == 0

    def test_validator_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


# ---------------------------------------------------------------------------
# Streaming histogram vs exact percentiles
# ---------------------------------------------------------------------------
class TestStreamingHistogram:
    def test_agrees_with_exact_percentiles_within_resolution(self):
        # Deterministic long-tailed sample set (no RNG in tests).
        samples = [100.0 * math.exp(3.0 * (i / 997.0) ** 2)
                   for i in range(997)]
        exact = percentiles(samples)
        hist = StreamingHistogram()
        hist.extend(samples)
        approx = hist.percentiles()
        assert set(approx) == set(exact)
        for key in ("p50", "p95", "p99", "p99.9"):
            assert approx[key] == pytest.approx(exact[key], rel=0.06)
        assert approx["mean"] == pytest.approx(exact["mean"], rel=1e-9)

    def test_merge_and_roundtrip(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.extend([1.0, 10.0, 100.0])
        b.extend([5.0, 50.0])
        a.merge(b)
        assert a.count == 5
        clone = StreamingHistogram.from_dict(a.to_dict())
        assert clone.percentiles() == a.percentiles()

    def test_percentile_clamped_to_observed_range(self):
        hist = StreamingHistogram()
        hist.extend([10.0, 10.0, 10.0])
        assert hist.percentile(99.9) == 10.0
        assert hist.percentile(50) == 10.0


# ---------------------------------------------------------------------------
# Metric sampler
# ---------------------------------------------------------------------------
class TestMetricSampler:
    def test_gauge_rate_and_series_shape(self, engine):
        counter = {"n": 0}

        def bump():
            counter["n"] += 10
            engine.schedule(1_000.0, bump)

        # Offset bumps off the tick boundary so each 10 ms interval
        # contains exactly ten of them regardless of same-instant order.
        engine.schedule(500.0, bump)
        sampler = MetricSampler(engine, interval_us=10_000.0)
        sampler.add_gauge("depth", lambda: counter["n"] % 7)
        sampler.add_rate("bump_rate", lambda: counter["n"])
        sampler.start()
        engine.run(until=50_000.0)
        sampler.stop()
        data = sampler.to_dict()
        assert data["interval_us"] == 10_000.0
        assert data["samples"] == 6  # t=0 plus five ticks
        assert len(data["series"]["depth"]) == 6
        # 10 per ms -> 10k per second, exact under the sim clock.
        assert data["series"]["bump_rate"][1:] == [10_000.0] * 5
        assert data["series"]["bump_rate"][0] == 0.0

    def test_sampling_is_deterministic_across_jobs(self, tmp_path):
        spec = ExperimentSpec(series="udp", clients=3, workers=4,
                              measure_us=40_000.0, warmup_us=20_000.0,
                              sample_us=5_000.0)
        serial = run_cells([spec], jobs=1)[0].result
        # Two distinct-seed specs force the pool path for the pair.
        other = ExperimentSpec(series="udp", clients=3, workers=4,
                               measure_us=40_000.0, warmup_us=20_000.0,
                               sample_us=5_000.0, seed=2)
        parallel = {
            outcome.spec.seed: outcome.result
            for outcome in run_cells([spec, other], jobs=2)
        }[1]
        assert serial.metrics == parallel.metrics
        assert serial.metrics["samples"], "sampler produced no samples"
        assert serial.throughput_ops_s == parallel.throughput_ops_s

    def test_window_mean(self):
        metrics = {"interval_us": 10.0, "t0_us": 0.0, "samples": 4,
                   "series": {"x": [0.0, 1.0, 2.0, 3.0]}}
        # Samples cover the interval *ending* at t: from_us exclusive.
        assert series_window_mean(metrics, "x", 10.0, 30.0) == 2.5
        assert series_window_mean(metrics, "x", 0.0, 30.0) == 2.0
        assert series_window_mean(metrics, "x", 100.0, 200.0) == 0.0

    def test_jsonl_writer(self, tmp_path):
        metrics = {"interval_us": 5.0, "t0_us": 0.0, "samples": 2,
                   "series": {"x": [1.0, 2.0]}}
        path = tmp_path / "m.jsonl"
        lines = write_metrics_jsonl(path, [("udp/3", metrics)])
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == len(rows) == 3
        assert rows[0]["cell"] == "udp/3" and rows[0]["series"] == ["x"]
        assert rows[1]["values"] == {"x": 1.0}
        assert rows[2]["t_us"] == 5.0

    def test_timeline_report_renders(self):
        metrics = {"interval_us": 1000.0, "t0_us": 0.0, "samples": 8,
                   "series": {"run_queue": [0, 1, 2, 3, 4, 3, 2, 1]}}
        text = TimelineReport(metrics, "cell").render()
        assert "run_queue" in text
        assert "8 samples" in text


# ---------------------------------------------------------------------------
# End-to-end: traced cells and the paper's fd-cache time series
# ---------------------------------------------------------------------------
class TestTracedCells:
    def test_runner_rejects_traced_specs(self):
        with pytest.raises(ValueError, match="trace"):
            run_cells([ExperimentSpec(series="udp", trace=True)], jobs=1)

    def test_traced_cell_not_cached(self):
        from repro.analysis.cache import spec_key
        assert spec_key(ExperimentSpec(series="udp", trace=True)) is None
        assert spec_key(ExperimentSpec(series="udp")) is not None

    @pytest.mark.slow
    def test_tcp_trace_contains_ipc_and_send_spans(self, tmp_path):
        spec = ExperimentSpec(series="tcp-50", clients=20, workers=8,
                              warmup_us=150_000.0, measure_us=150_000.0,
                              scale_windows=False, trace=True)
        result = run_cell(spec)
        tracer = result.tracer
        assert tracer is not None and len(tracer)
        kinds = {(e.cat, e.name) for e in tracer.events()}
        # The supervisor's fd-passing IPC round trip and worker sends —
        # the message-lifecycle spans the §5.2 analysis hinges on.
        assert ("ipc", "fd_request_rtt") in kinds
        assert ("ipc", "tcpconn_send_fd") in kinds
        assert ("proxy", "worker_send") in kinds
        assert ("proxy", "process_msg") in kinds
        assert ("kernel", "context_switch") in kinds
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer)
        info = validate_chrome_trace(path)
        assert info["events"] > 100
        assert "fd_request_rtt" in info["names"]

    @pytest.mark.slow
    def test_fd_cache_ipc_share_drops_in_time_series(self):
        """The Fig. 4 claim as a *time series*: within the measured
        window, the fd-cache collapses the supervisor-IPC CPU share."""
        def ipc_share(fd_cache):
            spec = ExperimentSpec(series="tcp-50", clients=100,
                                  fd_cache=fd_cache, sample_us=20_000.0,
                                  scale_windows=False)
            result = run_cell(spec)
            window = result.metrics["window_us"]
            mean = series_window_mean(result.metrics, "cpu_ipc_share",
                                      window[0], window[1])
            assert mean is not None
            return mean

        without = ipc_share(False)
        with_cache = ipc_share(True)
        # Paper: 12.0% -> 4.6% of CPU in fd-passing IPC (§5.2).
        assert without > 0.08
        assert with_cache < without / 2
        assert with_cache < 0.07
