"""Unit tests for UAC/UAS transaction state machines."""

import random

import pytest

from repro.sim.engine import Engine
from repro.sip.builder import MessageBuilder
from repro.sip.parser import parse_message
from repro.sip.transaction import (
    ClientTransaction,
    ServerTransaction,
    TransactionTimers,
    TxnState,
)


@pytest.fixture
def alice():
    return MessageBuilder("alice", "example.com", "client1", 40000, "udp",
                          random.Random(1))


@pytest.fixture
def bob():
    return MessageBuilder("bob", "example.com", "client2", 40001, "udp",
                          random.Random(2))


def collect(sink):
    def send(text):
        sink.append(text)
    return send


class TestClientTransaction:
    def test_start_sends_request(self, engine, alice):
        wire = []
        txn = ClientTransaction(engine, alice.invite("bob"), collect(wire),
                                reliable=False)
        txn.start()
        assert len(wire) == 1
        assert wire[0].startswith("INVITE")

    def test_udp_retransmits_with_backoff(self, engine, alice):
        wire = []
        timers = TransactionTimers(t1_us=500_000.0)
        txn = ClientTransaction(engine, alice.invite("bob"), collect(wire),
                                reliable=False, timers=timers)
        txn.start()
        engine.run(until=3_400_000.0)  # retransmits at 0.5s, 1.5s (next: 3.5s)
        assert len(wire) == 3
        assert txn.retransmissions == 2

    def test_tcp_never_retransmits(self, engine, alice):
        wire = []
        txn = ClientTransaction(engine, alice.invite("bob"), collect(wire),
                                reliable=True)
        txn.start()
        engine.run(until=10_000_000.0)
        assert len(wire) == 1

    def test_provisional_stops_retransmission(self, engine, alice, bob):
        wire = []
        invite = alice.invite("bob")
        txn = ClientTransaction(engine, invite, collect(wire), reliable=False)
        txn.start()
        ringing = bob.response_for(invite, 180, to_tag="b")
        engine.schedule(100_000.0, txn.handle_response, ringing)
        engine.run(until=5_000_000.0)
        assert len(wire) == 1
        assert txn.state is TxnState.PROCEEDING

    def test_final_response_terminates(self, engine, alice, bob):
        responses = []
        invite = alice.invite("bob")
        txn = ClientTransaction(engine, invite, collect([]), reliable=False,
                                on_response=responses.append)
        txn.start()
        ok = bob.response_for(invite, 200, to_tag="b")
        txn.handle_response(ok)
        assert txn.state is TxnState.TERMINATED
        assert txn.final_response.status == 200
        assert responses == [ok]
        engine.run(until=60_000_000.0)  # no timers left

    def test_timeout_fires_after_64_t1(self, engine, alice):
        timeouts = []
        timers = TransactionTimers(t1_us=10_000.0)
        txn = ClientTransaction(engine, alice.invite("bob"), collect([]),
                                reliable=False, timers=timers,
                                on_timeout=lambda: timeouts.append(engine.now))
        txn.start()
        engine.run(until=10_000_000.0)
        assert timeouts == [pytest.approx(640_000.0)]
        assert txn.state is TxnState.TERMINATED

    def test_matches_by_branch_and_method(self, engine, alice, bob):
        invite = alice.invite("bob")
        txn = ClientTransaction(engine, invite, collect([]), reliable=False)
        ok = bob.response_for(invite, 200, to_tag="b")
        assert txn.matches(ok)
        other = bob.response_for(alice.invite("bob"), 200, to_tag="b")
        assert not txn.matches(other)


class TestServerTransaction:
    def test_respond_sends(self, engine, alice, bob):
        wire = []
        invite = alice.invite("bob")
        txn = ServerTransaction(engine, invite, collect(wire), reliable=False)
        txn.respond(bob.response_for(invite, 180, to_tag="b"))
        assert len(wire) == 1
        assert parse_message(wire[0]).status == 180

    def test_invite_final_retransmits_until_ack(self, engine, alice, bob):
        wire = []
        timers = TransactionTimers(t1_us=100_000.0)
        invite = alice.invite("bob")
        txn = ServerTransaction(engine, invite, collect(wire),
                                reliable=False, timers=timers)
        txn.respond(bob.response_for(invite, 200, to_tag="b"))
        engine.run(until=350_000.0)  # retransmits at 100ms and 300ms
        assert len(wire) == 3
        txn.handle_ack()
        engine.run(until=10_000_000.0)
        assert len(wire) == 3
        assert txn.terminated

    def test_reliable_final_not_retransmitted(self, engine, alice, bob):
        wire = []
        invite = alice.invite("bob")
        txn = ServerTransaction(engine, invite, collect(wire), reliable=True)
        txn.respond(bob.response_for(invite, 200, to_tag="b"))
        engine.run(until=10_000_000.0)
        assert len(wire) == 1

    def test_request_retransmission_replays_response(self, engine, alice, bob):
        wire = []
        invite = alice.invite("bob")
        txn = ServerTransaction(engine, invite, collect(wire), reliable=False)
        txn.respond(bob.response_for(invite, 180, to_tag="b"))
        txn.handle_request_retransmission()
        assert len(wire) == 2
        assert wire[0] == wire[1]
        assert txn.request_retransmissions_absorbed == 1

    def test_give_up_without_ack(self, engine, alice, bob):
        timers = TransactionTimers(t1_us=1_000.0)
        invite = alice.invite("bob")
        txn = ServerTransaction(engine, invite, collect([]), reliable=False,
                                timers=timers)
        txn.respond(bob.response_for(invite, 200, to_tag="b"))
        engine.run(until=1_000_000.0)
        assert txn.terminated

    def test_key_matches_transaction_key(self, engine, alice, bob):
        invite = alice.invite("bob")
        txn = ServerTransaction(engine, invite, collect([]), reliable=False)
        assert txn.key == invite.transaction_key()
