"""End-to-end tests: the §6 alternatives (SCTP and threaded TCP)."""

import pytest

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager

SMALL = dict(warmup_us=30_000.0, measure_us=100_000.0)


def run_cell(transport, clients=5, workers=4, seed=1, **config):
    bed = Testbed(seed=seed)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport=transport, workers=workers, **config)).start()
    result = BenchmarkManager(bed, proxy,
                              Workload(clients=clients, **SMALL)).run()
    return bed, proxy, result


class TestSctp:
    def test_calls_complete(self):
        __, proxy, result = run_cell("sctp")
        assert result.ops > 30
        assert result.calls_failed == 0
        assert proxy.stats.parse_errors == 0

    def test_no_fd_machinery_at_all(self):
        __, proxy, __ = run_cell("sctp")
        assert proxy.stats.fd_requests == 0
        assert proxy.stats.idle_scans == 0
        assert proxy.stats.accepts == 0  # kernel-managed associations

    @pytest.mark.slow

    def test_sctp_between_tcp_and_udp(self):
        """§6: SCTP keeps the symmetric architecture, so it should land
        near UDP and beat baseline TCP."""
        __, __, udp = run_cell("udp", clients=10, seed=3)
        __, __, sctp = run_cell("sctp", clients=10, seed=3)
        __, __, tcp = run_cell("tcp", clients=10, seed=3)
        assert tcp.throughput_ops_s < sctp.throughput_ops_s
        assert sctp.throughput_ops_s <= udp.throughput_ops_s * 1.05

    def test_associations_reused_per_phone(self):
        __, proxy, __ = run_cell("sctp")
        # 5 callers + 5 callees, one association each.
        assert len(proxy.endpoint.associations) == 10


class TestThreaded:
    def test_calls_complete(self):
        __, proxy, result = run_cell("tcp-threaded")
        assert result.ops > 30
        assert result.calls_failed == 0

    def test_no_fd_requests(self):
        """§6: a shared address space needs no descriptor passing."""
        __, proxy, __ = run_cell("tcp-threaded")
        assert proxy.stats.fd_requests == 0

    @pytest.mark.slow

    def test_threaded_beats_process_tcp(self):
        __, __, procs = run_cell("tcp", clients=10, seed=4)
        __, __, threads = run_cell("tcp-threaded", clients=10, seed=4)
        assert threads.throughput_ops_s > procs.throughput_ops_s

    @pytest.mark.slow

    def test_threaded_close_is_single_phase(self):
        bed = Testbed(seed=2)
        proxy = build_proxy(bed.server, ProxyConfig(
            transport="tcp-threaded", workers=4,
            idle_timeout_us=100_000.0)).start()
        wl = Workload(clients=4, ops_per_conn=6, warmup_us=30_000.0,
                      measure_us=300_000.0)
        BenchmarkManager(bed, proxy, wl).run()
        # The acceptor sweeps on a 1 s tick: let a few elapse.
        bed.engine.run(until=bed.engine.now + 2_500_000.0)
        assert proxy.stats.conns_closed_idle > 0
        # No two-step worker-release protocol exists here.
        assert proxy.stats.conns_released_by_worker == 0
