"""Unit tests for the benchmark phones (against a scripted fake proxy)."""

import pytest

from repro.clients.phone import Phone
from repro.net.udp import UdpEndpoint
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sip.builder import MessageBuilder
from repro.sip.parser import parse_message
from repro.sip.transaction import TransactionTimers

from conftest import make_lan


class ScriptedProxy:
    """A minimal UDP 'proxy' that relays between two phones directly."""

    def __init__(self, machine, port=5060):
        self.machine = machine
        self.socket = UdpEndpoint(machine, port)
        self.bindings = {}
        self.seen = []
        self.drop_methods = set()
        machine.engine.schedule(0.0, self._arm)

    def _arm(self):
        self.socket.buffer.readable_signal.listen(self._pump)
        self._pump()

    def _pump(self, _value=None):
        while True:
            dgram = self.socket.try_recvfrom()
            if dgram is None:
                return
            self._handle(dgram)

    def _handle(self, dgram):
        msg = parse_message(dgram.payload)
        self.seen.append(msg)
        if msg.is_request and msg.method == "REGISTER":
            contact = msg.contact.uri
            self.bindings[msg.to_addr.uri.aor] = (contact.host,
                                                  contact.port or 5060)
            reply = self._response(msg, 200)
            self.socket.sendto(reply, dgram.src_addr, dgram.src_port)
            return
        if msg.is_request:
            if msg.method in self.drop_methods:
                return
            target = self.bindings.get(msg.uri.aor) or \
                (msg.uri.host, msg.uri.port or 5060)
            self.socket.sendto(dgram.payload, target[0], target[1])
        else:
            via = msg.top_via
            self.socket.sendto(dgram.payload, via.host, via.port)

    @staticmethod
    def _response(request, status):
        from repro.sip.message import SipResponse
        response = SipResponse(status)
        for value in request.get_all("Via"):
            response.add("Via", value)
        for name in ("From", "To", "Call-ID", "CSeq"):
            response.add(name, request.get(name))
        response.add("Content-Length", "0")
        return response.render()


def make_pair(engine, timers=None, **phone_kwargs):
    __, machines = make_lan(engine, ["server", "client1", "client2"])
    proxy = ScriptedProxy(machines["server"])
    go = Event(engine, "go")
    timers = timers or TransactionTimers()
    caller = Phone(machines["client1"], "alice", "example.com", 20000,
                   "udp", "server", 5060,
                   rng=__import__("random").Random(1), role="caller",
                   peer_user="bob", go_event=go, timers=timers,
                   **phone_kwargs)
    callee = Phone(machines["client2"], "bob", "example.com", 30000,
                   "udp", "server", 5060,
                   rng=__import__("random").Random(2), role="callee",
                   timers=timers)
    return proxy, go, caller.start(), callee.start()


def test_phones_register_then_call(engine):
    proxy, go, caller, callee = make_pair(engine)
    engine.run(until=1_000_000.0)
    assert caller.registered and callee.registered
    go.fire(None)
    engine.run(until=2_000_000.0)
    assert caller.calls_completed > 0
    assert caller.ops_completed == caller.calls_completed * 2
    assert callee.handled_ops > 0
    assert caller.calls_failed == 0


def test_call_message_sequence(engine):
    proxy, go, caller, callee = make_pair(engine, think_time_us=1e9)
    engine.run(until=1_000_000.0)
    go.fire(None)
    engine.run(until=2_000_000.0)
    methods = [m.method for m in proxy.seen
               if m.is_request and m.method != "REGISTER"]
    # One full call: INVITE, ACK, BYE, in order.
    assert methods[:3] == ["INVITE", "ACK", "BYE"]


def test_caller_times_out_when_callee_unreachable(engine):
    timers = TransactionTimers(t1_us=20_000.0)
    proxy, go, caller, callee = make_pair(engine, timers=timers)
    proxy.drop_methods.add("INVITE")
    engine.run(until=1_000_000.0)
    go.fire(None)
    engine.run(until=engine.now + 5_000_000.0)
    assert caller.calls_failed > 0
    assert caller.calls_completed == 0


def test_caller_retransmits_over_udp(engine):
    """Drop the first INVITE: the caller's timer A resends and the call
    still completes."""
    timers = TransactionTimers(t1_us=50_000.0)
    proxy, go, caller, callee = make_pair(engine, timers=timers,
                                          think_time_us=1e9)
    original_handle = proxy._handle
    dropped = []

    def drop_first_invite(dgram):
        msg = parse_message(dgram.payload)
        if msg.is_request and msg.method == "INVITE" and not dropped:
            dropped.append(True)
            return
        original_handle(dgram)

    proxy._handle = drop_first_invite
    engine.run(until=1_000_000.0)
    go.fire(None)
    engine.run(until=2_000_000.0)
    assert dropped
    assert caller.calls_completed >= 1


def test_callee_absorbs_invite_retransmission(engine):
    proxy, go, caller, callee = make_pair(engine, think_time_us=1e9)
    engine.run(until=1_000_000.0)
    go.fire(None)
    engine.run(until=1_200_000.0)
    invites = [m for m in proxy.seen
               if m.is_request and m.method == "INVITE"]
    assert invites
    # Replay the INVITE at the callee; it must not start a second call.
    before = callee.handled_ops
    proxy.socket.sendto(invites[0].render(), "client2", 30000)
    engine.run(until=engine.now + 200_000.0)
    assert callee.handled_ops == before


def test_phone_rejects_bad_role():
    engine = Engine()
    __, machines = make_lan(engine, ["client1"])
    import random
    with pytest.raises(ValueError):
        Phone(machines["client1"], "x", "d", 1000, "udp", "server", 5060,
              rng=random.Random(1), role="listener")
    with pytest.raises(ValueError):
        Phone(machines["client1"], "x", "d", 1001, "udp", "server", 5060,
              rng=random.Random(1), role="caller")  # no peer


def test_stop_kills_processes(engine):
    proxy, go, caller, callee = make_pair(engine)
    engine.run(until=500_000.0)
    caller.stop()
    assert all(not proc.alive for proc in caller.processes)
