"""Unit tests for the TCP transport."""

import pytest

from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.kernel.sockets import PortExhaustedError
from repro.net.tcp import (
    ConnectionRefusedError_,
    ConnectionResetError_,
    TcpListener,
    TcpState,
    connect,
)

from conftest import make_lan, run_until_done


def lan(engine, **kwargs):
    return make_lan(engine, ["client", "server"], **kwargs)


def test_connect_accept_roundtrip(engine):
    __, machines = lan(engine, latency_us=50.0)
    listener = TcpListener(machines["server"], 5060)
    results = {}

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        results["client_conn"] = conn
        results["connected_at"] = engine.now

    def server():
        conn = yield from listener.accept()
        results["server_conn"] = conn

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    assert results["client_conn"].state is TcpState.ESTABLISHED
    assert results["server_conn"].peer is results["client_conn"]
    # Handshake needs a round trip (~100us at 50us one-way).
    assert results["connected_at"] >= 100.0


def test_bytestream_send_recv(engine):
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)
    got = []

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        yield from conn.send("hello ")
        yield from conn.send("world")

    def server():
        conn = yield from listener.accept()
        data = ""
        while len(data) < 11:
            data += yield from conn.recv()
        got.append(data)

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    assert got == ["hello world"]


def test_large_send_is_segmented_but_in_order(engine):
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)
    payload = "x" * 5000 + "END"
    got = []

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        yield from conn.send(payload)

    def server():
        conn = yield from listener.accept()
        data = ""
        while len(data) < len(payload):
            data += yield from conn.recv()
        got.append(data)

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    assert got == [payload]


def test_connect_refused_without_listener(engine):
    __, machines = lan(engine)
    errors = []

    def client():
        try:
            yield from connect(machines["client"], "server", 5060)
        except ConnectionRefusedError_ as exc:
            errors.append(exc)

    proc = machines["client"].spawn_light(client(), "c").start()
    run_until_done(engine, [proc])
    assert len(errors) == 1
    # The ephemeral port went straight back to the pool.
    assert machines["client"].tcp_ports.available == \
        machines["client"].tcp_ports.hi - machines["client"].tcp_ports.lo


def test_backlog_full_refuses(engine):
    __, machines = lan(engine)
    TcpListener(machines["server"], 5060, backlog=1)
    outcomes = []

    def client(tag):
        try:
            yield from connect(machines["client"], "server", 5060)
            outcomes.append((tag, "ok"))
        except ConnectionRefusedError_:
            outcomes.append((tag, "refused"))

    procs = [machines["client"].spawn_light(client(i), f"c{i}").start()
             for i in range(3)]
    run_until_done(engine, procs)
    counts = [outcome for __, outcome in outcomes]
    assert counts.count("ok") == 1
    assert counts.count("refused") == 2


def test_flow_control_blocks_sender(engine):
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)
    events = []

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        yield from conn.send("a" * 60000)
        events.append(("sent-first", engine.now))
        yield from conn.send("b" * 30000)  # must wait for reader
        events.append(("sent-second", engine.now))

    def server():
        conn = yield from listener.accept()
        # Let the first send land, then drain slowly.
        from repro.sim.primitives import Sleep
        yield Sleep(10_000.0)
        drained = 0
        while drained < 90000:
            data = yield from conn.recv(65536)
            drained += len(data)

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    times = dict(events)
    assert times["sent-second"] >= 10_000.0  # blocked until the drain began


def test_close_delivers_eof(engine):
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)
    got = []

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        yield from conn.send("bye")
        conn.close()

    def server():
        conn = yield from listener.accept()
        data = yield from conn.recv()
        got.append(data)
        eof = yield from conn.recv()
        got.append(eof)
        conn.close()

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    assert got == ["bye", ""]


def test_both_sides_closed_finalizes_and_time_waits_port(engine):
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)
    conns = {}

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        conns["client"] = conn
        conn.close()  # active closer

    def server():
        conn = yield from listener.accept()
        conns["server"] = conn
        eof = yield from conn.recv()
        assert eof == ""
        conn.close()

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    engine.run(until=engine.now + 1000.0)
    assert conns["client"].state is TcpState.CLOSED
    assert conns["server"].state is TcpState.CLOSED
    # The client initiated and closed first: its port sits in TIME_WAIT.
    assert machines["client"].tcp_ports.in_time_wait == 1


def test_passive_closer_port_released_immediately(engine):
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        eof = yield from conn.recv()
        assert eof == ""
        conn.close()

    def server():
        conn = yield from listener.accept()
        conn.close()  # server closes first

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    engine.run(until=engine.now + 1000.0)
    assert machines["client"].tcp_ports.in_time_wait == 0
    ports = machines["client"].tcp_ports
    assert ports.available == ports.hi - ports.lo


def test_port_exhaustion(engine):
    __, machines = make_lan(engine, ["client", "server"],
                            ephemeral_ports=2)
    TcpListener(machines["server"], 5060)
    failures = []

    def client():
        conns = []
        for __ in range(3):
            try:
                conn = yield from connect(machines["client"], "server", 5060)
                conns.append(conn)
            except PortExhaustedError as exc:
                failures.append(exc)

    proc = machines["client"].spawn_light(client(), "c").start()
    run_until_done(engine, [proc])
    assert len(failures) == 1


def test_send_on_closed_connection_raises(engine):
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)
    errors = []

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        conn.close()
        try:
            yield from conn.send("too late")
        except ConnectionResetError_ as exc:
            errors.append(exc)

    def server():
        conn = yield from listener.accept()
        yield from conn.recv()

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    assert len(errors) == 1


def test_fd_refcount_drives_close(engine):
    """Supervisor and worker both hold fds; the connection FINs only when
    the last one closes — the paper's two-step teardown (§3.1)."""
    from repro.kernel.fdtable import FdTable, FileDescription
    __, machines = lan(engine)
    listener = TcpListener(machines["server"], 5060)
    state = {}

    def client():
        conn = yield from connect(machines["client"], "server", 5060)
        state["client"] = conn

    def server():
        conn = yield from listener.accept()
        state["server"] = conn

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)

    conn = state["server"]
    desc = FileDescription(conn, kind="tcp")
    sup_table = FdTable(limit=16, owner="sup")
    wrk_table = FdTable(limit=16, owner="wrk")
    sup_fd = sup_table.install(desc)
    wrk_fd = wrk_table.install(desc)

    wrk_table.close(wrk_fd)
    assert not conn.sent_fin
    sup_table.close(sup_fd)
    assert conn.sent_fin
    engine.run(until=engine.now + 1000.0)
    assert state["client"].received_fin


def test_listener_double_bind_rejected(engine):
    __, machines = lan(engine)
    TcpListener(machines["server"], 5060)
    with pytest.raises(OSError):
        TcpListener(machines["server"], 5060)
