"""Unit tests for generator-driven simulated processes."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import Event, Signal
from repro.sim.primitives import Compute, Exit, Fork, Sleep, Wait, YieldCPU
from repro.sim.process import ProcessState, SimProcess

from conftest import run_until_done


def test_compute_advances_clock(engine):
    def body():
        yield Compute(25.0, "work")

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert engine.now == 25.0
    assert proc.state is ProcessState.DONE


def test_sleep_advances_clock(engine):
    def body():
        yield Sleep(100.0)
        yield Compute(1.0)

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert engine.now == 101.0


def test_wait_receives_fired_value(engine):
    event = Event(engine, "go")
    seen = []

    def body():
        value = yield Wait(event)
        seen.append(value)

    proc = SimProcess(engine, body(), "p").start()
    engine.schedule(40.0, event.fire, "payload")
    run_until_done(engine, [proc])
    assert seen == ["payload"]
    assert engine.now == 40.0


def test_wait_on_already_fired_event_is_immediate(engine):
    event = Event(engine, "go")
    event.fire(7)

    def body():
        value = yield Wait(event)
        return value

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert proc.result == 7


def test_return_value_becomes_result(engine):
    def body():
        yield Compute(1.0)
        return 42

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert proc.result == 42


def test_exit_effect_terminates_with_value(engine):
    def body():
        yield Exit("bye")
        yield Compute(100.0)  # unreachable

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert proc.result == "bye"
    assert engine.now == 0.0


def test_fork_spawns_running_child(engine):
    log = []

    def child_body():
        yield Compute(5.0)
        log.append(("child", engine.now))

    def parent_body():
        child = yield Fork(child_body(), "kid")
        yield Wait(child.done)
        log.append(("parent", engine.now))

    proc = SimProcess(engine, parent_body(), "p").start()
    run_until_done(engine, [proc])
    assert log == [("child", 5.0), ("parent", 5.0)]


def test_kill_discards_pending_wakeups(engine):
    progressed = []

    def body():
        yield Sleep(100.0)
        progressed.append(True)

    proc = SimProcess(engine, body(), "p").start()
    engine.schedule(50.0, proc.kill)
    engine.run()
    assert progressed == []
    assert proc.state is ProcessState.KILLED


def test_done_event_fires_on_completion(engine):
    results = []

    def body():
        yield Compute(3.0)
        return "ok"

    proc = SimProcess(engine, body(), "p").start()
    proc.done.subscribe(results.append)
    run_until_done(engine, [proc])
    assert results == ["ok"]


def test_exception_propagates_and_marks_failed(engine):
    def body():
        yield Compute(1.0)
        raise ValueError("boom")

    proc = SimProcess(engine, body(), "p").start()
    with pytest.raises(ValueError):
        engine.run()
    assert proc.state is ProcessState.FAILED
    assert isinstance(proc.error, ValueError)


def test_yield_cpu_is_free_for_light_processes(engine):
    def body():
        yield YieldCPU()
        yield Compute(1.0)

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert engine.now == 1.0


def test_signal_wakes_current_waiters_only(engine):
    signal = Signal(engine, "s")
    seen = []

    def body(tag):
        value = yield Wait(signal)
        seen.append((tag, value))

    SimProcess(engine, body("a"), "a").start()
    SimProcess(engine, body("b"), "b").start()
    engine.schedule(10.0, signal.fire, 1)
    engine.run()
    assert sorted(seen) == [("a", 1), ("b", 1)]


def test_signal_fire_one_wakes_fifo(engine):
    signal = Signal(engine, "s")
    seen = []

    def body(tag):
        yield Wait(signal)
        seen.append(tag)

    SimProcess(engine, body("first"), "first").start()
    SimProcess(engine, body("second"), "second").start()
    engine.schedule(10.0, signal.fire_one)
    engine.run()
    assert seen == ["first"]


def test_start_twice_raises(engine):
    def body():
        yield Compute(1.0)

    proc = SimProcess(engine, body(), "p").start()
    with pytest.raises(Exception):
        proc.start()
