"""Unit tests for IPC channels, fd passing, and the blocking-send deadlock."""

import pytest

from repro.sim.engine import Engine
from repro.sim.primitives import Compute
from repro.sim.process import SimProcess
from repro.kernel.fdtable import FdTable, FileDescription
from repro.kernel.ipc import FdPayload, IpcChannel, IpcMessage, receive_fd

from conftest import run_until_done


def test_send_then_recv(engine):
    chan = IpcChannel(engine, capacity=4)
    got = []

    def sender():
        yield from chan.a.send(IpcMessage("hello", payload=123))

    def receiver():
        msg = yield from chan.b.recv()
        got.append((msg.kind, msg.payload))

    s = SimProcess(engine, sender(), "s").start()
    r = SimProcess(engine, receiver(), "r").start()
    run_until_done(engine, [s, r])
    assert got == [("hello", 123)]


def test_recv_blocks_until_message(engine):
    chan = IpcChannel(engine, capacity=4)
    got = []

    def receiver():
        msg = yield from chan.b.recv()
        got.append(engine.now)
        return msg

    def sender():
        yield Compute(500.0)
        yield from chan.a.send(IpcMessage("late"))

    r = SimProcess(engine, receiver(), "r").start()
    s = SimProcess(engine, sender(), "s").start()
    run_until_done(engine, [s, r])
    assert got == [500.0]


def test_send_blocks_when_full(engine):
    chan = IpcChannel(engine, capacity=1)
    events = []

    def sender():
        yield from chan.a.send(IpcMessage("one"))
        events.append(("sent-one", engine.now))
        yield from chan.a.send(IpcMessage("two"))
        events.append(("sent-two", engine.now))

    def receiver():
        yield Compute(100.0)
        msg1 = yield from chan.b.recv()
        yield Compute(100.0)
        msg2 = yield from chan.b.recv()
        return (msg1.kind, msg2.kind)

    s = SimProcess(engine, sender(), "s").start()
    r = SimProcess(engine, receiver(), "r").start()
    run_until_done(engine, [s, r])
    times = dict(events)
    assert times["sent-one"] == 0.0
    # The second send had to wait for the first recv to free a slot.
    assert times["sent-two"] == 100.0
    assert r.result == ("one", "two")


def test_try_send_and_try_recv(engine):
    chan = IpcChannel(engine, capacity=1)
    assert chan.a.try_recv() is None
    assert chan.a.try_send(IpcMessage("x")) is True
    assert chan.a.try_send(IpcMessage("y")) is False  # full
    msg = chan.b.try_recv()
    assert msg.kind == "x"
    assert chan.a.try_send(IpcMessage("y")) is True


def test_fifo_ordering(engine):
    chan = IpcChannel(engine, capacity=16)
    for i in range(5):
        assert chan.a.try_send(IpcMessage(f"m{i}"))
    kinds = [chan.b.try_recv().kind for __ in range(5)]
    assert kinds == ["m0", "m1", "m2", "m3", "m4"]


def test_duplex_directions_are_independent(engine):
    chan = IpcChannel(engine, capacity=1)
    assert chan.a.try_send(IpcMessage("a2b"))
    assert chan.b.try_send(IpcMessage("b2a"))
    assert chan.a.try_recv().kind == "b2a"
    assert chan.b.try_recv().kind == "a2b"


def test_fd_passing_installs_descriptor(engine):
    chan = IpcChannel(engine, capacity=4)
    table = FdTable(limit=16, owner="worker")
    desc = FileDescription(object(), kind="socket")
    desc.incref()  # the supervisor's own reference
    chan.a.try_send(IpcMessage("fd", fd=FdPayload(desc)))
    msg = chan.b.try_recv()
    fd = receive_fd(msg, table)
    assert table.get(fd) is desc
    assert desc.refs == 2  # supervisor + worker


def test_fd_in_flight_keeps_description_alive(engine):
    closed = []

    class Sock:
        def on_last_close(self):
            closed.append(True)

    desc = FileDescription(Sock(), kind="socket")
    desc.incref()
    chan = IpcChannel(engine, capacity=4)
    chan.a.try_send(IpcMessage("fd", fd=FdPayload(desc)))
    desc.decref()  # sender closes its copy while the message is in flight
    assert closed == []  # queue reference keeps it open
    msg = chan.b.try_recv()
    table = FdTable(limit=4, owner="w")
    fd = receive_fd(msg, table)
    assert closed == []
    table.close(fd)
    assert closed == [True]


def test_readable_protocol_for_poller(engine):
    chan = IpcChannel(engine, capacity=4)
    assert not chan.b.readable()
    chan.a.try_send(IpcMessage("x"))
    assert chan.b.readable()


def test_blocking_send_deadlock_scenario(engine):
    """The §6 deadlock: the supervisor blocks sending a new connection to a
    worker whose buffer is full, while that worker blocks waiting for an fd
    response the supervisor will never produce."""
    conn_chan = IpcChannel(engine, capacity=1, name="conns")   # sup -> worker
    req_chan = IpcChannel(engine, capacity=4, name="reqs")     # worker <-> sup
    progress = []

    def supervisor():
        # Fill the worker's connection buffer, then block on one more.
        yield from conn_chan.a.send(IpcMessage("new-conn", payload=1))
        yield from conn_chan.a.send(IpcMessage("new-conn", payload=2))
        yield from conn_chan.a.send(IpcMessage("new-conn", payload=3))
        progress.append("supervisor-sent-3")  # never reached
        # Would serve fd requests here.
        msg = yield from req_chan.b.recv()
        yield from req_chan.b.send(IpcMessage("fd-resp"))

    def worker():
        yield from conn_chan.b.recv()     # take conn 1, start processing it
        yield Compute(10.0, "process")
        # Request an fd and block for the response (without draining
        # conn_chan — OpenSER's mistake).
        yield from req_chan.a.send(IpcMessage("fd-req"))
        resp = yield from req_chan.a.recv()
        progress.append("worker-got-fd")  # never reached

    sup = SimProcess(engine, supervisor(), "sup").start()
    wrk = SimProcess(engine, worker(), "wrk").start()
    engine.run(until=1_000_000.0)
    assert progress == []
    assert sup.alive and wrk.alive
    assert conn_chan.a.blocked_sending_since is not None
    assert req_chan.a.blocked_receiving_since is not None


def test_capacity_must_be_positive(engine):
    with pytest.raises(ValueError):
        IpcChannel(engine, capacity=0)


# ----------------------------------------------------------------------
# blocked-marker hygiene (the deadlock detector's input)
# ----------------------------------------------------------------------
def test_try_send_clears_stale_blocked_marker(engine):
    chan = IpcChannel(engine, capacity=1)
    chan.a.blocked_sending_since = 10.0  # left by an earlier blocking send
    assert chan.a.try_send(IpcMessage("m"))
    assert chan.a.blocked_sending_since is None


def test_try_recv_clears_stale_blocked_marker(engine):
    chan = IpcChannel(engine, capacity=1)
    assert chan.a.try_send(IpcMessage("m"))
    chan.b.blocked_receiving_since = 10.0
    assert chan.b.try_recv().kind == "m"
    assert chan.b.blocked_receiving_since is None


def test_failed_try_ops_leave_markers_alone(engine):
    """An unsuccessful non-blocking op proves nothing about wedging."""
    chan = IpcChannel(engine, capacity=1)
    chan.b.blocked_receiving_since = 10.0
    assert chan.b.try_recv() is None
    assert chan.b.blocked_receiving_since == 10.0
    assert chan.a.try_send(IpcMessage("fill"))
    chan.a.blocked_sending_since = 20.0
    assert not chan.a.try_send(IpcMessage("overflow"))
    assert chan.a.blocked_sending_since == 20.0


def test_blocking_ops_clear_markers_on_completion(engine):
    chan = IpcChannel(engine, capacity=1)

    def sender():
        yield from chan.a.send(IpcMessage("one"))
        yield from chan.a.send(IpcMessage("two"))  # blocks until recv

    def receiver():
        yield Compute(500.0)
        yield from chan.b.recv()
        yield from chan.b.recv()

    s = SimProcess(engine, sender(), "s").start()
    r = SimProcess(engine, receiver(), "r").start()
    engine.run(until=250.0)
    assert chan.a.blocked_sending_since is not None  # mid-block
    run_until_done(engine, [s, r])
    assert chan.a.blocked_sending_since is None
    assert chan.b.blocked_receiving_since is None


# ----------------------------------------------------------------------
# stall / unstall / drain (fault injection + worker restart)
# ----------------------------------------------------------------------
def test_stalled_channel_blocks_both_sides(engine):
    chan = IpcChannel(engine, capacity=4)
    assert chan.a.try_send(IpcMessage("queued"))
    chan.stall()
    assert chan.stalled
    # Stalled: appears full to senders and empty to receivers.
    assert not chan.a.try_send(IpcMessage("rejected"))
    assert chan.b.try_recv() is None
    chan.unstall()
    assert not chan.stalled
    assert chan.b.try_recv().kind == "queued"


def test_unstall_wakes_blocked_parties(engine):
    chan = IpcChannel(engine, capacity=4)
    chan.stall()
    got = []

    def sender():
        yield from chan.a.send(IpcMessage("m"))
        got.append(("sent", engine.now))

    def receiver():
        msg = yield from chan.b.recv()
        got.append(("got-" + msg.kind, engine.now))

    s = SimProcess(engine, sender(), "s").start()
    r = SimProcess(engine, receiver(), "r").start()
    engine.schedule_at(400.0, chan.unstall)
    run_until_done(engine, [s, r])
    assert got == [("sent", 400.0), ("got-m", 400.0)]


def test_drain_discards_messages_and_fd_references(engine):
    chan = IpcChannel(engine, capacity=8)
    table = FdTable(owner="t")
    desc = FileDescription(None, kind="socket")
    fd = table.install(desc)
    assert chan.a.try_send(IpcMessage("take", fd=FdPayload(desc)))
    assert chan.b.try_send(IpcMessage("back"))
    refs_before = desc.refs
    assert chan.drain() == 2
    assert desc.refs == refs_before - 1  # queued SCM ref dropped
    assert chan.pending_total() == 0
    assert chan.a.try_recv() is None and chan.b.try_recv() is None
    table.close(fd)  # the table's own reference still stands


def test_drain_unblocks_a_blocked_sender(engine):
    chan = IpcChannel(engine, capacity=1)
    done = []

    def sender():
        yield from chan.a.send(IpcMessage("one"))
        yield from chan.a.send(IpcMessage("two"))  # blocks: full
        done.append(engine.now)

    s = SimProcess(engine, sender(), "s").start()
    engine.schedule_at(300.0, chan.drain)
    run_until_done(engine, [s])
    assert done == [300.0]
