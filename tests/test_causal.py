"""Tests for causal tracing, journey reconstruction and attribution."""

import json

import pytest

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager
from repro.obs import StreamingHistogram
from repro.obs.causal import CausalTracer, Segment, classify_charge
from repro.obs.chrome_trace import validate_chrome_trace, write_journey_trace
from repro.obs.journey import build_journeys, decompose, journey_windows
from repro.obs.attribution import (
    ALL_COMPONENTS,
    aggregate_journeys,
    attribution_table,
    render_waterfall,
)
from repro.overload.controller import OverloadController

INVITE = ("INVITE sip:bob@example.com SIP/2.0\r\n"
          "Via: SIP/2.0/UDP client1:5060;branch=z9hG4bK776asdhds\r\n"
          "Call-ID: a84b4c76e66710@client1\r\n"
          "CSeq: 314159 INVITE\r\n"
          "\r\n")


# ---------------------------------------------------------------------------
# trace-id sniffing and charge classification
# ---------------------------------------------------------------------------
class TestSniff:
    def test_call_id_plus_cseq_method(self):
        assert CausalTracer.sniff(INVITE) == "a84b4c76e66710@client1/INVITE"

    def test_method_disambiguates_dialog_transactions(self):
        bye = INVITE.replace("CSeq: 314159 INVITE", "CSeq: 314160 BYE")
        assert CausalTracer.sniff(bye) == "a84b4c76e66710@client1/BYE"
        assert CausalTracer.sniff(bye) != CausalTracer.sniff(INVITE)

    def test_no_call_id_is_untraced(self):
        assert CausalTracer.sniff("\r\n") is None
        assert CausalTracer.sniff("OPTIONS sip:x SIP/2.0\r\n\r\n") is None

    def test_missing_cseq_falls_back_to_bare_call_id(self):
        text = "X\r\nCall-ID: abc\r\n\r\n"
        assert CausalTracer.sniff(text) == "abc"


class TestClassifyCharge:
    def test_lock_labels(self):
        assert classify_charge("lock.txn_table.acquire") == "lock"
        assert classify_charge("kmutex.conn_hash.spin") == "lock"
        assert classify_charge("kernel.sched_yield") == "lock"

    def test_ipc_labels(self):
        for label in ("ipc_send_fd_request", "ipc_recv", "receive_fd",
                      "tcpconn_send_fd", "ipc_send", "send_fd"):
            assert classify_charge(label) == "ipc"

    def test_everything_else_is_cpu(self):
        assert classify_charge("parse_msg") == "cpu"
        assert classify_charge("tcp_send") == "cpu"


# ---------------------------------------------------------------------------
# CausalTracer mechanics
# ---------------------------------------------------------------------------
class TestCausalTracer:
    def test_note_skips_untagged_and_empty(self, engine):
        causal = CausalTracer(engine)
        causal.note(None, "cpu", "w", 0.0, 5.0)
        causal.note("tid", "cpu", "w", 5.0, 5.0)  # zero length
        causal.note("tid", "cpu", "w", 7.0, 5.0)  # negative
        assert len(causal) == 0
        causal.note("tid", "cpu", "w", 0.0, 5.0)
        assert len(causal) == 1

    def test_ring_buffer_evicts_oldest(self, engine):
        causal = CausalTracer(engine, capacity=4)
        for k in range(10):
            causal.note(f"t{k}", "cpu", "w", float(k), k + 1.0)
        assert len(causal) == 4
        assert causal.emitted == 10
        assert causal.dropped == 6
        assert causal.tids() == ["t6", "t7", "t8", "t9"]

    def test_block_hint_handshake(self, engine):
        causal = CausalTracer(engine)
        causal.ctx_begin("server/w0", "tid")
        causal.hint_block("ipc")
        causal.on_block_start("server/w0")
        engine.schedule(40.0, lambda: None)
        engine.run()
        causal.on_block_end("server/w0", 0.0)
        (seg,) = list(causal.segments)
        assert (seg.tid, seg.kind, seg.duration_us) == ("tid", "ipc", 40.0)

    def test_hint_ignored_without_context(self, engine):
        causal = CausalTracer(engine)
        causal.hint_block("ipc")
        causal.on_block_start("server/phone-proc")  # no ctx -> dropped
        causal.on_block_end("server/phone-proc", 0.0)
        assert len(causal) == 0
        # ...and the hint slot did not leak into the next blocker.
        causal.ctx_begin("server/w1", "tid")
        causal.on_block_start("server/w1")
        causal.on_block_end("server/w1", 0.0)
        assert len(causal) == 0

    def test_runq_earliest_stamp_wins(self, engine):
        causal = CausalTracer(engine)
        causal.ctx_begin("server/w0", "tid")
        causal.on_runq_push("server/w0")
        engine.schedule(30.0, lambda: None)
        engine.run()
        causal.on_runq_push("server/w0")  # re-push must not reset clock
        engine.schedule(20.0, lambda: None)
        engine.run()
        causal.on_runq_pop("server/w0")
        (seg,) = list(causal.segments)
        assert (seg.kind, seg.duration_us) == ("runq", 50.0)

    def test_charge_is_classified_and_backdated(self, engine):
        causal = CausalTracer(engine)
        causal.ctx_begin("server/w0", "tid")
        engine.schedule(100.0, lambda: None)
        engine.run()
        causal.on_charge("server/w0", "parse_msg", 12.0)
        causal.on_charge("server/w0", "ipc_recv", 6.0)
        segs = list(causal.segments)
        assert [(s.kind, s.start_us, s.end_us) for s in segs] == \
            [("cpu", 88.0, 100.0), ("ipc", 94.0, 100.0)]

    def test_ctx_end_stops_attribution(self, engine):
        causal = CausalTracer(engine)
        causal.ctx_begin("server/w0", "tid")
        causal.ctx_end("server/w0")
        causal.on_charge("server/w0", "parse_msg", 5.0)
        assert len(causal) == 0


# ---------------------------------------------------------------------------
# journey reconstruction
# ---------------------------------------------------------------------------
def seg(kind, start, end, tid="t", who="w"):
    return Segment(tid, kind, who, float(start), float(end))


class TestDecompose:
    def test_sums_to_window_with_gaps(self):
        parts = decompose([seg("network", 0, 10), seg("cpu", 30, 40)],
                          0.0, 50.0)
        assert parts["network"] == 10.0
        assert parts["cpu"] == 10.0
        assert parts["other"] == 30.0
        assert sum(parts.values()) == 50.0

    def test_retransmission_overlap_not_double_counted(self):
        # A retransmitted request re-tags the same trace id: two network
        # segments covering the same interval must count once.
        parts = decompose([seg("network", 0, 20), seg("network", 5, 20),
                           seg("network", 10, 25)], 0.0, 25.0)
        assert parts["network"] == 25.0
        assert parts["other"] == 0.0
        assert sum(parts.values()) == 25.0

    def test_clipped_to_window(self):
        parts = decompose([seg("cpu", -10, 5), seg("ipc", 20, 99)],
                          0.0, 30.0)
        assert parts["cpu"] == 5.0
        assert parts["ipc"] == 10.0
        assert sum(parts.values()) == 30.0

    def test_overlapping_kinds_first_start_wins(self):
        # A lock charge emitted inside a blocked-ipc interval: the
        # cursor walk keeps the earlier-starting evidence.
        parts = decompose([seg("ipc", 0, 20), seg("lock", 10, 15)],
                          0.0, 20.0)
        assert parts["ipc"] == 20.0
        assert parts["lock"] == 0.0


class TestJourneyWindows:
    def test_earliest_send_and_final_win(self, engine):
        causal = CausalTracer(engine)
        causal.marks = [("t1", "uac_send", "caller0", 100.0),
                        ("t1", "uac_send", "caller0", 600.0),  # rtx
                        ("t1", "uac_final", "caller0", 900.0)]
        assert journey_windows(causal) == [("t1", "caller0", 100.0, 900.0)]

    def test_no_final_no_window(self, engine):
        causal = CausalTracer(engine)
        causal.marks = [("t1", "uac_send", "caller0", 100.0)]
        assert journey_windows(causal) == []

    def test_window_filter_excludes_warmup(self, engine):
        causal = CausalTracer(engine)
        causal.marks = [("warm", "uac_send", "c", 10.0),
                        ("warm", "uac_final", "c", 20.0),
                        ("meas", "uac_send", "c", 110.0),
                        ("meas", "uac_final", "c", 130.0)]
        journeys = build_journeys(causal, window=(100.0, 200.0))
        assert [j.tid for j in journeys] == ["meas"]


class TestAggregate:
    def test_empty(self):
        assert aggregate_journeys([]) == {"journeys": 0}
        assert attribution_table({}) == "no journeys recorded"

    def test_shares_sum_to_one(self, engine):
        causal = CausalTracer(engine)
        causal.note("t1", "cpu", "w", 0.0, 60.0)
        causal.marks = [("t1", "uac_send", "c0", 0.0),
                        ("t1", "uac_final", "c0", 100.0),
                        ("t2", "uac_send", "c1", 0.0),
                        ("t2", "uac_final", "c1", 50.0)]
        attribution = aggregate_journeys(build_journeys(causal))
        assert attribution["journeys"] == 2
        assert attribution["callers"] == 2
        assert sum(attribution["shares"].values()) == pytest.approx(1.0)
        assert attribution["mean_total_us"] == pytest.approx(75.0)
        assert attribution["latency_us"]["p99"] >= \
            attribution["latency_us"]["p50"]
        text = attribution_table(attribution, label="x")
        for kind in ALL_COMPONENTS:
            assert kind in text


# ---------------------------------------------------------------------------
# StreamingHistogram.merge (satellite: per-phone fold without re-bucketing)
# ---------------------------------------------------------------------------
class TestHistogramMerge:
    def test_merge_equals_extend(self):
        a, b, both = (StreamingHistogram() for __ in range(3))
        xs = [10.0, 55.0, 120.0, 900.0]
        ys = [5.0, 64.0, 3200.0]
        a.extend(xs)
        b.extend(ys)
        both.extend(xs + ys)
        a.merge(b)
        assert len(a) == len(both)
        assert a.mean == pytest.approx(both.mean)
        for point in (50, 95, 99):
            assert a.percentile(point) == both.percentile(point)

    def test_merge_empty_is_identity(self):
        a = StreamingHistogram()
        a.extend([1.0, 2.0, 4.0])
        before = a.percentiles()
        a.merge(StreamingHistogram())
        assert a.percentiles() == before

    def test_quantile_stability_across_split_order(self):
        # Folding per-phone histograms must give the same quantiles
        # however the samples were partitioned.
        samples = [float(1 + (7 * k) % 5000) for k in range(2000)]
        whole = StreamingHistogram()
        whole.extend(samples)
        merged = StreamingHistogram()
        for start in range(0, len(samples), 137):
            part = StreamingHistogram()
            part.extend(samples[start:start + 137])
            merged.merge(part)
        for point in (50, 95, 99, 99.9):
            assert merged.percentile(point) == whole.percentile(point)
        assert merged.mean == pytest.approx(whole.mean)


# ---------------------------------------------------------------------------
# live cells
# ---------------------------------------------------------------------------
SMALL = dict(warmup_us=30_000.0, measure_us=100_000.0)


def run_causal_cell(transport="tcp", clients=5, workers=4, seed=1,
                    controller=None, **config):
    bed = Testbed(seed=seed, causal=True)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport=transport, workers=workers, **config)).start()
    if controller is not None:
        controller.bind(proxy)
        proxy.controller = controller
        proxy.core.controller = controller
    manager = BenchmarkManager(bed, proxy, Workload(clients=clients, **SMALL))
    result = manager.run()
    journeys = build_journeys(bed.causal, window=manager.measured_window)
    return bed, proxy, result, journeys


def assert_identity(journeys, rel_tol=0.01):
    """Per-journey decomposition must sum to the end-to-end latency."""
    assert journeys
    for j in journeys:
        total = sum(j.components.values())
        assert total == pytest.approx(j.total_us, rel=rel_tol), j.tid


class TestLiveAttribution:
    def test_tcp_journeys_decompose_and_show_ipc(self):
        bed, __, result, journeys = run_causal_cell(fd_cache=False)
        assert result.calls_failed == 0
        assert_identity(journeys)
        attribution = aggregate_journeys(journeys)
        # Cross-connection forwards need supervisor fd IPC; it must be
        # visible on the critical path.
        assert attribution["shares"]["ipc"] > 0.0
        assert attribution["shares"]["network"] > 0.0
        assert attribution["shares"]["cpu"] > 0.0
        assert bed.causal.dropped == 0

    def test_udp_journeys_have_no_ipc(self):
        __, __, result, journeys = run_causal_cell(transport="udp")
        assert result.calls_failed == 0
        assert_identity(journeys)
        attribution = aggregate_journeys(journeys)
        assert attribution["shares"]["ipc"] == 0.0

    def test_causal_off_produces_identical_numbers(self):
        bed = Testbed(seed=3)
        proxy = build_proxy(bed.server, ProxyConfig(
            transport="tcp", workers=4)).start()
        plain = BenchmarkManager(bed, proxy,
                                 Workload(clients=5, **SMALL)).run()
        __, __, traced, __ = run_causal_cell(seed=3)
        assert traced.throughput_ops_s == plain.throughput_ops_s
        assert traced.ops == plain.ops

    def test_rejected_503_journey_has_no_ipc_segment(self):
        # The 503 fast path replies on the arrival connection: no
        # supervisor descriptor round trip even over TCP.
        class RejectAll(OverloadController):
            name = "reject-all"

            def admit(self, now, source):
                return False

        bed, __, result, journeys = run_causal_cell(
            controller=RejectAll(), fd_cache=False)
        assert result.calls_completed == 0
        assert bed.causal.counters.get("core.rejected_503", 0) > 0
        invites = [j for j in journeys if j.method == "INVITE"]
        assert invites, "503 round trips should still form journeys"
        assert_identity(invites)
        for j in invites:
            assert j.components["ipc"] == 0.0, j.tid

    def test_journey_survives_worker_restart(self):
        from repro.analysis.experiments import ExperimentSpec, run_cell
        from repro.faults import FaultPlan, WorkerCrash

        plan = FaultPlan([WorkerCrash(start_us=30_000.0, worker=0)])
        spec = ExperimentSpec(series="tcp-persistent", clients=8, workers=4,
                              seed=3, causal=True, scale_windows=False,
                              warmup_us=50_000.0, measure_us=150_000.0,
                              fault_plan=plan.to_dict(), watchdog=True)
        result = run_cell(spec)
        assert result.proxy_stats["workers_restarted"] >= 1
        assert result.attribution["journeys"] > 0
        assert_identity(result.journeys)
        # The dead worker's trace-id context must not leak onto its
        # namesake successor.
        who = f"{result.testbed.server.name}/tcp-worker-0"
        restart_t = result.faults["restarts"][0]["t_us"]
        stale = [s for s in result.causal.segments
                 if s.who == who and s.start_us < restart_t < s.end_us]
        assert stale == []

    def test_retransmitted_invite_single_journey(self):
        from repro.analysis.experiments import ExperimentSpec, run_cell

        # Open-loop overload with a compressed T1: UAC retransmissions
        # re-mark uac_send, but each transaction still yields exactly one
        # journey clocked from the first send.
        spec = ExperimentSpec(series="udp", clients=8, workers=4, seed=2,
                              causal=True, scale_windows=False,
                              warmup_us=100_000.0, measure_us=400_000.0,
                              offered_cps=20_000.0, sip_t1_us=20_000.0,
                              config_overrides={"udp_rcvbuf_datagrams": 16})
        result = run_cell(spec)
        assert result.client_retransmissions > 0
        causal = result.causal
        sends = {}
        for tid, which, __, t_us in causal.marks:
            if which == "uac_send":
                sends.setdefault(tid, []).append(t_us)
        retransmitted = {tid for tid, ts in sends.items() if len(ts) >= 2}
        assert retransmitted, "overload cell produced no rtx-marked tids"
        journeys = {j.tid: j for j in result.journeys}
        hit = [tid for tid in retransmitted if tid in journeys]
        assert hit, "no retransmitted transaction completed in-window"
        for tid in hit:
            assert journeys[tid].start_us == min(sends[tid])
        assert_identity(list(journeys.values()))


# ---------------------------------------------------------------------------
# exports and CLI
# ---------------------------------------------------------------------------
class TestJourneyExport:
    def test_journey_trace_has_named_lanes(self, tmp_path):
        bed, __, __, journeys = run_causal_cell()
        path = tmp_path / "journey.json"
        count = write_journey_trace(path, bed.causal, extra={"fix": "none"})
        assert count == len(bed.causal.segments) + len(bed.causal.marks)
        info = validate_chrome_trace(path)
        assert info["metadata"] > 0  # M-phase lane names accepted
        assert {"network", "sockq", "ipc", "cpu"} <= info["names"]
        assert {"uac_send", "uac_final"} <= info["names"]
        payload = json.loads(path.read_text())
        meta_names = {event["args"]["name"]
                      for event in payload["traceEvents"]
                      if event["ph"] == "M"}
        # Server workers, the supervisor machine row and phone lanes all
        # get readable names.
        assert "server" in meta_names
        assert any(name.startswith("tcp-worker-") for name in meta_names)
        assert any(name.startswith("caller") for name in meta_names)

    def test_waterfall_renders_segments(self):
        bed, __, __, journeys = run_causal_cell()
        call_id = journeys[0].tid.split("/")[0]
        text = render_waterfall(bed.causal, call_id)
        assert "journey" in text and "network" in text
        assert render_waterfall(bed.causal, "no-such-call").startswith(
            "no completed journey")

    def test_attribution_lands_in_benchmark_result(self):
        from repro.analysis.attribution import attr_spec
        from repro.analysis.experiments import run_cell

        result = run_cell(attr_spec("tcp", "none", clients=5, smoke=True))
        assert result.attribution["journeys"] > 0
        assert set(result.attribution["shares"]) == set(ALL_COMPONENTS)
        json.dumps(result.attribution)  # JSON-clean for the cache schema

    def test_causal_specs_rejected_by_runner_and_cache(self):
        from repro.analysis.attribution import attr_spec
        from repro.analysis.cache import spec_payload
        from repro.analysis.runner import run_cells

        spec = attr_spec("tcp", "none", smoke=True)
        assert spec_payload(spec) is None
        with pytest.raises(ValueError, match="causal"):
            run_cells([spec], jobs=1)

    def test_fig_attr_cli_smoke(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_json = tmp_path / "attr.json"
        trace = tmp_path / "journeys.json"
        assert main(["fig-attr", "--smoke", "--transport", "tcp",
                     "--fixes", "none", "--clients", "6", "--workers", "4",
                     "--json", str(out_json),
                     "--journey-trace", str(trace)]) == 0
        data = json.loads(out_json.read_text())
        cell = data["grid"]["none"]
        assert cell["attribution"]["journeys"] > 0
        assert cell["journey_sample"]
        sample = cell["journey_sample"][0]
        assert set(sample) == {"tid", "who", "method", "start_us",
                               "end_us", "total_us", "components"}
        assert validate_chrome_trace(trace)["metadata"] > 0
        out = capsys.readouterr().out
        assert "latency attribution" in out


# ---------------------------------------------------------------------------
# the acceptance figure (slow)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_fd_cache_collapses_critical_path_ipc_share():
    """Acceptance: the fd cache moves TCP critical-path IPC share from
    ~12% (paper Table 3: 12.0%) to under 5% (paper: 4.6%)."""
    from repro.analysis.attribution import run_attr_figure

    data = run_attr_figure(transport="tcp", fixes=("none", "fdcache"))
    none_share = data["ipc_share"]["none"]
    cached_share = data["ipc_share"]["fdcache"]
    assert 0.08 <= none_share <= 0.18, none_share
    assert cached_share < 0.05, cached_share
    assert cached_share < none_share / 2.0
    for fix in ("none", "fdcache"):
        attribution = data["grid"][fix]["attribution"]
        total = sum(attribution["components_us"].values())
        assert total == pytest.approx(attribution["mean_total_us"],
                                      rel=0.01)
