"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.kernel.machine import Machine
from repro.net.fabric import Fabric
from repro.sim.engine import Engine


def drive(engine, gen, limit_us=10_000_000.0):
    """Run a cost-charging generator to completion on the bare engine and
    return its value (used to unit-test proxy generator methods)."""
    from repro.sim.process import SimProcess

    box = {}

    def body():
        box["value"] = yield from gen

    proc = SimProcess(engine, body(), "driver").start()
    run_until_done(engine, [proc], limit_us=limit_us)
    if proc.error is not None:
        raise proc.error
    return box.get("value")


def make_lan(engine, names, latency_us=50.0, **machine_kwargs):
    """A switched LAN with one machine per name; returns (fabric, machines)."""
    fabric = Fabric(engine, latency_us=latency_us)
    machines = {}
    for name in names:
        machine = Machine(engine, name, **machine_kwargs)
        fabric.attach(machine)
        machines[name] = machine
    return fabric, machines


@pytest.fixture
def engine():
    return Engine()


def run_until_done(engine, procs, limit_us=10_000_000.0):
    """Run the engine until every process in ``procs`` finished."""
    deadline = engine.now + limit_us
    while any(p.alive for p in procs):
        if not engine.step():
            break
        if engine.now > deadline:
            raise AssertionError(
                f"processes did not finish within {limit_us}us: "
                f"{[p for p in procs if p.alive]}")
    engine.run(until=engine.now)  # drain same-instant follow-up events
    return engine.now
