"""Unit tests for the multi-core weighted-fair scheduler."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.primitives import Compute, Sleep, Wait, YieldCPU
from repro.kernel.scheduler import (
    NICE_0_WEIGHT,
    Scheduler,
    nice_to_weight,
)

from conftest import run_until_done


def make_sched(engine, cores=1, quantum=2000.0, ctx=0.0, granularity=0.0):
    return Scheduler(engine, n_cores=cores, quantum_us=quantum,
                     ctx_switch_us=ctx, granularity_us=granularity)


def hog(us, label="hog", done_log=None, engine=None, tag=None):
    def body():
        yield Compute(us, label)
        if done_log is not None:
            done_log.append((tag, engine.now))
    return body()


def test_nice_to_weight_table():
    assert nice_to_weight(0) == NICE_0_WEIGHT == 1024
    assert nice_to_weight(-20) == 88761
    assert nice_to_weight(19) == 15
    with pytest.raises(ValueError):
        nice_to_weight(-21)
    with pytest.raises(ValueError):
        nice_to_weight(20)


def test_single_process_takes_exact_cpu_time(engine):
    sched = make_sched(engine)
    done = []
    proc = sched.spawn(hog(100.0, engine=engine, done_log=done, tag="p"), "p")
    proc.start()
    run_until_done(engine, [proc])
    assert done == [("p", 100.0)]
    assert proc.cpu_us == pytest.approx(100.0)


def test_two_equal_processes_share_one_core(engine):
    sched = make_sched(engine, cores=1, quantum=100.0)
    done = []
    procs = [
        sched.spawn(hog(1000.0, engine=engine, done_log=done, tag=i), f"p{i}").start()
        for i in range(2)
    ]
    run_until_done(engine, procs)
    # Serialized on one core: total elapsed equals total work.
    assert engine.now == pytest.approx(2000.0)
    # Fair sharing: both finish within one quantum of each other.
    times = dict(done)
    assert abs(times[0] - times[1]) <= 100.0 + 1e-6


def test_four_processes_on_four_cores_run_in_parallel(engine):
    sched = make_sched(engine, cores=4)
    procs = [sched.spawn(hog(500.0), f"p{i}").start() for i in range(4)]
    run_until_done(engine, procs)
    assert engine.now == pytest.approx(500.0)


def test_more_processes_than_cores_serializes(engine):
    sched = make_sched(engine, cores=2, quantum=50.0)
    procs = [sched.spawn(hog(300.0), f"p{i}").start() for i in range(4)]
    run_until_done(engine, procs)
    assert engine.now == pytest.approx(600.0)


def test_heavier_weight_gets_proportional_share(engine):
    # nice -5 (weight 3121) vs nice 0 (1024) on one core: the heavier
    # process should finish much earlier than a fair 50/50 split.
    sched = make_sched(engine, cores=1, quantum=100.0)
    done = []
    heavy = sched.spawn(hog(1000.0, engine=engine, done_log=done, tag="heavy"),
                        "heavy", nice=-5)
    light = sched.spawn(hog(1000.0, engine=engine, done_log=done, tag="light"),
                        "light", nice=0)
    heavy.start()
    light.start()
    run_until_done(engine, [heavy, light])
    times = dict(done)
    assert times["heavy"] < times["light"]
    # With ~3:1 weights, heavy needs ~1000/(3121/(3121+1024)) = ~1330us.
    assert times["heavy"] < 1600.0


def test_nice_minus20_process_preempts_on_wake(engine):
    sched = make_sched(engine, cores=1, quantum=5000.0)
    event = Event(engine, "go")
    wake_latency = []

    def supervisor():
        yield Wait(event)
        woke = engine.now
        yield Compute(10.0, "supervisor_work")
        wake_latency.append(engine.now - woke)

    def worker():
        yield Compute(50_000.0, "worker_work")

    sup = sched.spawn(supervisor(), "sup", nice=-20).start()
    wrk = sched.spawn(worker(), "wrk", nice=0).start()
    engine.schedule(1000.0, event.fire, None)
    run_until_done(engine, [sup, wrk])
    # The -20 supervisor should run essentially immediately on wake.
    assert wake_latency[0] == pytest.approx(10.0, abs=1.0)


def test_nice0_wakeup_waits_for_slice_end(engine):
    sched = make_sched(engine, cores=1, quantum=2000.0)
    event = Event(engine, "go")
    start_delay = []

    def latecomer():
        yield Wait(event)
        woke = engine.now
        yield Compute(10.0, "late_work")
        start_delay.append(engine.now - woke - 10.0)

    def worker():
        yield Compute(50_000.0, "worker_work")

    late = sched.spawn(latecomer(), "late", nice=0).start()
    sched.spawn(worker(), "wrk", nice=0).start()
    engine.schedule(100.0, event.fire, None)
    run_until_done(engine, [late])
    # Equal priority: must wait for the hog's current slice to expire.
    assert start_delay[0] > 500.0


def test_sched_yield_goes_behind_ready_peers(engine):
    sched = make_sched(engine, cores=1, quantum=10_000.0)
    order = []

    def yielder():
        yield Compute(10.0, "a")
        order.append("yielder-before")
        yield YieldCPU()
        order.append("yielder-after")
        yield Compute(10.0, "a2")

    def other():
        yield Compute(10.0, "b")
        order.append("other")

    y = sched.spawn(yielder(), "y").start()
    o = sched.spawn(other(), "o").start()
    run_until_done(engine, [y, o])
    assert order.index("other") < order.index("yielder-after")


def test_blocking_releases_core_to_peer(engine):
    sched = make_sched(engine, cores=1, quantum=10_000.0)
    done = []

    def blocker():
        yield Compute(10.0, "pre")
        yield Sleep(1000.0)
        yield Compute(10.0, "post")
        done.append(("blocker", engine.now))

    def peer():
        yield Compute(100.0, "peer")
        done.append(("peer", engine.now))

    b = sched.spawn(blocker(), "b").start()
    p = sched.spawn(peer(), "p").start()
    run_until_done(engine, [b, p])
    times = dict(done)
    # Peer runs during the blocker's sleep.
    assert times["peer"] == pytest.approx(110.0)
    assert times["blocker"] == pytest.approx(1020.0)


def test_busy_time_accounting(engine):
    sched = make_sched(engine, cores=2)
    procs = [sched.spawn(hog(500.0), f"p{i}").start() for i in range(2)]
    run_until_done(engine, procs)
    assert sched.total_busy_us() == pytest.approx(1000.0)


def test_context_switch_cost_is_charged(engine):
    sched = make_sched(engine, cores=1, ctx=2.0)
    proc = sched.spawn(hog(100.0), "p").start()
    run_until_done(engine, [proc])
    assert engine.now == pytest.approx(102.0)
    assert sched.total_busy_us() == pytest.approx(102.0)


def test_profiler_receives_labels(engine):
    records = []

    class Profiler:
        def record(self, label, us, proc_name):
            records.append((label, us, proc_name))

    sched = Scheduler(engine, n_cores=1, quantum_us=2000.0,
                      ctx_switch_us=0.0, profiler=Profiler())
    proc = sched.spawn(hog(42.0, label="my_function"), "p").start()
    run_until_done(engine, [proc])
    labels = {label for label, __, __ in records}
    assert "my_function" in labels
    total = sum(us for label, us, __ in records if label == "my_function")
    assert total == pytest.approx(42.0)


def test_many_small_bursts_accumulate_exactly(engine):
    sched = make_sched(engine, cores=1)

    def body():
        for __ in range(100):
            yield Compute(1.0, "burst")

    proc = sched.spawn(body(), "p").start()
    run_until_done(engine, [proc])
    assert engine.now == pytest.approx(100.0)
    assert proc.cpu_us == pytest.approx(100.0)


def test_runnable_count(engine):
    sched = make_sched(engine, cores=1)
    procs = [sched.spawn(hog(1000.0), f"p{i}").start() for i in range(3)]
    engine.run(until=500.0)
    assert sched.runnable() == 3
    run_until_done(engine, procs)
    assert sched.runnable() == 0
