"""Unit tests for socket buffers and port allocation."""

import pytest

from repro.sim.engine import Engine
from repro.kernel.sockets import (
    DatagramBuffer,
    PortAllocator,
    PortExhaustedError,
    StreamBuffer,
)


class TestDatagramBuffer:
    def test_push_pop_fifo(self, engine):
        buf = DatagramBuffer(engine, capacity=4)
        buf.push("a")
        buf.push("b")
        assert buf.pop() == "a"
        assert buf.pop() == "b"

    def test_overflow_drops(self, engine):
        buf = DatagramBuffer(engine, capacity=2)
        assert buf.push(1)
        assert buf.push(2)
        assert not buf.push(3)
        assert buf.drops == 1
        assert len(buf) == 2

    def test_readable_signal_fires_on_push(self, engine):
        buf = DatagramBuffer(engine, capacity=4)
        woken = []
        buf.readable_signal.subscribe(woken.append)
        buf.push("x")
        engine.run()
        assert len(woken) == 1

    def test_pop_empty_raises(self, engine):
        buf = DatagramBuffer(engine, capacity=4)
        with pytest.raises(IndexError):
            buf.pop()


class TestStreamBuffer:
    def test_bytes_flow_in_order(self, engine):
        buf = StreamBuffer(engine, capacity_bytes=100)
        buf.push("hello ")
        buf.push("world")
        assert buf.read() == "hello world"
        assert buf.size == 0

    def test_partial_read_splits_chunks(self, engine):
        buf = StreamBuffer(engine, capacity_bytes=100)
        buf.push("abcdef")
        assert buf.read(4) == "abcd"
        assert buf.read(4) == "ef"

    def test_space_and_overrun(self, engine):
        buf = StreamBuffer(engine, capacity_bytes=10)
        buf.push("12345")
        assert buf.space() == 5
        with pytest.raises(BufferError):
            buf.push("6789012345")

    def test_read_frees_space_and_fires_writable(self, engine):
        buf = StreamBuffer(engine, capacity_bytes=10)
        woken = []
        buf.push("1234567890")
        buf.writable_signal.subscribe(woken.append)
        buf.read(4)
        engine.run()
        assert buf.space() == 4
        assert len(woken) == 1

    def test_eof_makes_empty_buffer_readable(self, engine):
        buf = StreamBuffer(engine, capacity_bytes=10)
        assert not buf.readable()
        buf.push_eof()
        assert buf.readable()
        assert buf.read() == ""
        assert buf.eof


class TestPortAllocator:
    def test_allocate_unique_ports(self, engine):
        ports = PortAllocator(engine, lo=100, hi=110, time_wait_us=0)
        allocated = {ports.allocate() for __ in range(10)}
        assert len(allocated) == 10
        assert all(100 <= p < 110 for p in allocated)

    def test_exhaustion_raises(self, engine):
        ports = PortAllocator(engine, lo=100, hi=102, time_wait_us=0)
        ports.allocate()
        ports.allocate()
        with pytest.raises(PortExhaustedError):
            ports.allocate()
        assert ports.exhaustions == 1

    def test_release_without_time_wait_is_immediate(self, engine):
        ports = PortAllocator(engine, lo=100, hi=101, time_wait_us=1000.0)
        port = ports.allocate()
        ports.release(port, time_wait=False)
        assert ports.allocate() == port

    def test_time_wait_holds_port(self, engine):
        ports = PortAllocator(engine, lo=100, hi=101, time_wait_us=1000.0)
        port = ports.allocate()
        ports.release(port)
        assert ports.in_time_wait == 1
        with pytest.raises(PortExhaustedError):
            ports.allocate()
        engine.run(until=2000.0)
        assert ports.in_time_wait == 0
        assert ports.allocate() == port

    def test_release_unallocated_raises(self, engine):
        ports = PortAllocator(engine, lo=100, hi=110, time_wait_us=0)
        with pytest.raises(ValueError):
            ports.release(105)

    def test_empty_range_rejected(self, engine):
        with pytest.raises(ValueError):
            PortAllocator(engine, lo=100, hi=100)
