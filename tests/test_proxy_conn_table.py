"""Unit tests for the shared connection table and fd cache."""

import pytest

from repro.sim.engine import Engine
from repro.kernel.fdtable import FdTable, FileDescription
from repro.proxy.conn_table import ConnTable
from repro.proxy.costs import CostModel
from repro.proxy.fd_cache import FdCache

from conftest import drive


class FakeConn:
    def __init__(self):
        self.closed = False

    def on_last_close(self):
        self.closed = True


def insert_record(engine, table, owner=0, now=0.0):
    conn = FakeConn()
    desc = FileDescription(conn, "tcp-conn")
    return drive(engine, table.insert(conn, desc, owner, now))


@pytest.fixture
def table():
    return ConnTable(CostModel())


class TestConnTable:
    def test_insert_assigns_ids(self, engine, table):
        r1 = insert_record(engine, table)
        r2 = insert_record(engine, table)
        assert r1.conn_id != r2.conn_id
        assert len(table) == 2

    def test_alias_lookup(self, engine, table):
        record = insert_record(engine, table)
        drive(engine, table.set_alias(record, ("client1", 40000)))
        found = drive(engine, table.lookup_alias(("client1", 40000)))
        assert found is record

    def test_alias_rebind_moves_to_new_record(self, engine, table):
        old = insert_record(engine, table)
        new = insert_record(engine, table)
        drive(engine, table.set_alias(old, ("client1", 40000)))
        drive(engine, table.set_alias(new, ("client1", 40000)))
        assert drive(engine, table.lookup_alias(("client1", 40000))) is new

    def test_released_record_not_returned_by_alias(self, engine, table):
        record = insert_record(engine, table)
        drive(engine, table.set_alias(record, ("client1", 40000)))
        record.released = True
        assert drive(engine, table.lookup_alias(("client1", 40000))) is None

    def test_remove_marks_closed_and_unaliases(self, engine, table):
        record = insert_record(engine, table)
        drive(engine, table.set_alias(record, ("client1", 40000)))
        drive(engine, table.remove(record))
        assert record.closed
        assert len(table) == 0
        assert drive(engine, table.lookup_alias(("client1", 40000))) is None

    def test_idle_deadline_uses_release_time_when_released(self, engine, table):
        record = insert_record(engine, table, now=0.0)
        record.last_activity = 100.0
        assert record.idle_deadline(50.0) == 150.0
        record.released = True
        record.released_at = 400.0
        assert record.idle_deadline(50.0) == 450.0


class TestFdCache:
    def make(self):
        table = FdTable(limit=32, owner="w")
        return FdCache(table, "w"), table

    def record(self, engine, conn_table):
        return insert_record(engine, conn_table)

    def test_miss_then_hit(self, engine, table):
        cache, fdtable = self.make()
        record = self.record(engine, table)
        assert cache.probe(record) is None
        fd = fdtable.install(record.desc)
        cache.store(record, fd)
        assert cache.probe(record) == fd
        assert cache.hits == 1
        assert cache.misses == 1

    def test_probe_of_released_conn_evicts(self, engine, table):
        cache, fdtable = self.make()
        record = self.record(engine, table)
        fd = fdtable.install(record.desc)
        cache.store(record, fd)
        record.released = True
        assert cache.probe(record) is None
        assert len(cache) == 0
        assert fd not in fdtable  # the cached fd was closed

    def test_evict_dead_closes_fds(self, engine, table):
        cache, fdtable = self.make()
        records = [self.record(engine, table) for __ in range(3)]
        for record in records:
            cache.store(record, fdtable.install(record.desc))
        records[0].closed = True
        records[1].released = True
        assert cache.evict_dead() == 2
        assert len(cache) == 1

    def test_cached_fd_pins_description(self, engine, table):
        cache, fdtable = self.make()
        record = self.record(engine, table)
        record.desc.incref()  # supervisor's reference
        fd = fdtable.install(record.desc)
        cache.store(record, fd)
        record.desc.decref()  # supervisor closes
        assert not record.conn.closed  # cache still pins it
        cache.evict_record(record)
        assert record.conn.closed

    def test_store_replaces_stale_fd(self, engine, table):
        cache, fdtable = self.make()
        record = self.record(engine, table)
        fd1 = fdtable.install(record.desc)
        record.desc.incref()
        fd2 = fdtable.install(record.desc)
        cache.store(record, fd1)
        cache.store(record, fd2)
        assert cache.probe(record) == fd2
        assert fd1 not in fdtable
