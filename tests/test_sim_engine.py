"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_events_fire_in_time_order(engine):
    order = []
    engine.schedule(30.0, order.append, "c")
    engine.schedule(10.0, order.append, "a")
    engine.schedule(20.0, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30.0


def test_same_time_events_fire_in_schedule_order(engine):
    order = []
    for tag in "abcde":
        engine.schedule(5.0, order.append, tag)
    engine.run()
    assert order == list("abcde")


def test_cancelled_events_do_not_fire(engine):
    fired = []
    handle = engine.schedule(10.0, fired.append, "x")
    engine.schedule(5.0, handle.cancel)
    engine.run()
    assert fired == []


def test_cancel_is_idempotent(engine):
    handle = engine.schedule(10.0, lambda: None)
    handle.cancel()
    handle.cancel()
    engine.run()


def test_run_until_advances_clock_even_without_events(engine):
    engine.schedule(10.0, lambda: None)
    end = engine.run(until=100.0)
    assert end == 100.0
    assert engine.now == 100.0


def test_run_until_leaves_future_events_pending(engine):
    fired = []
    engine.schedule(50.0, fired.append, "later")
    engine.run(until=20.0)
    assert fired == []
    assert engine.pending == 1
    engine.run()
    assert fired == ["later"]


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected(engine):
    engine.schedule(10.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5.0, lambda: None)


def test_events_can_schedule_more_events(engine):
    order = []

    def first():
        order.append("first")
        engine.schedule(5.0, lambda: order.append("second"))

    engine.schedule(1.0, first)
    engine.run()
    assert order == ["first", "second"]
    assert engine.now == 6.0


def test_stop_halts_run(engine):
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(2.0, engine.stop)
    engine.schedule(3.0, fired.append, "b")
    engine.run()
    assert fired == ["a"]
    engine.run()
    assert fired == ["a", "b"]


def test_step_returns_false_when_empty(engine):
    assert engine.step() is False


def test_pending_counts_uncancelled(engine):
    h1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    h1.cancel()
    assert engine.pending == 1


def test_cancel_after_fire_does_not_skew_pending(engine):
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run(until=1.5)
    handle.cancel()  # already fired: must be a no-op
    assert engine.pending == 1
    engine.run()
    assert engine.pending == 0


def test_compaction_bounds_cancelled_heap_bloat(engine):
    """Restart-style cancel churn must not grow the heap without bound."""
    keep = engine.schedule(10_000.0, lambda: None)
    for __ in range(4 * Engine.COMPACT_MIN):
        engine.schedule(100.0, lambda: None).cancel()
    assert len(engine._heap) <= Engine.COMPACT_MIN
    assert engine.pending == 1
    assert not keep.cancelled
    engine.run()
    assert engine.now == 10_000.0


def test_compaction_preserves_event_order(engine):
    order = []
    handles = [engine.schedule(float(t), order.append, t)
               for t in range(1, 2 * Engine.COMPACT_MIN)]
    for handle in handles[1::2]:
        handle.cancel()
    engine.compact()
    engine.run()
    assert order == [t for t in range(1, 2 * Engine.COMPACT_MIN) if t % 2]
