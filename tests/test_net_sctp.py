"""Unit tests for the SCTP transport."""

import pytest

from repro.sim.engine import Engine
from repro.net.sctp import SctpEndpoint

from conftest import make_lan, run_until_done


def test_connect_establishes_association(engine):
    __, machines = make_lan(engine, ["client", "server"])
    SctpEndpoint(machines["server"], 5060)
    client_ep = SctpEndpoint(machines["client"], 40000)
    results = {}

    def client():
        assoc = yield from client_ep.connect("server", 5060)
        results["assoc"] = assoc
        results["at"] = engine.now

    proc = machines["client"].spawn_light(client(), "c").start()
    run_until_done(engine, [proc])
    assert results["assoc"].established
    assert results["at"] >= 100.0  # one round trip


def test_message_boundaries_preserved(engine):
    __, machines = make_lan(engine, ["client", "server"])
    server_ep = SctpEndpoint(machines["server"], 5060)
    client_ep = SctpEndpoint(machines["client"], 40000)
    got = []

    def client():
        assoc = yield from client_ep.connect("server", 5060)
        client_ep.sendmsg(assoc, "first message")
        client_ep.sendmsg(assoc, "second message")

    def server():
        for __ in range(2):
            assoc, payload = yield from server_ep.recvmsg()
            got.append(payload)

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    assert got == ["first message", "second message"]


def test_server_can_reply_over_same_association(engine):
    __, machines = make_lan(engine, ["client", "server"])
    server_ep = SctpEndpoint(machines["server"], 5060)
    client_ep = SctpEndpoint(machines["client"], 40000)
    got = []

    def client():
        assoc = yield from client_ep.connect("server", 5060)
        client_ep.sendmsg(assoc, "ping")
        __, payload = yield from client_ep.recvmsg()
        got.append(payload)

    def server():
        assoc, payload = yield from server_ep.recvmsg()
        server_ep.sendmsg(assoc, "pong:" + payload)

    procs = [machines["client"].spawn_light(client(), "c").start(),
             machines["server"].spawn_light(server(), "s").start()]
    run_until_done(engine, procs)
    assert got == ["pong:ping"]


def test_associations_are_reused(engine):
    __, machines = make_lan(engine, ["client", "server"])
    server_ep = SctpEndpoint(machines["server"], 5060)
    client_ep = SctpEndpoint(machines["client"], 40000)

    def client():
        assoc1 = yield from client_ep.connect("server", 5060)
        assoc2 = yield from client_ep.connect("server", 5060)
        assert assoc1 is assoc2

    proc = machines["client"].spawn_light(client(), "c").start()
    run_until_done(engine, [proc])
    assert len(client_ep.associations) == 1


def test_multiple_workers_share_one_socket(engine):
    """The §6 point: SCTP lets symmetric workers receive like UDP."""
    __, machines = make_lan(engine, ["client", "server"])
    server_ep = SctpEndpoint(machines["server"], 5060)
    client_ep = SctpEndpoint(machines["client"], 40000)
    got = []

    def worker(tag):
        assoc, payload = yield from server_ep.recvmsg()
        got.append((tag, payload))

    def client():
        assoc = yield from client_ep.connect("server", 5060)
        for i in range(3):
            client_ep.sendmsg(assoc, f"m{i}")

    procs = [machines["server"].spawn_light(worker(i), f"w{i}").start()
             for i in range(3)]
    procs.append(machines["client"].spawn_light(client(), "c").start())
    run_until_done(engine, procs)
    assert sorted(payload for __, payload in got) == ["m0", "m1", "m2"]
    assert len({tag for tag, __ in got}) == 3


def test_sendmsg_without_association_raises(engine):
    __, machines = make_lan(engine, ["client", "server"])
    client_ep = SctpEndpoint(machines["client"], 40000)
    assoc = client_ep.association_to("server", 5060)
    with pytest.raises(OSError):
        client_ep.sendmsg(assoc, "too early")


def test_double_bind_rejected(engine):
    __, machines = make_lan(engine, ["server"])
    SctpEndpoint(machines["server"], 5060)
    with pytest.raises(OSError):
        SctpEndpoint(machines["server"], 5060)
