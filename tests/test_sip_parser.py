"""Unit tests for SIP parsing and stream framing."""

import pytest

from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import SipParseError, StreamFramer, parse_message

INVITE_TEXT = (
    "INVITE sip:bob@example.com SIP/2.0\r\n"
    "Via: SIP/2.0/UDP client1:40000;branch=z9hG4bKnashds8\r\n"
    "Max-Forwards: 70\r\n"
    "From: \"Alice\" <sip:alice@example.com>;tag=1928301774\r\n"
    "To: <sip:bob@example.com>\r\n"
    "Call-ID: a84b4c76e66710@client1\r\n"
    "CSeq: 314159 INVITE\r\n"
    "Contact: <sip:alice@client1:40000>\r\n"
    "Content-Type: application/sdp\r\n"
    "Content-Length: 4\r\n"
    "\r\n"
    "v=0\n"
)

OK_TEXT = (
    "SIP/2.0 200 OK\r\n"
    "Via: SIP/2.0/UDP client1:40000;branch=z9hG4bKnashds8\r\n"
    "From: <sip:alice@example.com>;tag=1928301774\r\n"
    "To: <sip:bob@example.com>;tag=a6c85cf\r\n"
    "Call-ID: a84b4c76e66710@client1\r\n"
    "CSeq: 314159 INVITE\r\n"
    "Content-Length: 0\r\n"
    "\r\n"
)


def test_parse_request():
    msg = parse_message(INVITE_TEXT)
    assert isinstance(msg, SipRequest)
    assert msg.method == "INVITE"
    assert msg.uri.user == "bob"
    assert msg.body == "v=0\n"
    assert msg.cseq.number == 314159


def test_parse_response():
    msg = parse_message(OK_TEXT)
    assert isinstance(msg, SipResponse)
    assert msg.status == 200
    assert msg.reason == "OK"
    assert msg.to_addr.tag == "a6c85cf"


def test_roundtrip_request():
    msg = parse_message(INVITE_TEXT)
    assert parse_message(msg.render()).render() == msg.render()


def test_compact_header_forms():
    text = (
        "BYE sip:bob@example.com SIP/2.0\r\n"
        "v: SIP/2.0/UDP client1:40000;branch=z9hG4bKq\r\n"
        "f: <sip:alice@example.com>;tag=1\r\n"
        "t: <sip:bob@example.com>;tag=2\r\n"
        "i: call-9\r\n"
        "CSeq: 2 BYE\r\n"
        "l: 0\r\n"
        "\r\n"
    )
    msg = parse_message(text)
    assert msg.call_id == "call-9"
    assert msg.top_via.host == "client1"
    assert msg.content_length == 0


def test_header_name_canonicalization():
    text = (
        "OPTIONS sip:example.com SIP/2.0\r\n"
        "CALL-ID: x\r\n"
        "content-length: 0\r\n"
        "\r\n"
    )
    msg = parse_message(text)
    assert msg.get("Call-ID") == "x"


def test_folded_header_continuation():
    text = (
        "OPTIONS sip:example.com SIP/2.0\r\n"
        "Subject: first part\r\n"
        " second part\r\n"
        "Content-Length: 0\r\n"
        "\r\n"
    )
    msg = parse_message(text)
    assert msg.get("Subject") == "first part second part"


@pytest.mark.parametrize("bad", [
    "",
    "NOT A SIP MESSAGE",
    "INVITE sip:bob@example.com\r\n\r\n",           # missing version
    "SIP/2.0 999999 Weird\r\n\r\n",                  # status out of range
    "INVITE sip:bob@x SIP/2.0\r\nBadHeader\r\n\r\n",  # no colon
    "INVITE http://x SIP/2.0\r\n\r\n",               # non-sip uri
])
def test_malformed_messages_rejected(bad):
    with pytest.raises(SipParseError):
        parse_message(bad)


def test_content_length_mismatch_rejected():
    text = (
        "INVITE sip:bob@example.com SIP/2.0\r\n"
        "Content-Length: 10\r\n"
        "\r\n"
        "short"
    )
    with pytest.raises(SipParseError):
        parse_message(text)


class TestStreamFramer:
    def test_single_message(self):
        framer = StreamFramer()
        out = framer.feed(INVITE_TEXT)
        assert out == [INVITE_TEXT]
        assert framer.buffered_bytes == 0

    def test_message_split_across_feeds(self):
        framer = StreamFramer()
        mid = len(INVITE_TEXT) // 2
        assert framer.feed(INVITE_TEXT[:mid]) == []
        assert framer.feed(INVITE_TEXT[mid:]) == [INVITE_TEXT]

    def test_two_messages_in_one_feed(self):
        framer = StreamFramer()
        out = framer.feed(INVITE_TEXT + OK_TEXT)
        assert out == [INVITE_TEXT, OK_TEXT]

    def test_body_split_at_boundary(self):
        framer = StreamFramer()
        head_end = INVITE_TEXT.index("\r\n\r\n") + 4
        assert framer.feed(INVITE_TEXT[:head_end]) == []
        assert framer.feed(INVITE_TEXT[head_end:]) == [INVITE_TEXT]

    def test_byte_at_a_time(self):
        framer = StreamFramer()
        collected = []
        for char in INVITE_TEXT + OK_TEXT:
            collected.extend(framer.feed(char))
        assert collected == [INVITE_TEXT, OK_TEXT]

    def test_compact_content_length_framing(self):
        text = ("BYE sip:b@x SIP/2.0\r\n"
                "l: 3\r\n"
                "\r\n"
                "abc")
        framer = StreamFramer()
        assert framer.feed(text) == [text]

    def test_oversized_buffer_raises(self):
        framer = StreamFramer(max_message_bytes=64)
        with pytest.raises(SipParseError):
            framer.feed("x" * 100)

    def test_framed_counter(self):
        framer = StreamFramer()
        framer.feed(INVITE_TEXT + OK_TEXT)
        assert framer.messages_framed == 2
