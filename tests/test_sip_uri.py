"""Unit tests for sip: URI parsing."""

import pytest

from repro.sip.uri import SipUri


def test_parse_full_uri():
    uri = SipUri.parse("sip:alice@example.com:5060;transport=tcp")
    assert uri.user == "alice"
    assert uri.host == "example.com"
    assert uri.port == 5060
    assert uri.params == {"transport": "tcp"}


def test_parse_minimal_uri():
    uri = SipUri.parse("sip:example.com")
    assert uri.user is None
    assert uri.host == "example.com"
    assert uri.port is None


def test_parse_user_without_port():
    uri = SipUri.parse("sip:bob@voip.org")
    assert uri.user == "bob"
    assert uri.port is None


def test_render_roundtrip():
    for text in ("sip:alice@example.com:5060;transport=tcp",
                 "sip:example.com",
                 "sip:bob@voip.org;lr"):
        assert SipUri.parse(text).render() == text


def test_valueless_param():
    uri = SipUri.parse("sip:proxy.example.com;lr")
    assert uri.params == {"lr": ""}
    assert uri.render() == "sip:proxy.example.com;lr"


def test_aor():
    assert SipUri.parse("sip:alice@example.com:5070").aor == "alice@example.com"
    assert SipUri.parse("sip:example.com").aor == "example.com"


def test_equality_and_hash():
    a = SipUri.parse("sip:alice@example.com")
    b = SipUri.parse("sip:alice@example.com")
    assert a == b
    assert hash(a) == hash(b)
    assert a != SipUri.parse("sip:bob@example.com")


@pytest.mark.parametrize("bad", [
    "http://example.com",
    "sip:",
    "sip:@example.com",
    "sip:alice@host:notaport",
    "alice@example.com",
])
def test_malformed_uris_rejected(bad):
    with pytest.raises(ValueError):
        SipUri.parse(bad)
