"""Unit tests for the smaller supporting pieces: timers, tick sources,
machine, stats, config, rng."""

import pytest

from repro.kernel.machine import Machine
from repro.kernel.poller import TickSource
from repro.kernel.timerwheel import PeriodicTimer, Timer
from repro.proxy.config import ProxyConfig
from repro.proxy.costs import CostModel
from repro.proxy.stats import ProxyStats
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


class TestTimer:
    def test_fires_once(self, engine):
        fired = []
        timer = Timer(engine, fired.append, "x")
        timer.start(100.0)
        engine.run()
        assert fired == ["x"]
        assert not timer.active

    def test_cancel(self, engine):
        fired = []
        timer = Timer(engine, fired.append, "x")
        timer.start(100.0)
        timer.cancel()
        engine.run()
        assert fired == []

    def test_restart_reschedules(self, engine):
        fired = []
        timer = Timer(engine, lambda: fired.append(engine.now))
        timer.start(100.0)
        timer.start(500.0)  # restart supersedes
        engine.run()
        assert fired == [500.0]


class TestPeriodicTimer:
    def test_fires_repeatedly_until_stopped(self, engine):
        fired = []
        timer = PeriodicTimer(engine, 100.0, lambda: fired.append(engine.now))
        timer.start()
        engine.schedule(350.0, timer.stop)
        engine.run(until=1000.0)
        assert fired == [100.0, 200.0, 300.0]

    def test_bad_period_rejected(self, engine):
        with pytest.raises(ValueError):
            PeriodicTimer(engine, 0.0, lambda: None)

    def test_exception_in_callback_stops_timer(self, engine):
        fired = []

        def boom():
            fired.append(engine.now)
            raise RuntimeError("callback failed")

        timer = PeriodicTimer(engine, 100.0, boom)
        timer.start()
        with pytest.raises(RuntimeError):
            engine.run(until=1000.0)
        # No zombie reschedule: the timer is stopped, nothing pending.
        assert not timer.running
        assert fired == [100.0]
        engine.run(until=2000.0)
        assert fired == [100.0]

    def test_callback_may_stop_its_own_timer(self, engine):
        timer = PeriodicTimer(engine, 100.0, lambda: timer.stop())
        timer.start()
        engine.run(until=1000.0)
        assert not timer.running
        assert engine.pending == 0


class TestTickSource:
    def test_becomes_readable_each_period(self, engine):
        tick = TickSource(engine, 1000.0)
        assert not tick.readable()
        engine.run(until=1500.0)
        assert tick.readable()
        tick.consume()
        assert not tick.readable()
        engine.run(until=2500.0)
        assert tick.readable()

    def test_signal_fires_on_tick(self, engine):
        tick = TickSource(engine, 1000.0)
        woken = []
        tick.readable_signal.listen(lambda v: woken.append(engine.now))
        engine.run(until=2500.0)
        assert woken == [1000.0, 2000.0]

    def test_bad_period_rejected(self, engine):
        with pytest.raises(ValueError):
            TickSource(engine, 0.0)


class TestMachine:
    def test_spawn_attaches_fdtable(self, engine):
        machine = Machine(engine, "m", fd_limit=7)

        def body():
            yield from ()

        proc = machine.spawn(body(), "p")
        assert proc.fdtable is not None
        assert proc.fdtable.limit == 7
        assert proc.name == "m/p"

    def test_cpu_utilization_window(self, engine):
        from repro.sim.primitives import Compute
        machine = Machine(engine, "m", n_cores=2)

        def body():
            yield Compute(500.0, "w")

        machine.spawn(body(), "p").start()
        busy0 = machine.scheduler.total_busy_us()
        engine.run(until=1000.0)
        # 500us busy on 2 cores over 1000us = 25% (+ context switch).
        util = machine.cpu_utilization(busy0, 1000.0)
        assert util == pytest.approx(0.25, abs=0.01)


class TestProxyStats:
    def test_snapshot_delta(self):
        stats = ProxyStats()
        stats.messages_received = 10
        snap = stats.snapshot()
        stats.messages_received = 25
        stats.accepts = 3
        delta = stats.delta(snap)
        assert delta["messages_received"] == 15
        assert delta["accepts"] == 3

    def test_snapshot_keeps_float_counters(self):
        stats = ProxyStats()
        stats.messages_received = 10
        stats.cpu_busy_us = 123.5  # a future float-valued counter
        snap = stats.snapshot()
        assert snap["cpu_busy_us"] == 123.5
        stats.cpu_busy_us = 200.0
        assert stats.delta(snap)["cpu_busy_us"] == pytest.approx(76.5)

    def test_snapshot_excludes_bools(self):
        stats = ProxyStats()
        stats.degraded = True  # flag, not a counter
        assert "degraded" not in stats.snapshot()

    def test_fd_cache_hit_rate(self):
        stats = ProxyStats()
        assert stats.fd_cache_hit_rate is None
        stats.fd_cache_hits = 3
        stats.fd_cache_misses = 1
        assert stats.fd_cache_hit_rate == pytest.approx(0.75)


class TestProxyConfig:
    def test_defaults_validate(self):
        ProxyConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        dict(transport="smoke-signals"),
        dict(idle_strategy="forget"),
        dict(workers=0),
        dict(supervisor_nice=-30),
        dict(idle_timeout_us=0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProxyConfig(**kwargs).validate()

    def test_reliability_classification(self):
        assert not ProxyConfig(transport="udp").reliable_transport
        assert ProxyConfig(transport="tcp").reliable_transport
        assert ProxyConfig(transport="sctp").reliable_transport
        assert ProxyConfig(transport="tcp-threaded").reliable_transport


class TestCostModel:
    def test_parse_cost_grows_with_size_and_phones(self):
        costs = CostModel()
        assert costs.parse_cost(800) > costs.parse_cost(200)
        assert costs.parse_cost(500, registered_phones=2000) > \
            costs.parse_cost(500, registered_phones=0)

    def test_scaled(self):
        costs = CostModel()
        doubled = costs.scaled(2.0)
        assert doubled.parse_msg_us == pytest.approx(2 * costs.parse_msg_us)
        assert doubled.tcp_send_us == pytest.approx(2 * costs.tcp_send_us)

    def test_fd_request_cost_grows_with_table(self):
        costs = CostModel()
        assert costs.fd_request_cost(2000) > costs.fd_request_cost(0)


class TestRngStreams:
    def test_streams_independent_and_deterministic(self):
        a = RngStreams(1)
        b = RngStreams(1)
        assert a.stream("x").random() == b.stream("x").random()
        c = RngStreams(1)
        assert c.stream("x").random() != c.stream("y").random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != \
            RngStreams(2).stream("x").random()

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")
