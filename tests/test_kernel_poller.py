"""Unit tests for the epoll-like poller."""

from repro.sim.engine import Engine
from repro.sim.primitives import Compute
from repro.sim.process import SimProcess
from repro.kernel.ipc import IpcChannel, IpcMessage
from repro.kernel.poller import Poller
from repro.kernel.sockets import DatagramBuffer

from conftest import run_until_done


def test_wait_returns_ready_source_immediately(engine):
    poller = Poller(engine)
    buf = DatagramBuffer(engine, capacity=4)
    poller.add(buf)
    buf.push("x")

    def body():
        ready = yield from poller.wait()
        return ready

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    assert proc.result == [buf]


def test_wait_blocks_until_data_arrives(engine):
    poller = Poller(engine)
    buf = DatagramBuffer(engine, capacity=4)
    poller.add(buf)
    woke_at = []

    def body():
        ready = yield from poller.wait()
        woke_at.append(engine.now)
        return ready

    proc = SimProcess(engine, body(), "p").start()
    engine.schedule(250.0, buf.push, "late")
    run_until_done(engine, [proc])
    assert woke_at == [250.0]
    assert proc.result == [buf]


def test_wait_over_multiple_sources(engine):
    poller = Poller(engine)
    chan = IpcChannel(engine, capacity=4)
    buf = DatagramBuffer(engine, capacity=4)
    poller.add(chan.b)
    poller.add(buf)

    def body():
        ready = yield from poller.wait()
        return ready

    proc = SimProcess(engine, body(), "p").start()
    engine.schedule(10.0, chan.a.try_send, IpcMessage("hi"))
    run_until_done(engine, [proc])
    assert proc.result == [chan.b]


def test_wait_timeout_returns_empty(engine):
    poller = Poller(engine)
    buf = DatagramBuffer(engine, capacity=4)
    poller.add(buf)

    def body():
        ready = yield from poller.wait(timeout_us=100.0)
        return (ready, engine.now)

    proc = SimProcess(engine, body(), "p").start()
    run_until_done(engine, [proc])
    ready, when = proc.result
    assert ready == []
    assert when == 100.0


def test_stale_wakeups_are_harmless(engine):
    """A source that fires while nobody is waiting must not corrupt a later
    wait round."""
    poller = Poller(engine)
    buf = DatagramBuffer(engine, capacity=4)
    poller.add(buf)
    results = []

    def body():
        ready = yield from poller.wait()
        results.append(list(ready))
        buf.pop()
        ready = yield from poller.wait()
        results.append(list(ready))

    proc = SimProcess(engine, body(), "p").start()
    engine.schedule(10.0, buf.push, "a")
    engine.schedule(20.0, buf.push, "b")
    run_until_done(engine, [proc])
    assert results == [[buf], [buf]]


def test_remove_source(engine):
    poller = Poller(engine)
    buf = DatagramBuffer(engine, capacity=4)
    poller.add(buf)
    poller.remove(buf)
    buf.push("x")
    assert poller.ready() == []


def test_add_is_idempotent(engine):
    poller = Poller(engine)
    buf = DatagramBuffer(engine, capacity=4)
    poller.add(buf)
    poller.add(buf)
    assert len(poller.sources) == 1
