"""The overload-control subsystem: controllers, open-loop load, and the
rejection fast path — plus the collapse/recovery acceptance sweep."""

import dataclasses
import json
import random

import pytest

from repro.analysis.cache import ResultCache, spec_key
from repro.analysis.experiments import run_cell
from repro.analysis.overload import capacity_spec, overload_spec
from repro.clients.openloop import OpenLoopDriver
from repro.clients.workload import BenchmarkResult
from repro.overload import (
    LocalOccupancyController,
    OverloadController,
    WindowController,
    build_controller,
)
from repro.proxy.config import ProxyConfig
from repro.sim.engine import Engine
from repro.sip.parser import parse_message

from conftest import drive

from test_proxy_core import alice, bob, make_core, register


# ======================================================================
# controller construction and config plumbing
# ======================================================================
class TestBuildController:
    def test_none_is_no_controller(self):
        assert build_controller("none") is None

    def test_known_names(self):
        assert isinstance(build_controller("local-occupancy"),
                          LocalOccupancyController)
        assert isinstance(build_controller("window"), WindowController)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_controller("global-occupancy")

    def test_params_passed_through(self):
        ctrl = build_controller("local-occupancy",
                                {"target_occupancy": 0.5, "min_accept": 0.2})
        assert ctrl.target == 0.5
        assert ctrl.min_accept == 0.2

    def test_config_validates_controller_name(self):
        with pytest.raises(ValueError):
            ProxyConfig(overload_controller="drop-all").validate()

    def test_window_controller_requires_stateful(self):
        with pytest.raises(ValueError):
            ProxyConfig(overload_controller="window",
                        stateful=False).validate()
        ProxyConfig(overload_controller="window", stateful=True).validate()


# ======================================================================
# control laws (pure unit tests, no simulation)
# ======================================================================
class TestLocalOccupancyLaw:
    def test_admits_everything_at_full_fraction(self):
        ctrl = LocalOccupancyController()
        assert all(ctrl.admit(0.0, "s") for __ in range(100))

    def test_token_accumulator_is_deterministic(self):
        """fraction=0.5 admits exactly every second INVITE — no RNG."""
        ctrl = LocalOccupancyController()
        ctrl.accept_fraction = 0.5
        decisions = [ctrl.admit(0.0, "s") for __ in range(10)]
        assert decisions == [False, True] * 5
        ctrl2 = LocalOccupancyController()
        ctrl2.accept_fraction = 0.5
        assert [ctrl2.admit(0.0, "s") for __ in range(10)] == decisions

    def test_overload_shrinks_fraction_and_recovery_grows_it(self):
        ctrl = LocalOccupancyController()
        ctrl.update(occupancy=1.0, queue_fill=0.0)   # rho > target
        shrunk = ctrl.accept_fraction
        assert shrunk < 1.0
        for __ in range(40):
            ctrl.update(occupancy=0.2, queue_fill=0.0)
        assert ctrl.accept_fraction == 1.0

    def test_growth_is_capped_per_tick(self):
        ctrl = LocalOccupancyController()
        ctrl.accept_fraction = 0.4
        ctrl.update(occupancy=0.01, queue_fill=0.0)
        assert ctrl.accept_fraction == pytest.approx(0.4 * ctrl.max_growth)

    def test_queue_panic_overrides_occupancy(self):
        ctrl = LocalOccupancyController()
        ctrl.update(occupancy=0.1, queue_fill=0.9)
        assert ctrl.accept_fraction == pytest.approx(ctrl.queue_backoff)

    def test_fraction_never_below_floor(self):
        ctrl = LocalOccupancyController()
        for __ in range(100):
            ctrl.update(occupancy=1.0, queue_fill=1.0)
        assert ctrl.accept_fraction == ctrl.min_accept


class TestWindowLaw:
    def test_aimd_updates(self):
        ctrl = WindowController()
        start = ctrl.window
        ctrl.update(occupancy=0.2, queue_fill=0.0)
        assert ctrl.window == start + ctrl.increase
        ctrl.update(occupancy=0.99, queue_fill=0.0)
        assert ctrl.window == pytest.approx(
            (start + ctrl.increase) * ctrl.decrease)

    def test_admission_bounded_by_inflight(self):
        ctrl = WindowController({"window_initial": 2.0})
        src = "conn-1"
        assert ctrl.admit(0.0, src)
        ctrl.note_admitted(src)
        assert ctrl.admit(0.0, src)
        ctrl.note_admitted(src)
        assert not ctrl.admit(0.0, src)          # window full
        assert ctrl.admit(0.0, "conn-2")         # per-source, not global
        ctrl.note_done(src)
        assert ctrl.admit(0.0, src)

    def test_failed_call_shrinks_window_immediately(self):
        ctrl = WindowController()
        ctrl.note_admitted("s")
        before = ctrl.window
        ctrl.note_done("s", success=False)
        assert ctrl.window == pytest.approx(before * ctrl.decrease)

    def test_forget_source_releases_slots(self):
        ctrl = WindowController({"window_initial": 1.0})
        ctrl.note_admitted("dead-conn")
        assert not ctrl.admit(0.0, "dead-conn")
        ctrl.forget_source("dead-conn")
        assert ctrl.admit(0.0, "dead-conn")
        assert ctrl.inflight_total() == 0

    def test_window_never_leaves_bounds(self):
        ctrl = WindowController()
        for __ in range(200):
            ctrl.update(occupancy=1.0, queue_fill=1.0)
        assert ctrl.window == ctrl.window_min
        for __ in range(1000):
            ctrl.update(occupancy=0.0, queue_fill=0.0)
        assert ctrl.window == ctrl.window_max


# ======================================================================
# the rejection fast path (satellite: cheap, stateless 503)
# ======================================================================
class _RejectAll(OverloadController):
    def admit(self, now, source):
        return False


class TestRejectionFastPath:
    def invite_cost(self, engine, core, text):
        """Simulated CPU charged to process ``text`` once."""
        t0 = engine.now
        actions = drive(engine, core.process(text, ("client1", 20000)))
        return engine.now - t0, actions

    def test_503_charges_less_cpu_and_creates_no_state(self, engine):
        admit_core = make_core(engine)
        register(engine, admit_core, bob(), ("client2", 40000))
        invite = alice().invite("bob").render()
        full_cost, __ = self.invite_cost(engine, admit_core, invite)
        assert len(admit_core.txn_table) == 1

        reject_core = make_core(engine)
        reject_core.controller = _RejectAll()
        register(engine, reject_core, bob(), ("client2", 40000))
        reject_cost, actions = self.invite_cost(engine, reject_core, invite)

        # The whole point: rejection is a fraction of full processing.
        assert reject_cost < full_cost / 2.0
        # ... and leaves nothing behind.
        assert len(reject_core.txn_table) == 0
        assert len(reject_core.timer_list) == 0
        assert reject_core.stats.invites_rejected == 1
        assert reject_core.stats.transactions_created == 0
        # The caller gets a well-formed 503 with Retry-After.
        assert len(actions) == 1
        reply = parse_message(actions[0].text)
        assert reply.status == 503
        assert reply.get("Retry-After") == "1"
        assert reply.cseq.method == "INVITE"

    def test_non_invites_bypass_admission(self, engine):
        core = make_core(engine)
        core.controller = _RejectAll()
        actions = register(engine, core, bob(), ("client2", 40000))
        assert parse_message(actions[0].text).status == 200
        assert core.stats.invites_rejected == 0

    def test_no_controller_means_no_rejections(self, engine):
        core = make_core(engine)
        register(engine, core, bob(), ("client2", 40000))
        invite = alice().invite("bob")
        drive(engine, core.process(invite.render(), ("client1", 20000)))
        assert core.stats.invites_rejected == 0


# ======================================================================
# the open-loop driver
# ======================================================================
class _StubCaller:
    def __init__(self, engine):
        self.engine = engine
        self.arrival_times = []

    def start_call(self):
        self.arrival_times.append(self.engine.now)


class TestOpenLoopDriver:
    def run_driver(self, seed=7, offered_cps=1000.0, until_us=100_000.0,
                   n_callers=3):
        engine = Engine()
        callers = [_StubCaller(engine) for __ in range(n_callers)]
        driver = OpenLoopDriver(engine, callers, offered_cps,
                                random.Random(seed)).start()
        engine.run(until=until_us)
        driver.stop()
        return driver, callers

    def test_poisson_arrivals_hit_the_configured_rate(self):
        driver, __ = self.run_driver(offered_cps=1000.0, until_us=500_000.0)
        # 500 expected; Poisson sigma ~22 — accept a generous band.
        assert 400 <= driver.arrivals <= 600

    def test_round_robin_across_callers(self):
        driver, callers = self.run_driver(n_callers=3)
        counts = [len(c.arrival_times) for c in callers]
        assert sum(counts) == driver.arrivals
        assert max(counts) - min(counts) <= 1

    def test_same_seed_same_schedule(self):
        __, callers_a = self.run_driver(seed=11)
        __, callers_b = self.run_driver(seed=11)
        assert [c.arrival_times for c in callers_a] == \
            [c.arrival_times for c in callers_b]

    def test_stop_halts_arrivals(self):
        engine = Engine()
        caller = _StubCaller(engine)
        driver = OpenLoopDriver(engine, [caller], 1000.0,
                                random.Random(3)).start()
        engine.run(until=50_000.0)
        driver.stop()
        seen = len(caller.arrival_times)
        engine.run(until=200_000.0)
        assert len(caller.arrival_times) == seen

    def test_invalid_args_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            OpenLoopDriver(engine, [_StubCaller(engine)], 0.0,
                           random.Random(1))
        with pytest.raises(ValueError):
            OpenLoopDriver(engine, [], 100.0, random.Random(1))


# ======================================================================
# open-loop cells end to end
# ======================================================================
SMALL = dict(clients=8, workers=4, warmup_us=60_000.0,
             measure_us=150_000.0, scale_windows=False)


class TestOpenLoopCells:
    def test_open_loop_cell_produces_goodput(self):
        result = run_cell(overload_spec("udp", offered_cps=800.0,
                                        controller="none", **SMALL))
        assert result.offered_cps == 800.0
        assert result.calls_attempted > 0
        assert result.goodput_cps > 0
        assert result.rejections_503 == 0

    def test_controller_cell_sheds_with_503_under_pressure(self):
        result = run_cell(overload_spec(
            "udp", offered_cps=20_000.0, controller="local-occupancy",
            **SMALL))
        assert result.rejections_503 > 0
        assert result.proxy_stats["invites_rejected"] == \
            result.rejections_503

    def test_sampled_overload_cell_is_bit_identical(self):
        spec = overload_spec("udp", offered_cps=2000.0,
                             controller="local-occupancy", **SMALL)
        plain = run_cell(spec)
        sampled_spec = dataclasses.replace(spec, sample_us=10_000.0)
        sampled = run_cell(sampled_spec)
        assert sampled.metrics["samples"] > 0
        assert "overload_accept_fraction" in sampled.metrics["series"]
        assert "reject_503_rate" in sampled.metrics["series"]
        for field in ("throughput_ops_s", "ops", "goodput_cps",
                      "calls_attempted", "calls_completed",
                      "rejections_503", "client_retransmissions",
                      "cpu_utilization"):
            assert getattr(sampled, field) == getattr(plain, field), field
        assert sampled.proxy_stats == plain.proxy_stats


# ======================================================================
# cache round-trip of the new result fields
# ======================================================================
class TestOverloadResultCaching:
    def test_result_round_trips_through_json(self):
        result = run_cell(overload_spec("udp", offered_cps=800.0,
                                        controller="local-occupancy",
                                        **SMALL))
        payload = json.loads(json.dumps(dataclasses.asdict(result)))
        rebuilt = BenchmarkResult(**payload)
        for field in ("goodput_cps", "offered_cps", "calls_attempted",
                      "rejections_503", "client_retransmissions"):
            assert getattr(rebuilt, field) == getattr(result, field), field

    def test_cache_serves_identical_overload_result(self, tmp_path):
        spec = overload_spec("udp", offered_cps=800.0,
                             controller="local-occupancy", **SMALL)
        cache = ResultCache(tmp_path)
        key = spec_key(spec)
        assert key is not None  # overload specs must be cacheable
        result = run_cell(spec)
        cache.put(key, spec, dataclasses.asdict(result))
        served = BenchmarkResult(**cache.get(key))
        assert served.goodput_cps == result.goodput_cps
        assert served.rejections_503 == result.rejections_503
        assert served.offered_cps == result.offered_cps

    def test_controller_and_rate_distinguish_cache_keys(self):
        base = overload_spec("udp", offered_cps=800.0, controller="none",
                             **SMALL)
        other_ctrl = dataclasses.replace(base, controller="local-occupancy")
        other_rate = dataclasses.replace(base, offered_cps=900.0)
        keys = {spec_key(base), spec_key(other_ctrl), spec_key(other_rate)}
        assert len(keys) == 3


# ======================================================================
# the acceptance sweep: collapse without control, recovery with it
# ======================================================================
@pytest.mark.slow
class TestCollapseAndRecovery:
    def test_udp_collapse_and_occupancy_recovery(self):
        kw = dict(clients=20, workers=4, warmup_us=150_000.0,
                  measure_us=300_000.0, scale_windows=False)
        cap = run_cell(capacity_spec("udp", **kw))
        capacity_cps = cap.throughput_ops_s / 2.0
        assert capacity_cps > 0

        def goodput(factor, controller):
            return run_cell(overload_spec(
                "udp", offered_cps=factor * capacity_cps,
                controller=controller, **kw))

        baseline_1x = goodput(1.0, "none")
        baseline_2x = goodput(2.0, "none")
        controlled_2x = goodput(2.0, "local-occupancy")

        # Collapse: past capacity the uncontrolled proxy loses goodput
        # to retransmission amplification (measurably, not marginally).
        assert baseline_2x.goodput_cps < 0.8 * baseline_1x.goodput_cps
        assert baseline_2x.client_retransmissions > \
            baseline_1x.client_retransmissions

        # Recovery: occupancy control sheds the excess with 503s and
        # holds goodput within 20% of the 1x value.
        assert controlled_2x.goodput_cps >= 0.8 * baseline_1x.goodput_cps
        assert controlled_2x.rejections_503 > 0
