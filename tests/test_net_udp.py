"""Unit tests for the UDP transport."""

import pytest

from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.net.udp import UdpEndpoint

from conftest import make_lan, run_until_done


def test_sendto_delivers_whole_datagram(engine):
    __, machines = make_lan(engine, ["client", "server"])
    server_sock = UdpEndpoint(machines["server"], 5060)
    client_sock = UdpEndpoint(machines["client"], 40000)
    got = []

    def receiver():
        dgram = yield from server_sock.recvfrom()
        got.append(dgram)

    proc = machines["server"].spawn_light(receiver(), "rx").start()
    client_sock.sendto("INVITE sip:bob@example.com SIP/2.0", "server", 5060)
    run_until_done(engine, [proc])
    assert got[0].payload.startswith("INVITE")
    assert got[0].source == ("client", 40000)


def test_multiple_receivers_each_get_one_datagram(engine):
    """OpenSER's symmetric UDP workers all block in recvfrom on the same
    socket; each datagram goes to exactly one of them."""
    __, machines = make_lan(engine, ["client", "server"])
    server_sock = UdpEndpoint(machines["server"], 5060)
    client_sock = UdpEndpoint(machines["client"], 40000)
    got = []

    def worker(tag):
        dgram = yield from server_sock.recvfrom()
        got.append((tag, dgram.payload))

    procs = [machines["server"].spawn_light(worker(i), f"w{i}").start()
             for i in range(3)]
    for i in range(3):
        client_sock.sendto(f"msg-{i}", "server", 5060)
    run_until_done(engine, procs)
    payloads = sorted(payload for __, payload in got)
    assert payloads == ["msg-0", "msg-1", "msg-2"]
    tags = {tag for tag, __ in got}
    assert len(tags) == 3  # each worker consumed exactly one


def test_unbound_port_swallows_datagram(engine):
    __, machines = make_lan(engine, ["client", "server"])
    client_sock = UdpEndpoint(machines["client"], 40000)
    client_sock.sendto("hello", "server", 9999)
    engine.run()  # no error: ICMP unreachable is ignored


def test_buffer_overflow_drops(engine):
    __, machines = make_lan(engine, ["client", "server"])
    server_sock = UdpEndpoint(machines["server"], 5060, rcvbuf_datagrams=2)
    client_sock = UdpEndpoint(machines["client"], 40000)
    for i in range(5):
        client_sock.sendto(f"m{i}", "server", 5060)
    engine.run()
    assert server_sock.drops == 3
    assert len(server_sock.buffer) == 2


def test_double_bind_rejected(engine):
    __, machines = make_lan(engine, ["server"])
    UdpEndpoint(machines["server"], 5060)
    with pytest.raises(OSError):
        UdpEndpoint(machines["server"], 5060)


def test_try_recvfrom_nonblocking(engine):
    __, machines = make_lan(engine, ["client", "server"])
    server_sock = UdpEndpoint(machines["server"], 5060)
    assert server_sock.try_recvfrom() is None
    UdpEndpoint(machines["client"], 40000).sendto("x", "server", 5060)
    engine.run()
    assert server_sock.try_recvfrom().payload == "x"


def test_close_unbinds(engine):
    __, machines = make_lan(engine, ["server"])
    sock = UdpEndpoint(machines["server"], 5060)
    sock.close()
    UdpEndpoint(machines["server"], 5060)  # rebind succeeds
