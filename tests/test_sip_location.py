"""Unit tests for the registrar / location service."""

from repro.sip.location import Binding, LocationService
from repro.sip.uri import SipUri


def make_binding(aor="alice@example.com", addr="client1", port=40000,
                 registered_at=0.0, expires_us=3_600_000_000.0):
    return Binding(aor, SipUri.parse(f"sip:{aor.split('@')[0]}@{addr}:{port}"),
                   addr, port, "udp", registered_at=registered_at,
                   expires_us=expires_us)


def test_register_and_lookup():
    service = LocationService()
    binding = make_binding()
    service.register(binding)
    assert service.lookup("alice@example.com") is binding
    assert service.lookups == 1
    assert service.misses == 0


def test_lookup_miss():
    service = LocationService()
    assert service.lookup("nobody@example.com") is None
    assert service.misses == 1


def test_reregistration_replaces():
    service = LocationService()
    service.register(make_binding(port=40000))
    newer = make_binding(port=41000)
    service.register(newer)
    assert service.lookup("alice@example.com").port == 41000
    assert len(service) == 1


def test_expired_binding_is_a_miss():
    service = LocationService()
    service.register(make_binding(registered_at=0.0, expires_us=1_000_000.0))
    assert service.lookup("alice@example.com", now=500_000.0) is not None
    assert service.lookup("alice@example.com", now=2_000_000.0) is None


def test_unregister():
    service = LocationService()
    service.register(make_binding())
    service.unregister("alice@example.com")
    assert service.lookup("alice@example.com") is None


def test_binding_carries_transport_and_conn():
    conn = object()
    binding = Binding("bob@example.com", SipUri.parse("sip:bob@client2"),
                      "client2", 40001, "tcp", conn=conn)
    assert binding.transport == "TCP"
    assert binding.conn is conn
