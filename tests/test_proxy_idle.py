"""Unit tests for the idle-connection strategies (§5.2 scan vs §5.3 PQ)."""

import pytest

from repro.sim.engine import Engine
from repro.kernel.fdtable import FileDescription
from repro.proxy.conn_table import ConnTable
from repro.proxy.costs import CostModel
from repro.proxy.idle_pq import PqIdleStrategy
from repro.proxy.idle_scan import ScanIdleStrategy

from conftest import drive

TIMEOUT = 1000.0


class FakeConn:
    def on_last_close(self):
        pass


def insert(engine, table, strategy, owner=0, now=0.0):
    record = drive(engine, table.insert(FakeConn(),
                                        FileDescription(FakeConn(), "t"),
                                        owner, now))
    drive(engine, strategy.on_insert(record, now))
    return record


@pytest.fixture
def table():
    return ConnTable(CostModel())


@pytest.fixture(params=["scan", "pq"])
def strategy(request):
    if request.param == "pq":
        return PqIdleStrategy(CostModel(), TIMEOUT, n_workers=2)
    return ScanIdleStrategy(CostModel(), TIMEOUT)


class TestBothStrategies:
    def test_fresh_connection_not_expired(self, engine, table, strategy):
        insert(engine, table, strategy, now=0.0)
        expired = drive(engine, strategy.supervisor_pass(table, 10.0, "sup"))
        assert expired == []

    def test_worker_pass_finds_idle_owned_conn(self, engine, table, strategy):
        record = insert(engine, table, strategy, now=0.0)
        expired = drive(engine, strategy.worker_pass(
            [record], TIMEOUT + 1.0, "w", worker_index=0))
        assert expired == [record]

    def test_worker_pass_skips_active_conn(self, engine, table, strategy):
        record = insert(engine, table, strategy, now=0.0)
        drive(engine, strategy.on_activity(record, TIMEOUT * 0.9))
        expired = drive(engine, strategy.worker_pass(
            [record], TIMEOUT + 1.0, "w", worker_index=0))
        assert expired == []

    def test_supervisor_waits_for_worker_release(self, engine, table,
                                                 strategy):
        """§3.1 two-step teardown: the supervisor cannot destroy a
        connection its worker has not returned."""
        record = insert(engine, table, strategy, now=0.0)
        expired = drive(engine, strategy.supervisor_pass(
            table, TIMEOUT * 3, "sup"))
        assert expired == []  # idle, but never released

    def test_supervisor_destroys_after_release_plus_timeout(self, engine,
                                                            table, strategy):
        record = insert(engine, table, strategy, now=0.0)
        drive(engine, strategy.on_release(record, 500.0))
        # Within the supervisor's additional grace period: not yet.
        expired = drive(engine, strategy.supervisor_pass(
            table, 500.0 + TIMEOUT * 0.5, "sup"))
        assert expired == []
        expired = drive(engine, strategy.supervisor_pass(
            table, 500.0 + TIMEOUT + 1.0, "sup"))
        assert expired == [record]

    def test_single_phase_expires_on_inactivity(self, engine, table,
                                                strategy):
        record = insert(engine, table, strategy, now=0.0)
        expired = drive(engine, strategy.supervisor_pass(
            table, TIMEOUT + 1.0, "sup", single_phase=True))
        assert expired == [record]

    def test_closed_records_ignored(self, engine, table, strategy):
        record = insert(engine, table, strategy, now=0.0)
        drive(engine, strategy.on_release(record, 0.0))
        record.closed = True
        expired = drive(engine, strategy.supervisor_pass(
            table, TIMEOUT * 5, "sup"))
        assert expired == []


class TestScanCostShape:
    def test_scan_cost_proportional_to_population(self, engine, table):
        """The §5.2 problem: every pass touches every connection."""
        strategy = ScanIdleStrategy(CostModel(), TIMEOUT)
        for __ in range(100):
            insert(engine, table, strategy, now=0.0)
        before = engine.now
        drive(engine, strategy.supervisor_pass(table, 1.0, "sup"))
        cost_100 = engine.now - before
        for __ in range(400):
            insert(engine, table, strategy, now=0.0)
        before = engine.now
        drive(engine, strategy.supervisor_pass(table, 2.0, "sup"))
        cost_500 = engine.now - before
        assert cost_500 > 4.0 * cost_100

    def test_scan_holds_table_lock(self, engine, table):
        strategy = ScanIdleStrategy(CostModel(), TIMEOUT)
        for __ in range(10):
            insert(engine, table, strategy, now=0.0)
        locked_during_pass = []

        def sweep():
            yield from strategy.supervisor_pass(table, 1.0, "sup")

        def observer():
            from repro.sim.primitives import Sleep
            yield Sleep(1.0)
            locked_during_pass.append(table.lock.held)

        from repro.sim.process import SimProcess
        from conftest import run_until_done
        p1 = SimProcess(engine, sweep(), "sweep").start()
        p2 = SimProcess(engine, observer(), "obs").start()
        run_until_done(engine, [p1, p2])
        assert locked_during_pass == [True]


class TestPqCostShape:
    def test_pq_pass_ignores_unexpired_population(self, engine, table):
        """The §5.3 win: sweep cost tracks expiries, not population."""
        strategy = PqIdleStrategy(CostModel(), TIMEOUT, n_workers=1)
        for __ in range(500):
            insert(engine, table, strategy, now=0.0)
        before = engine.now
        expired = drive(engine, strategy.supervisor_pass(table, 1.0, "sup"))
        cost = engine.now - before
        assert expired == []
        # Nothing expired: only the lock acquire, no per-entry work.
        assert cost < 5.0

    def test_pq_reinserts_unreleased_expired_conns(self, engine, table):
        strategy = PqIdleStrategy(CostModel(), TIMEOUT, n_workers=1)
        record = insert(engine, table, strategy, now=0.0)
        expired = drive(engine, strategy.supervisor_pass(
            table, TIMEOUT + 1.0, "sup"))
        assert expired == []
        # The record was re-queued for a later look, per §5.3.
        assert len(strategy.shared) == 1

    def test_pq_activity_updates_are_synchronized_work(self, engine, table):
        strategy = PqIdleStrategy(CostModel(), TIMEOUT, n_workers=1)
        record = insert(engine, table, strategy, now=0.0)
        before = engine.now
        drive(engine, strategy.on_activity(record, 10.0))
        assert engine.now > before  # charged CPU under the PQ lock

    def test_pq_worker_pass_uses_local_heap(self, engine, table):
        strategy = PqIdleStrategy(CostModel(), TIMEOUT, n_workers=2)
        r0 = insert(engine, table, strategy, owner=0, now=0.0)
        r1 = insert(engine, table, strategy, owner=1, now=0.0)
        expired = drive(engine, strategy.worker_pass(
            [r0], TIMEOUT + 1.0, "w0", worker_index=0))
        assert expired == [r0]
        expired = drive(engine, strategy.worker_pass(
            [r1], TIMEOUT + 1.0, "w1", worker_index=1))
        assert expired == [r1]
