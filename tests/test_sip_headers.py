"""Unit tests for structured SIP headers."""

import pytest

from repro.sip.headers import Address, CSeq, Via


class TestVia:
    def test_parse(self):
        via = Via.parse("SIP/2.0/UDP client1:40000;branch=z9hG4bKabc123")
        assert via.transport == "UDP"
        assert via.host == "client1"
        assert via.port == 40000
        assert via.branch == "z9hG4bKabc123"

    def test_default_port(self):
        via = Via.parse("SIP/2.0/TCP proxy.example.com;branch=z9hG4bKx")
        assert via.port == 5060

    def test_render_roundtrip(self):
        text = "SIP/2.0/TCP host.example.com:5061;branch=z9hG4bKdef;rport"
        assert Via.parse(text).render() == text

    def test_extra_params(self):
        via = Via.parse("SIP/2.0/UDP h:1;branch=z9hG4bKq;received=10.0.0.1")
        assert via.params["received"] == "10.0.0.1"

    @pytest.mark.parametrize("bad", ["UDP host:5060", "SIP/2.0 host",
                                     "SIP/2.0/UDP"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            Via.parse(bad)


class TestCSeq:
    def test_parse(self):
        cseq = CSeq.parse("314159 INVITE")
        assert cseq.number == 314159
        assert cseq.method == "INVITE"

    def test_render(self):
        assert CSeq(2, "BYE").render() == "2 BYE"

    def test_equality(self):
        assert CSeq.parse("1 INVITE") == CSeq(1, "invite")

    @pytest.mark.parametrize("bad", ["INVITE", "x INVITE", "1 2 3"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            CSeq.parse(bad)


class TestAddress:
    def test_parse_name_addr_with_tag(self):
        addr = Address.parse('"Alice" <sip:alice@example.com>;tag=88sja8x')
        assert addr.display == "Alice"
        assert addr.uri.user == "alice"
        assert addr.tag == "88sja8x"

    def test_parse_bare_addr_spec(self):
        addr = Address.parse("sip:bob@example.com;tag=99")
        assert addr.uri.user == "bob"
        assert addr.tag == "99"
        # tag is a header param, not part of the URI
        assert "tag" not in addr.uri.params

    def test_angle_brackets_keep_uri_params(self):
        addr = Address.parse("<sip:bob@example.com;transport=tcp>;tag=7")
        assert addr.uri.params == {"transport": "tcp"}
        assert addr.tag == "7"

    def test_with_tag_is_nonmutating(self):
        addr = Address.parse("<sip:a@b.c>")
        tagged = addr.with_tag("t1")
        assert addr.tag is None
        assert tagged.tag == "t1"

    def test_render_roundtrip(self):
        text = '"Bob" <sip:bob@example.com:5062>;tag=abc'
        assert Address.parse(text).render() == text

    def test_unterminated_raises(self):
        with pytest.raises(ValueError):
            Address.parse("<sip:a@b.c")
