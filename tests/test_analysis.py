"""Unit tests for the experiment drivers and table rendering."""

import pytest

from repro.analysis.experiments import (
    ExperimentSpec,
    SCALED_IDLE_TIMEOUT_US,
    TIME_COMPRESSION,
)
from repro.analysis.paper_data import CLIENT_COUNTS, PAPER_FIGURES, SERIES
from repro.analysis.tables import render_comparison, render_figure


class TestExperimentSpec:
    def test_series_mapping(self):
        assert ExperimentSpec(series="udp").transport() == "udp"
        assert ExperimentSpec(series="tcp-50").transport() == "tcp"
        assert ExperimentSpec(series="tcp-persistent").ops_per_conn() is None

    def test_ops_per_conn_compressed_with_timeout(self):
        spec = ExperimentSpec(series="tcp-50",
                              idle_timeout_us=SCALED_IDLE_TIMEOUT_US)
        assert spec.ops_per_conn() == round(50 / TIME_COMPRESSION)

    def test_uncompressed_timeout_keeps_nominal_ops(self):
        spec = ExperimentSpec(series="tcp-50",
                              idle_timeout_us=10_000_000.0)
        assert spec.ops_per_conn() == 50
        long_spec = ExperimentSpec(series="tcp-50",
                                   idle_timeout_us=120_000_000.0)
        assert long_spec.ops_per_conn() == 50

    def test_ops_override(self):
        spec = ExperimentSpec(series="tcp-50", ops_per_conn_override=7)
        assert spec.ops_per_conn() == 7

    def test_default_workers_follow_the_paper(self):
        assert ExperimentSpec(series="udp").default_workers() == 24
        assert ExperimentSpec(series="tcp-persistent").default_workers() == 32

    def test_churn_warmup_covers_population_buildup(self):
        spec = ExperimentSpec(series="tcp-50")
        warmup, __ = spec.windows()
        assert warmup >= 2.0 * spec.idle_timeout_us

    def test_explicit_windows_win(self):
        spec = ExperimentSpec(series="tcp-50", warmup_us=1.0, measure_us=2.0)
        assert spec.windows() == (1.0, 2.0)


class TestPaperData:
    def test_every_figure_has_full_grid(self):
        for figure in PAPER_FIGURES.values():
            assert set(figure) == set(SERIES)
            for row in figure.values():
                assert set(row) == set(CLIENT_COUNTS)

    def test_udp_identical_across_figures(self):
        assert PAPER_FIGURES["fig3"]["udp"] == PAPER_FIGURES["fig4"]["udp"]

    def test_fixes_improve_tcp_in_paper_data(self):
        for count in CLIENT_COUNTS:
            assert PAPER_FIGURES["fig5"]["tcp-50"][count] > \
                PAPER_FIGURES["fig3"]["tcp-50"][count]


class TestTables:
    def grid(self):
        return {"udp": {100: 30000.0, 1000: 28000.0},
                "tcp-persistent": {100: 15000.0, 1000: 10000.0}}

    def test_render_figure_contains_values(self):
        text = render_figure("test", self.grid(), clients=(100, 1000))
        assert "30000" in text
        assert "TCP persistent" in text

    def test_render_figure_handles_missing_cells(self):
        grid = {"udp": {100: 30000.0}}
        text = render_figure("test", grid, clients=(100, 1000))
        assert "-" in text

    def test_render_comparison_shows_ratios(self):
        text = render_comparison("fig3", self.grid(), clients=(100, 1000))
        assert "0.50" in text  # measured tcp/udp at 100
        assert "0.43" in text  # paper ratio at 100
