"""Unit tests for fd tables and refcounted file descriptions."""

import pytest

from repro.kernel.fdtable import BadFdError, EmfileError, FdTable, FileDescription


def make_desc():
    return FileDescription(object(), kind="socket")


def test_install_returns_lowest_free_fd():
    table = FdTable(limit=8)
    fds = [table.install(make_desc()) for __ in range(3)]
    assert fds == [0, 1, 2]


def test_close_frees_slot_for_reuse():
    table = FdTable(limit=8)
    fd0 = table.install(make_desc())
    table.install(make_desc())
    table.close(fd0)
    assert table.install(make_desc()) == fd0


def test_get_returns_description():
    table = FdTable(limit=8)
    desc = make_desc()
    fd = table.install(desc)
    assert table.get(fd) is desc


def test_get_bad_fd_raises():
    table = FdTable(limit=8)
    with pytest.raises(BadFdError):
        table.get(0)


def test_double_close_raises():
    table = FdTable(limit=8)
    fd = table.install(make_desc())
    table.close(fd)
    with pytest.raises(BadFdError):
        table.close(fd)


def test_limit_enforced():
    table = FdTable(limit=2)
    table.install(make_desc())
    table.install(make_desc())
    with pytest.raises(EmfileError):
        table.install(make_desc())


def test_refcounting_calls_on_last_close():
    closed = []

    class Sock:
        def on_last_close(self):
            closed.append(True)

    desc = FileDescription(Sock(), kind="socket")
    t1 = FdTable(limit=8, owner="sup")
    t2 = FdTable(limit=8, owner="wrk")
    fd1 = t1.install(desc)
    fd2 = t2.install(desc)
    t1.close(fd1)
    assert closed == []
    t2.close(fd2)
    assert closed == [True]


def test_install_after_full_close_raises():
    desc = make_desc()
    table = FdTable(limit=8)
    fd = table.install(desc)
    table.close(fd)
    with pytest.raises(BadFdError):
        table.install(desc)  # description fully closed


def test_close_all():
    table = FdTable(limit=8)
    for __ in range(5):
        table.install(make_desc())
    table.close_all()
    assert len(table) == 0


def test_fd_of_reverse_lookup():
    table = FdTable(limit=8)
    obj = object()
    fd = table.install(FileDescription(obj, "socket"))
    assert table.fd_of(obj) == fd
    assert table.fd_of(object()) is None


def test_len_and_contains():
    table = FdTable(limit=8)
    fd = table.install(make_desc())
    assert len(table) == 1
    assert fd in table
    assert 99 not in table
