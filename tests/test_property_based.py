"""Property-based tests (hypothesis) for core data structures and
protocol invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.kernel.fdtable import EmfileError, FdTable, FileDescription
from repro.kernel.sockets import PortAllocator, PortExhaustedError, StreamBuffer
from repro.sim.engine import Engine
from repro.sip.headers import Address, CSeq, Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import StreamFramer, parse_message
from repro.sip.uri import SipUri

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
token = st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=12)
host = st.from_regex(r"[a-z][a-z0-9]{0,10}(\.[a-z][a-z0-9]{0,10}){0,2}",
                     fullmatch=True)
port = st.integers(min_value=1, max_value=65535)
header_value = st.text(
    alphabet=string.ascii_letters + string.digits + " .;=@:-",
    min_size=0, max_size=40).map(str.strip)
body_text = st.text(alphabet=string.ascii_letters + string.digits + " \n",
                    max_size=200)


@st.composite
def sip_uris(draw):
    user = draw(st.one_of(st.none(), token))
    return SipUri(user, draw(host), draw(st.one_of(st.none(), port)))


@st.composite
def sip_requests(draw):
    method = draw(st.sampled_from(["INVITE", "ACK", "BYE", "REGISTER",
                                   "OPTIONS"]))
    request = SipRequest(method, draw(sip_uris()), body=draw(body_text))
    request.add("Via", Via("UDP", draw(host), draw(port),
                           {"branch": "z9hG4bK" + draw(token)}).render())
    request.add("From", f"<sip:{draw(token)}@{draw(host)}>;tag={draw(token)}")
    request.add("To", f"<sip:{draw(token)}@{draw(host)}>")
    request.add("Call-ID", draw(token))
    request.add("CSeq", CSeq(draw(st.integers(1, 99999)), method).render())
    for name in draw(st.lists(st.sampled_from(
            ["Contact", "User-Agent", "Subject"]), max_size=2, unique=True)):
        value = draw(header_value)
        if value:
            request.add(name, value)
    return request


# ---------------------------------------------------------------------------
# SIP wire format
# ---------------------------------------------------------------------------
class TestSipRoundtrip:
    @given(sip_requests())
    @settings(max_examples=150)
    def test_parse_render_roundtrip(self, request):
        text = request.render()
        parsed = parse_message(text)
        assert parsed.render() == text
        assert parsed.method == request.method
        assert parsed.body == request.body
        assert parsed.call_id == request.call_id

    @given(sip_uris())
    def test_uri_roundtrip(self, uri):
        assert SipUri.parse(uri.render()) == uri

    @given(host, port, token)
    def test_via_roundtrip(self, h, p, branch):
        via = Via("TCP", h, p, {"branch": "z9hG4bK" + branch})
        parsed = Via.parse(via.render())
        assert (parsed.host, parsed.port, parsed.branch) == \
            (h, p, "z9hG4bK" + branch)

    @given(st.integers(1, 999999), st.sampled_from(["INVITE", "BYE", "ACK"]))
    def test_cseq_roundtrip(self, number, method):
        assert CSeq.parse(CSeq(number, method).render()) == \
            CSeq(number, method)


class TestFramerProperties:
    @given(st.lists(sip_requests(), min_size=1, max_size=5),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_preserves_messages(self, requests, chunk_size):
        """Feeding a concatenated stream in arbitrary chunks must yield
        exactly the original messages, in order."""
        stream = "".join(req.render() for req in requests)
        framer = StreamFramer()
        out = []
        for start in range(0, len(stream), chunk_size):
            out.extend(framer.feed(stream[start:start + chunk_size]))
        assert out == [req.render() for req in requests]
        assert framer.buffered_bytes == 0

    @given(st.lists(sip_requests(), min_size=2, max_size=4),
           st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_random_split_points(self, requests, rnd):
        stream = "".join(req.render() for req in requests)
        framer = StreamFramer()
        out = []
        position = 0
        while position < len(stream):
            step = rnd.randint(1, max(1, len(stream) // 3))
            out.extend(framer.feed(stream[position:position + step]))
            position += step
        assert out == [req.render() for req in requests]


# ---------------------------------------------------------------------------
# kernel data structures
# ---------------------------------------------------------------------------
class TestFdTableProperties:
    @given(st.lists(st.sampled_from(["install", "close"]), max_size=60))
    def test_refcounts_never_negative_and_slots_consistent(self, ops):
        table = FdTable(limit=16)
        open_fds = []
        for op in ops:
            if op == "install":
                try:
                    fd = table.install(FileDescription(object(), "f"))
                    open_fds.append(fd)
                except EmfileError:
                    assert len(table) == 16
            elif open_fds:
                fd = open_fds.pop()
                table.close(fd)
        assert len(table) == len(open_fds)
        assert len(set(open_fds)) == len(open_fds)  # no fd aliasing

    @given(st.integers(min_value=1, max_value=12))
    def test_limit_is_exact(self, limit):
        table = FdTable(limit=limit)
        for __ in range(limit):
            table.install(FileDescription(object(), "f"))
        try:
            table.install(FileDescription(object(), "f"))
            assert False, "limit not enforced"
        except EmfileError:
            pass


class TestPortAllocatorProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=80))
    def test_no_port_ever_double_allocated(self, frees):
        engine = Engine()
        ports = PortAllocator(engine, lo=100, hi=140, time_wait_us=0.0)
        live = set()
        for do_free in frees:
            if do_free and live:
                victim = live.pop()
                ports.release(victim, time_wait=False)
            else:
                try:
                    p = ports.allocate()
                except PortExhaustedError:
                    assert len(live) == 40
                    continue
                assert p not in live
                live.add(p)


class TestStreamBufferProperties:
    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=30),
                    max_size=20),
           st.integers(min_value=1, max_value=17))
    def test_bytes_in_equals_bytes_out_in_order(self, chunks, read_size):
        engine = Engine()
        buf = StreamBuffer(engine, capacity_bytes=1 << 20)
        for chunk in chunks:
            buf.push(chunk)
        out = []
        while buf.size:
            out.append(buf.read(read_size))
        assert "".join(out) == "".join(chunks)


# ---------------------------------------------------------------------------
# engine ordering
# ---------------------------------------------------------------------------
class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=2,
                    max_size=30))
    def test_same_time_fifo(self, tags):
        engine = Engine()
        fired = []
        for tag in tags:
            engine.schedule(5.0, fired.append, tag)
        engine.run()
        assert fired == tags
