"""Unit tests for the SIP message model and serialization."""

import pytest

from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import parse_message
from repro.sip.uri import SipUri


def make_invite():
    request = SipRequest("INVITE", SipUri.parse("sip:bob@example.com"),
                         body="v=0\r\n")
    request.add("Via", "SIP/2.0/UDP client1:40000;branch=z9hG4bK1")
    request.add("Max-Forwards", "70")
    request.add("From", "<sip:alice@example.com>;tag=a1")
    request.add("To", "<sip:bob@example.com>")
    request.add("Call-ID", "call-1@client1")
    request.add("CSeq", "1 INVITE")
    request.add("Content-Length", "5")
    return request


def test_start_lines():
    assert make_invite().start_line() == "INVITE sip:bob@example.com SIP/2.0"
    assert SipResponse(200).start_line() == "SIP/2.0 200 OK"
    assert SipResponse(180).reason == "Ringing"


def test_get_is_case_insensitive():
    request = make_invite()
    assert request.get("call-id") == "call-1@client1"
    assert request.get("CALL-ID") == "call-1@client1"
    assert request.get("Nope") is None


def test_get_all_and_via_stacking():
    request = make_invite()
    request.add_first("Via", "SIP/2.0/UDP proxy:5060;branch=z9hG4bK2")
    vias = request.vias
    assert len(vias) == 2
    assert vias[0].host == "proxy"
    assert request.top_via.branch == "z9hG4bK2"


def test_set_replaces_first():
    request = make_invite()
    request.set("Max-Forwards", "69")
    assert request.get("Max-Forwards") == "69"
    assert len(request.get_all("Max-Forwards")) == 1


def test_remove_first():
    request = make_invite()
    request.add_first("Via", "SIP/2.0/UDP proxy:5060;branch=z9hG4bK2")
    removed = request.remove_first("Via")
    assert "proxy" in removed
    assert request.top_via.host == "client1"


def test_structured_accessors():
    request = make_invite()
    assert request.call_id == "call-1@client1"
    assert request.cseq.method == "INVITE"
    assert request.from_addr.tag == "a1"
    assert request.to_addr.uri.user == "bob"
    assert request.max_forwards == 70
    assert request.content_length == 5


def test_render_fixes_content_length():
    request = make_invite()
    request.body = "longer body than declared"
    text = request.render()
    assert f"Content-Length: {len(request.body)}" in text
    parsed = parse_message(text)
    assert parsed.body == request.body


def test_render_appends_content_length_if_missing():
    response = SipResponse(200)
    response.add("Call-ID", "x")
    assert "Content-Length: 0" in response.render()


def test_transaction_key_matches_ack_to_invite():
    request = make_invite()
    ack = SipRequest("ACK", request.uri)
    ack.add("Via", request.get("Via"))
    ack.add("CSeq", "1 ACK")
    assert ack.transaction_key() == request.transaction_key()


def test_response_classification():
    assert SipResponse(100).is_provisional
    assert not SipResponse(100).is_final
    assert SipResponse(200).is_final
    assert SipResponse(200).is_success
    assert SipResponse(486).is_final
    assert not SipResponse(486).is_success


def test_wire_size_counts_rendered_bytes():
    request = make_invite()
    assert request.wire_size == len(request.render())
