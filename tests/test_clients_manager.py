"""Unit tests for workload specs and the benchmark manager."""

import pytest

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager
from repro.clients.workload import BenchmarkResult


class TestWorkload:
    def test_defaults_are_valid(self):
        Workload().validate()

    @pytest.mark.parametrize("kwargs", [
        dict(clients=0),
        dict(ops_per_conn=0),
        dict(measure_us=0),
        dict(warmup_us=-1.0),
        dict(call_hold_us=-0.5),
        dict(ring_delay_us=-100.0),
        dict(think_time_us=-1e-9),
        dict(register_deadline_us=0),
        dict(mode="half-open"),
        dict(mode="open"),                      # open loop needs a rate
        dict(mode="open", offered_cps=-5.0),
        dict(offered_cps=100.0),                # rate needs the open loop
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Workload(**kwargs).validate()

    def test_open_loop_valid(self):
        Workload(mode="open", offered_cps=500.0).validate()


class TestManager:
    def make(self, clients=4, **workload_kwargs):
        bed = Testbed(seed=2)
        proxy = build_proxy(bed.server,
                            ProxyConfig(transport="udp", workers=4)).start()
        workload = Workload(clients=clients, warmup_us=20_000.0,
                            measure_us=80_000.0, **workload_kwargs)
        return bed, proxy, BenchmarkManager(bed, proxy, workload)

    def test_setup_creates_caller_callee_pairs(self):
        bed, __, manager = self.make(clients=6)
        manager.setup_phones()
        assert len(manager.callers) == 6
        assert len(manager.callees) == 6
        # Spread across the three client machines.
        machines = {phone.machine.name for phone in manager.callers}
        assert machines == {"client1", "client2", "client3"}

    def test_caller_and_callee_on_different_machines(self):
        bed, __, manager = self.make(clients=3)
        manager.setup_phones()
        for caller, callee in zip(manager.callers, manager.callees):
            assert caller.machine.name != callee.machine.name

    def test_run_returns_measured_result(self):
        __, __, manager = self.make()
        result = manager.run()
        assert isinstance(result, BenchmarkResult)
        assert result.ops > 0
        assert result.duration_us == pytest.approx(80_000.0)
        assert result.throughput_ops_s == pytest.approx(
            result.ops / (result.duration_us / 1e6))
        assert 0.0 < result.cpu_utilization <= 1.01

    def test_measurement_excludes_warmup_and_registration(self):
        __, proxy, manager = self.make()
        result = manager.run()
        # Registrations happened but are not in the measured delta.
        assert proxy.stats.registrations >= 8
        assert result.proxy_stats["registrations"] == 0

    def test_registration_failure_raises(self):
        bed = Testbed(seed=2)
        # No proxy started: nothing will answer the REGISTERs.
        proxy = build_proxy(bed.server,
                            ProxyConfig(transport="udp", workers=4))
        # (note: not .start()ed)
        workload = Workload(clients=2, warmup_us=10_000.0,
                            measure_us=10_000.0,
                            register_deadline_us=300_000.0)
        manager = BenchmarkManager(bed, proxy, workload)
        with pytest.raises(RuntimeError, match="failed to register"):
            manager.run()

    def test_stop_halts_phones(self):
        __, __, manager = self.make()
        manager.run()
        manager.stop()
        assert all(not p.alive
                   for phone in manager.callers
                   for p in phone.processes)
