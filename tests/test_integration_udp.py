"""End-to-end tests: UDP architecture (Fig. 2)."""

import pytest

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager

SMALL = dict(warmup_us=30_000.0, measure_us=100_000.0)


def run_cell(transport="udp", clients=5, workers=4, seed=1, **kwargs):
    bed = Testbed(seed=seed)
    config_kwargs = {k: v for k, v in kwargs.items()
                     if k in ProxyConfig.__dataclass_fields__}
    wl_kwargs = {k: v for k, v in kwargs.items()
                 if k in Workload.__dataclass_fields__}
    proxy = build_proxy(bed.server, ProxyConfig(
        transport=transport, workers=workers, **config_kwargs)).start()
    workload = Workload(clients=clients, **{**SMALL, **wl_kwargs})
    result = BenchmarkManager(bed, proxy, workload).run()
    return bed, proxy, result


def test_calls_complete_end_to_end():
    __, proxy, result = run_cell()
    assert result.ops > 50
    assert result.calls_failed == 0
    assert proxy.stats.invite_completed > 0
    assert proxy.stats.bye_completed > 0
    assert proxy.stats.parse_errors == 0
    assert proxy.stats.routing_failures == 0


def test_throughput_is_positive_and_utilization_high():
    __, __, result = run_cell(clients=20)
    assert result.throughput_ops_s > 1000
    # 20 concurrent callers (nearly) saturate the 4-core proxy.
    assert result.cpu_utilization > 0.85


def test_deterministic_given_seed():
    __, __, r1 = run_cell(seed=42)
    __, __, r2 = run_cell(seed=42)
    assert r1.ops == r2.ops
    assert r1.throughput_ops_s == r2.throughput_ops_s


def test_seed_reaches_the_workload():
    """The orchestration is deliberately seed-invariant (fixed message
    sizes, a registration barrier), so aggregate dynamics coincide across
    seeds; the seed must still flow into the protocol identifiers."""
    def first_call_ids(seed):
        bed = Testbed(seed=seed)
        proxy = build_proxy(bed.server,
                            ProxyConfig(transport="udp", workers=4)).start()
        manager = BenchmarkManager(bed, proxy, Workload(clients=4, **SMALL))
        manager.run()
        return tuple(p.builder.new_call_id() for p in manager.callers)

    assert first_call_ids(1) != first_call_ids(2)


def test_proxy_invite_and_bye_balance():
    __, proxy, result = run_cell()
    # Callers alternate invite/bye strictly, so the counts track closely.
    assert abs(proxy.stats.invite_completed -
               proxy.stats.bye_completed) <= len(range(5)) + 1


def test_more_workers_than_cores_still_works():
    __, __, result = run_cell(workers=24, clients=10)
    assert result.ops > 50


def test_stateless_proxy_works_without_trying():
    __, proxy, result = run_cell(stateful=False)
    assert result.ops > 50
    # A stateless proxy creates no transaction state.
    assert len(proxy.txn_table) == 0


def test_registration_happens_before_measurement():
    bed, proxy, result = run_cell()
    assert proxy.stats.registrations >= 10  # 5 callers + 5 callees
    assert result.registration_failures == 0


@pytest.mark.slow


def test_sip_recovers_from_udp_loss():
    """Drop-inducing tiny receive buffer: the calls must still complete,
    repaired by SIP retransmission timers somewhere in the system (the
    phones' timer A/E/G, or the proxy's timer process / absorption)."""
    bed = Testbed(seed=3)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="udp", workers=4, udp_rcvbuf_datagrams=8)).start()
    workload = Workload(clients=30, warmup_us=100_000.0,
                        measure_us=1_500_000.0)
    manager = BenchmarkManager(bed, proxy, workload)
    result = manager.run()
    assert proxy.socket.drops > 0
    assert result.ops > 0
    # Every lost message was repaired: no call ultimately failed...
    assert result.calls_failed == 0
    # ...because retransmission machinery engaged somewhere.
    phone_rtx = sum(p.retransmissions for p in manager.callers)
    engaged = (phone_rtx + proxy.stats.retransmissions_sent +
               proxy.stats.retransmissions_absorbed)
    assert engaged > 0
