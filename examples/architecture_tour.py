#!/usr/bin/env python
"""Tour of all four proxy architectures (§3 + §6).

Runs the same persistent-connection workload against:

- the symmetric UDP worker pool (Fig. 2),
- the TCP supervisor/worker architecture with both §5 fixes (Fig. 1),
- the §6 multi-threaded TCP design (shared descriptors, no IPC),
- the §6 SCTP design (kernel-managed associations, symmetric workers),

and prints a profile excerpt for each, showing where the remaining CPU
goes.

Run:  python examples/architecture_tour.py
"""

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager
from repro.profiling.report import ProfileReport

CLIENTS = 50

ARCHS = [
    ("UDP, symmetric workers", dict(transport="udp", workers=24)),
    ("TCP, supervisor+workers (fixed)", dict(transport="tcp", workers=32,
                                             fd_cache=True,
                                             idle_strategy="pq")),
    ("TCP, multi-threaded", dict(transport="tcp-threaded", workers=32)),
    ("SCTP, symmetric workers", dict(transport="sctp", workers=24)),
]


def main() -> None:
    print(f"One workload ({CLIENTS} callers, persistent connections), "
          "four architectures:\n")
    rows = []
    for name, config_kwargs in ARCHS:
        bed = Testbed(seed=5, profile=True)
        proxy = build_proxy(bed.server,
                            ProxyConfig(**config_kwargs)).start()
        workload = Workload(clients=CLIENTS, warmup_us=100_000.0,
                            measure_us=250_000.0)
        result = BenchmarkManager(bed, proxy, workload).run()
        rows.append((name, result))
        print(ProfileReport(result.profile, name).render(6))
        print()
    print("summary:")
    udp_tput = rows[0][1].throughput_ops_s
    for name, result in rows:
        print(f"  {name:<34} {result.throughput_ops_s:8.0f} ops/s "
              f"({result.throughput_ops_s / udp_tput * 100:3.0f}% of UDP)")


if __name__ == "__main__":
    main()
