#!/usr/bin/env python
"""The paper's §5 narrative in one run.

Takes the workload TCP handles worst — 50 operations per connection, so
phones keep abandoning connections — and applies the paper's two fixes
cumulatively:

1. baseline (Fig. 3): every forward pays a descriptor round trip through
   the supervisor, and idle sweeps touch every connection under a lock;
2. + fd cache (Fig. 4): workers keep the descriptors they fetched;
3. + priority queue (Fig. 5): sweeps touch only expired connections.

Also prints the supporting evidence the paper cites: the share of CPU in
the fd-request IPC path and the idle-sweep population counts.

Run:  python examples/fixes_comparison.py
"""

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager

CLIENTS = 60
OPS_PER_CONN = 20

STEPS = [
    ("baseline (Fig. 3)", dict(fd_cache=False, idle_strategy="scan")),
    ("+ fd cache (Fig. 4)", dict(fd_cache=True, idle_strategy="scan")),
    ("+ priority queue (Fig. 5)", dict(fd_cache=True, idle_strategy="pq")),
]


def run(name, fixes):
    bed = Testbed(seed=3, profile=True)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=32, idle_timeout_us=2_000_000.0,
        **fixes)).start()
    workload = Workload(clients=CLIENTS, ops_per_conn=OPS_PER_CONN,
                        warmup_us=100_000.0, measure_us=300_000.0)
    result = BenchmarkManager(bed, proxy, workload).run()
    stats = result.proxy_stats
    ipc_labels = [label for label in result.profile
                  if label.startswith("ipc_") or label == "send_fd"
                  or label == "tcpconn_send_fd" or label == "receive_fd"]
    ipc_us = sum(result.profile[label] for label in ipc_labels)
    total_us = sum(result.profile.values())
    print(f"{name:<28} {result.throughput_ops_s:8.0f} ops/s   "
          f"fd requests: {stats['fd_requests']:6d}   "
          f"IPC cpu: {ipc_us / total_us * 100:4.1f}%   "
          f"sweep touches: {stats['idle_scan_entries_examined'] + stats['pq_operations']:7d}")
    return result


def main():
    print(f"TCP, {CLIENTS} callers, {OPS_PER_CONN} ops per connection "
          "(churn-heavy):\n")
    results = [run(name, fixes) for name, fixes in STEPS]
    base, cached, fixed = (r.throughput_ops_s for r in results)
    print(f"\nfd cache:        {cached / base:.2f}x")
    print(f"both fixes:      {fixed / base:.2f}x")


if __name__ == "__main__":
    main()
