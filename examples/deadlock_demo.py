#!/usr/bin/env python
"""The §6 deadlock, live.

OpenSER's TCP architecture mixes an event loop with *blocking* IPC: a
worker that requested a descriptor blocks reading the supervisor's reply,
and the supervisor performs blocking sends when assigning new
connections.  Shrink the IPC buffers and load the server with connection
churn, and the two block on each other forever — exactly the failure mode
the paper describes:

  "If, at the same time, the supervisor process blocks waiting to send a
   new connection to the same worker (since the buffer at the receiver is
   full), the two processes will deadlock.  Once the supervisor process
   deadlocks, no other worker can make progress either."

Run:  python examples/deadlock_demo.py
"""

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager


def attempt(ipc_capacity: int, blocking: bool) -> None:
    bed = Testbed(seed=11)
    proxy = build_proxy(bed.server, ProxyConfig(
        transport="tcp", workers=2,
        ipc_capacity=ipc_capacity,
        supervisor_blocking_send=blocking)).start()
    workload = Workload(clients=12, ops_per_conn=2,
                        warmup_us=50_000.0, measure_us=400_000.0,
                        register_deadline_us=2_000_000.0)
    manager = BenchmarkManager(bed, proxy, workload)
    manager.setup_phones()
    try:
        result = manager.run()
        ops = result.ops
    except RuntimeError:
        ops = 0  # registration never finished — the server wedged early
    bed.engine.run(until=bed.engine.now + 2_000_000.0)

    send_blocked = [i for i, chan in enumerate(proxy.assign_chans)
                    if chan.a.blocked_sending_since is not None]
    recv_blocked = [i for i, chan in enumerate(proxy.req_chans)
                    if chan.a.blocked_receiving_since is not None]
    mode = "blocking" if blocking else "non-blocking"
    print(f"ipc_capacity={ipc_capacity:<4} supervisor sends {mode:>12}: "
          f"{ops:6d} ops completed", end="")
    if send_blocked:
        worker = send_blocked[0]
        since = proxy.assign_chans[worker].a.blocked_sending_since
        print(f"   DEADLOCK: supervisor stuck sending to worker {worker} "
              f"since t={since / 1e6:.3f}s; "
              f"workers stuck awaiting fd replies: {recv_blocked}")
    else:
        print("   healthy")


def main() -> None:
    print("Reproducing the paper's §6 blocking-IPC deadlock:\n")
    attempt(ipc_capacity=1, blocking=True)     # the paper's scenario
    attempt(ipc_capacity=256, blocking=True)   # big buffers hide it
    attempt(ipc_capacity=1, blocking=False)    # event-driven sends avoid it
    print("\nThe fix the paper prescribes: only read/write when the event"
          "\nmechanism says you can — never block inside the event loop.")


if __name__ == "__main__":
    main()
