#!/usr/bin/env python
"""Quickstart: benchmark the OpenSER model over UDP and TCP.

Builds the paper's testbed (one 4-core server, three client machines on a
gigabit LAN), starts the proxy in each transport's architecture, drives
100 caller/callee pairs through register + call phases, and prints the
measured throughput — the paper's headline comparison in ~a minute.

Run:  python examples/quickstart.py
"""

from repro import ProxyConfig, Testbed, Workload, build_proxy
from repro.clients import BenchmarkManager

CLIENTS = 50
WINDOW_US = 200_000.0


def run(transport: str, workers: int, **config_kwargs) -> float:
    bed = Testbed(seed=1)
    config = ProxyConfig(transport=transport, workers=workers,
                         **config_kwargs)
    proxy = build_proxy(bed.server, config).start()
    workload = Workload(clients=CLIENTS, warmup_us=100_000.0,
                        measure_us=WINDOW_US)
    result = BenchmarkManager(bed, proxy, workload).run()
    print(f"  {transport:>4} ({workers} workers): "
          f"{result.throughput_ops_s:8.0f} transactions/s   "
          f"(cpu {result.cpu_utilization * 100:.0f}%, "
          f"{result.calls_failed} failed calls)")
    return result.throughput_ops_s


def main() -> None:
    print(f"SIP proxy throughput, {CLIENTS} concurrent callers:")
    udp = run("udp", workers=24)
    tcp = run("tcp", workers=32)
    print(f"\nTCP achieves {tcp / udp * 100:.0f}% of UDP throughput in the "
          "baseline architecture —")
    print("the paper explains why, and examples/fixes_comparison.py shows "
          "the repairs.")


if __name__ == "__main__":
    main()
