"""The §4.1 testbed: one 4-core server, three client machines, gigabit LAN.

:class:`Testbed` wires together the engine, the fabric, the machines and
(optionally) a profiler, leaving proxy/workload construction to
:func:`repro.proxy.build_proxy` and :mod:`repro.clients`.
"""

from typing import List, Optional

from repro.kernel.machine import Machine
from repro.net.fabric import Fabric
from repro.obs.causal import CausalTracer
from repro.obs.tracer import Tracer
from repro.profiling.profiler import Profiler
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

SERVER_NAME = "server"
CLIENT_NAMES = ("client1", "client2", "client3")


class Testbed:
    """The paper's hardware, in simulation."""

    __test__ = False  # not a pytest collection target

    def __init__(
        self,
        seed: int = 0,
        server_cores: int = 4,
        n_client_machines: int = 3,
        latency_us: float = 50.0,
        bandwidth_bytes_per_us: float = 125.0,
        server_fd_limit: int = 16384,
        quantum_us: float = 2000.0,
        time_wait_us: float = 60_000_000.0,
        profile: bool = False,
        trace: bool = False,
        trace_capacity: Optional[int] = None,
        causal: bool = False,
        causal_capacity: Optional[int] = None,
    ) -> None:
        self.engine = Engine()
        self.rng = RngStreams(seed)
        self.profiler = Profiler(self.engine) if profile else None
        if trace:
            self.tracer = (Tracer(self.engine, capacity=trace_capacity)
                           if trace_capacity else Tracer(self.engine))
        else:
            self.tracer = None
        if causal:
            # One tracer for the whole testbed: trace ids are stamped on
            # the client machines and consumed on the server.
            self.causal = (CausalTracer(self.engine,
                                        capacity=causal_capacity)
                           if causal_capacity else CausalTracer(self.engine))
        else:
            self.causal = None
        self.fabric = Fabric(self.engine, latency_us=latency_us,
                             bandwidth_bytes_per_us=bandwidth_bytes_per_us,
                             rng=self.rng.stream("net"))
        self.fabric.causal = self.causal
        self.server = Machine(self.engine, SERVER_NAME, n_cores=server_cores,
                              quantum_us=quantum_us, profiler=self.profiler,
                              tracer=self.tracer,
                              causal=self.causal,
                              fd_limit=server_fd_limit,
                              time_wait_us=time_wait_us)
        self.fabric.attach(self.server)
        self.clients: List[Machine] = []
        for i in range(n_client_machines):
            name = CLIENT_NAMES[i] if i < len(CLIENT_NAMES) else f"client{i+1}"
            client = Machine(self.engine, name, n_cores=2,
                             causal=self.causal)
            self.fabric.attach(client)
            self.clients.append(client)

    def client_for(self, index: int) -> Machine:
        """Round-robin phones across the client machines (§4.2)."""
        return self.clients[index % len(self.clients)]

    def run(self, until_us: float) -> float:
        return self.engine.run(until=until_us)

    def __repr__(self) -> str:
        return (f"<Testbed server={self.server.name} "
                f"clients={[c.name for c in self.clients]}>")
