"""repro — a reproduction of "Explaining the Impact of Network Transport
Protocols on SIP Proxy Performance" (Ram, Fedeli, Cox, Rixner — ISPASS
2008).

The package is a discrete-event simulation of the paper's entire testbed:
a 4-core SIP proxy server modeled after OpenSER (both its UDP and TCP
process architectures, plus the fd-cache and priority-queue fixes the
paper introduces and the §6 threaded/SCTP alternatives), the Linux
scheduling and IPC behaviour those architectures stress, a gigabit LAN,
and thousands of benchmark phones.

Quickstart::

    from repro import Testbed, ProxyConfig, Workload, build_proxy
    from repro.clients import BenchmarkManager

    bed = Testbed(seed=1)
    proxy = build_proxy(bed.server, ProxyConfig(transport="udp",
                                                workers=24)).start()
    result = BenchmarkManager(bed, proxy, Workload(clients=100)).run()
    print(result.throughput_ops_s)
"""

from repro.clients import BenchmarkManager, BenchmarkResult, Phone, Workload
from repro.proxy import CostModel, ProxyConfig, ProxyStats, build_proxy
from repro.testbed import Testbed

__version__ = "1.0.0"

__all__ = [
    "Testbed",
    "ProxyConfig",
    "CostModel",
    "ProxyStats",
    "build_proxy",
    "Workload",
    "BenchmarkResult",
    "BenchmarkManager",
    "Phone",
    "__version__",
]
