"""Simulated OProfile.

Every CPU burst on the server carries a function label; the profiler
aggregates time per label, which regenerates the paper's §5 profile
observations (IPC at 12.0% → 4.6% with the fd cache; the idle-close
function tripling under churn; scheduler functions dominating the kernel
profile during sched_yield storms).
"""

from repro.profiling.profiler import Profiler
from repro.profiling.report import ProfileReport, top_functions, compare

__all__ = ["Profiler", "ProfileReport", "top_functions", "compare"]
