"""CPU-time attribution by function label."""

from typing import Dict, Optional


def _delta(current: Dict[str, float], earlier: Dict[str, float],
           kind: str) -> Dict[str, float]:
    """Positive growth per key since ``earlier``.

    Totals only ever grow, so a decrease means the snapshot predates a
    :meth:`Profiler.reset` — a silent zero there would corrupt any
    windowed share computation, so it raises instead.
    """
    stale = [key for key, total in earlier.items()
             if current.get(key, 0.0) < total]
    if stale:
        raise ValueError(
            f"stale profiler snapshot: {kind} totals decreased for "
            f"{sorted(stale)[:3]} (profiler was reset after the snapshot)")
    return {key: total - earlier.get(key, 0.0)
            for key, total in current.items()
            if total - earlier.get(key, 0.0) > 0.0}


class Profiler:
    """Aggregates simulated CPU time per function label.

    Attached to a :class:`~repro.kernel.scheduler.Scheduler`; every charged
    burst calls :meth:`record`.  Labels beginning with ``kernel.`` play the
    role of OProfile's kernel-image samples.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.by_label: Dict[str, float] = {}
        self.by_process: Dict[str, float] = {}
        self.total_us = 0.0

    def record(self, label: str, us: float, proc_name: str = "?") -> None:
        if us <= 0:
            return
        self.by_label[label] = self.by_label.get(label, 0.0) + us
        self.by_process[proc_name] = self.by_process.get(proc_name, 0.0) + us
        self.total_us += us

    # -- windowed measurement --------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        return dict(self.by_label)

    def snapshot_processes(self) -> Dict[str, float]:
        return dict(self.by_process)

    def delta(self, earlier: Dict[str, float]) -> Dict[str, float]:
        return _delta(self.by_label, earlier, "label")

    def delta_processes(self, earlier: Dict[str, float]) -> Dict[str, float]:
        return _delta(self.by_process, earlier, "process")

    def share(self, label: str) -> float:
        """Fraction of all profiled CPU time spent in ``label``."""
        if self.total_us == 0.0:
            return 0.0
        return self.by_label.get(label, 0.0) / self.total_us

    def reset(self) -> None:
        self.by_label.clear()
        self.by_process.clear()
        self.total_us = 0.0

    def __repr__(self) -> str:
        return (f"<Profiler labels={len(self.by_label)} "
                f"total={self.total_us / 1e6:.3f}s>")
