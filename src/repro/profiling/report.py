"""Rendering profiles the way the paper discusses them."""

from typing import Dict, List, Optional, Tuple


def top_functions(samples: Dict[str, float], n: int = 15,
                  kernel_only: bool = False) -> List[Tuple[str, float, float]]:
    """The top-``n`` (label, us, share) rows, like an OProfile report.

    ``kernel_only=True`` restricts to ``kernel.``/lock labels, matching
    the paper's "top fifteen functions in the kernel" observations.
    """
    if kernel_only:
        samples = {label: us for label, us in samples.items()
                   if label.startswith("kernel.") or ".spin" in label}
    total = sum(samples.values()) or 1.0
    rows = sorted(samples.items(), key=lambda kv: kv[1], reverse=True)[:n]
    return [(label, us, us / total) for label, us in rows]


def compare(before: Dict[str, float], after: Dict[str, float],
            labels: Optional[List[str]] = None) -> List[Tuple[str, float, float]]:
    """Share-of-total before vs after, per label (for the 12.0%→4.6% claim)."""
    total_before = sum(before.values()) or 1.0
    total_after = sum(after.values()) or 1.0
    if labels is None:
        labels = sorted(set(before) | set(after))
    return [(label,
             before.get(label, 0.0) / total_before,
             after.get(label, 0.0) / total_after)
            for label in labels]


class ProfileReport:
    """Formats a profile window as text."""

    def __init__(self, samples: Dict[str, float], title: str = "profile") -> None:
        self.samples = samples
        self.title = title

    def render(self, n: int = 15, kernel_only: bool = False) -> str:
        rows = top_functions(self.samples, n=n, kernel_only=kernel_only)
        width = max([len("function")] + [len(label) for label, __, __ in rows])
        lines = [f"== {self.title} ==",
                 f"{'function':<{width}}  {'cpu (ms)':>10}  {'share':>7}"]
        for label, us, share in rows:
            lines.append(f"{label:<{width}}  {us / 1000.0:>10.2f}  "
                         f"{share * 100.0:>6.1f}%")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ProfileReport {self.title} labels={len(self.samples)}>"
