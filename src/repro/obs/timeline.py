"""Text timeline report: metric series as terminal sparklines.

Companion to :class:`repro.profiling.report.ProfileReport` — where that
shows *where* CPU went in aggregate, this shows *when* things happened:
each sampled series is one row with min/mean/max/last plus a unicode
sparkline over the run, so queue build-up, cache warm-up and IPC-share
collapse are visible without leaving the terminal.
"""

from typing import Dict, List, Optional

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 48) -> str:
    """Render ``values`` as a fixed-width unicode sparkline.

    Longer series are downsampled by averaging equal slices; a flat
    series renders as its lowest bar rather than dividing by zero.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [
            sum(chunk) / len(chunk)
            for chunk in (values[int(i * step):max(int(i * step) + 1,
                                                   int((i + 1) * step))]
                          for i in range(width))
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BARS[0] * len(values)
    top = len(_BARS) - 1
    return "".join(_BARS[int((v - lo) / span * top)] for v in values)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:.2f}M"
    if magnitude >= 1e3:
        return f"{value / 1e3:.1f}k"
    if magnitude >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


class TimelineReport:
    """Renders one cell's serialized metrics dict as a text table."""

    def __init__(self, metrics: Dict, title: str = "timeline",
                 width: int = 48) -> None:
        self.metrics = metrics
        self.title = title
        self.width = width

    def render(self, names: Optional[List[str]] = None) -> str:
        series = self.metrics.get("series", {})
        if names is None:
            names = sorted(series)
        rows = [(name, series[name]) for name in names if series.get(name)]
        if not rows:
            return f"{self.title}: no samples"
        interval_ms = self.metrics.get("interval_us", 0.0) / 1000.0
        samples = self.metrics.get("samples", len(rows[0][1]))
        span_ms = interval_ms * max(samples - 1, 0)
        label_w = max(len("series"), max(len(name) for name, _ in rows))
        lines = [
            f"{self.title} — {samples} samples @ {interval_ms:g} ms "
            f"({span_ms:g} ms span)",
            f"{'series':<{label_w}}  {'min':>8} {'mean':>8} {'max':>8} "
            f"{'last':>8}  trend",
        ]
        for name, values in rows:
            floats = [float(v) for v in values]
            mean = sum(floats) / len(floats)
            lines.append(
                f"{name:<{label_w}}  {_fmt(min(floats)):>8} {_fmt(mean):>8} "
                f"{_fmt(max(floats)):>8} {_fmt(floats[-1]):>8}  "
                f"{sparkline(floats, self.width)}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
