"""Time-series metrics: a periodic sampler over the live simulation.

The paper's overload stories (and the ones in Shen & Schulzrinne's TCP
overload-control work) are *dynamics*: queue depths building, hit rates
warming, IPC share collapsing when the fd cache lands.  The
:class:`MetricSampler` turns the simulator's live state into
fixed-interval series:

- **gauges** — a callable sampled as-is every tick (run-queue length,
  open connections, fd-table occupancy, IPC queue depth);
- **rates** — a cumulative counter turned into a per-second rate per
  interval (message rate, fd-request rate, idle-scan entries examined);
- **ratios** — two cumulative counters turned into a per-interval
  fraction (fd-cache hit rate);
- **CPU shares** — per-interval share of profiled CPU attributed to a
  label set (the 12.0% → 4.6% fd-passing IPC claim, as a time series).

Sampling runs as plain engine callbacks with **zero simulated cost** —
it observes, never perturbs, so a sampled cell produces bit-identical
benchmark numbers to an unsampled one and serial/parallel runs agree.
"""

import json
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.kernel.timerwheel import PeriodicTimer

#: labels making up the descriptor-request IPC path (worker + supervisor
#: sides); the paper's §5.1 "function in which the IPC occurred"
IPC_LABELS = ("ipc_send_fd_request", "ipc_recv", "receive_fd",
              "tcpconn_send_fd", "ipc_send", "send_fd")

#: labels of the idle-connection examination work (§5.2/§5.3)
IDLE_LABELS = ("tcpconn_timeout", "tcp_receive_timeout",
               "pq_sweep", "pq_worker_sweep")

#: default sampling interval (µs of simulated time)
DEFAULT_INTERVAL_US = 10_000.0

#: hard cap on samples per series, so a forgotten sampler cannot grow
#: without bound on very long runs
MAX_SAMPLES = 1_000_000

LabelMatcher = Union[Sequence[str], Callable[[str], bool]]


def _lock_label(label: str) -> bool:
    """CPU burnt spinning or yielding for userspace locks (§5.2)."""
    return ".spin" in label or label == "kernel.sched_yield"


class MetricSampler:
    """Snapshots registered probes every ``interval_us`` of simulated time.

    Probes are registered before :meth:`start`; every tick appends one
    value per probe, so all series share the time axis
    ``t0_us + k * interval_us``.
    """

    def __init__(self, engine, interval_us: float = DEFAULT_INTERVAL_US,
                 profiler=None, max_samples: int = MAX_SAMPLES) -> None:
        if interval_us <= 0:
            raise ValueError("sampling interval must be positive")
        self.engine = engine
        self.interval_us = float(interval_us)
        self.profiler = profiler
        self.max_samples = max_samples
        self.series: Dict[str, List[float]] = {}
        self.t0_us: Optional[float] = None
        self.samples = 0
        self._gauges: List[tuple] = []       # (name, fn)
        self._rates: List[list] = []         # [name, fn, last_value]
        self._ratios: List[list] = []        # [name, num_fn, den_fn, ln, ld]
        self._shares: List[tuple] = []       # (name, matcher)
        self._last_labels: Dict[str, float] = {}
        self._timer = PeriodicTimer(engine, self.interval_us, self._tick)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _claim(self, name: str) -> None:
        if name in self.series:
            raise ValueError(f"duplicate metric name {name!r}")
        self.series[name] = []

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        self._claim(name)
        self._gauges.append((name, fn))

    def add_rate(self, name: str, fn: Callable[[], float]) -> None:
        """``fn`` returns a cumulative counter; the series is its
        per-second increase over each interval."""
        self._claim(name)
        self._rates.append([name, fn, None])

    def add_ratio(self, name: str, numerator_fn: Callable[[], float],
                  denominator_fn: Callable[[], float]) -> None:
        """Per-interval ``Δnum / Δden`` (0.0 over empty intervals)."""
        self._claim(name)
        self._ratios.append([name, numerator_fn, denominator_fn, None, None])

    def add_cpu_share(self, name: str, labels: LabelMatcher) -> None:
        """Per-interval fraction of profiled CPU in ``labels``.

        ``labels`` is a sequence of exact profiler labels or a predicate;
        requires a profiler (raises otherwise).
        """
        if self.profiler is None:
            raise ValueError("cpu-share metrics need a profiler")
        self._claim(name)
        matcher = labels if callable(labels) else frozenset(labels).__contains__
        self._shares.append((name, matcher))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def start(self) -> "MetricSampler":
        """Take the t=now sample and begin periodic ticking."""
        if self.t0_us is not None:
            raise RuntimeError("sampler already started")
        self.t0_us = self.engine.now
        self._tick()
        self._timer.start()
        return self

    def stop(self) -> None:
        self._timer.stop()

    def _tick(self) -> None:
        if self.samples >= self.max_samples:
            self._timer.stop()
            return
        self.samples += 1
        series = self.series
        inv_interval_s = 1e6 / self.interval_us
        for name, fn in self._gauges:
            series[name].append(float(fn()))
        for entry in self._rates:
            name, fn, last = entry
            current = float(fn())
            series[name].append(0.0 if last is None
                                else (current - last) * inv_interval_s)
            entry[2] = current
        for entry in self._ratios:
            name, num_fn, den_fn, last_num, last_den = entry
            num, den = float(num_fn()), float(den_fn())
            if last_num is None or den - last_den <= 0:
                series[name].append(0.0)
            else:
                series[name].append((num - last_num) / (den - last_den))
            entry[3], entry[4] = num, den
        if self._shares:
            labels = dict(self.profiler.by_label)
            last = self._last_labels
            deltas = {label: total - last.get(label, 0.0)
                      for label, total in labels.items()}
            total_delta = sum(deltas.values())
            for name, matcher in self._shares:
                if total_delta <= 0:
                    series[name].append(0.0)
                else:
                    matched = sum(us for label, us in deltas.items()
                                  if matcher(label))
                    series[name].append(matched / total_delta)
            self._last_labels = labels

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready form, carried on ``BenchmarkResult.metrics``."""
        return {
            "interval_us": self.interval_us,
            "t0_us": self.t0_us if self.t0_us is not None else 0.0,
            "samples": self.samples,
            "series": {name: list(values)
                       for name, values in self.series.items()},
        }

    def __repr__(self) -> str:
        return (f"<MetricSampler interval={self.interval_us}us "
                f"series={len(self.series)} samples={self.samples}>")


def register_standard_probes(sampler: MetricSampler, testbed,
                             proxy) -> MetricSampler:
    """Attach the standard server-health probes for one experiment cell.

    Architecture-specific state (connection table, IPC channels, fd
    caches) registers only when the proxy actually has it, so the same
    call works for UDP, TCP, threaded and SCTP servers.
    """
    scheduler = testbed.server.scheduler
    stats = proxy.stats
    sampler.add_gauge("run_queue", scheduler.runnable)
    # events_fired only flushes when Engine.run exits; the scheduled
    # count is the mid-run-exact equivalent.
    sampler.add_rate("sim_event_rate",
                     lambda: testbed.engine.events_scheduled)
    sampler.add_gauge("txn_table", proxy.txn_table.__len__)
    sampler.add_gauge("fd_table", lambda: sum(
        len(proc.fdtable) for proc in proxy.processes
        if getattr(proc, "fdtable", None) is not None))
    conn_table = getattr(proxy, "conn_table", None)
    if conn_table is not None:
        sampler.add_gauge("open_conns", conn_table.__len__)
    channels = (list(getattr(proxy, "assign_chans", ())) +
                list(getattr(proxy, "req_chans", ())))
    if channels:
        sampler.add_gauge("ipc_depth", lambda: sum(
            chan.pending_total() for chan in channels))
    sampler.add_rate("msg_rx_rate", lambda: stats.messages_received)
    sampler.add_rate("reject_503_rate", lambda: stats.invites_rejected)
    controller = getattr(proxy, "controller", None)
    if controller is not None:
        for name, fn in controller.gauge_probes().items():
            sampler.add_gauge(f"overload_{name}", fn)
    sampler.add_rate("fd_request_rate", lambda: stats.fd_requests)
    sampler.add_rate("idle_scan_rate",
                     lambda: stats.idle_scan_entries_examined)
    sampler.add_ratio("fd_cache_hit_rate",
                      lambda: stats.fd_cache_hits,
                      lambda: stats.fd_cache_hits + stats.fd_cache_misses)
    if sampler.profiler is not None:
        sampler.add_cpu_share("cpu_ipc_share", IPC_LABELS)
        sampler.add_cpu_share("cpu_idle_share", IDLE_LABELS)
        sampler.add_cpu_share("cpu_lock_share", _lock_label)
    causal = getattr(testbed, "causal", None)
    if causal is not None:
        sampler.add_rate("causal_segment_rate", lambda: causal.emitted)
        sampler.add_gauge("causal_segments_dropped", lambda: causal.dropped)
        sampler.add_gauge("causal_marks", lambda: len(causal.marks))
    return sampler


def series_window_mean(metrics: Dict, name: str,
                       from_us: Optional[float] = None,
                       to_us: Optional[float] = None) -> float:
    """Mean of one serialized series over a simulated-time window.

    The first sample of a windowed rate/ratio/share series covers the
    interval *ending* at its timestamp, so a sample at ``t`` is included
    when ``from_us < t <= to_us``.
    """
    interval = metrics["interval_us"]
    t0 = metrics["t0_us"]
    values = metrics["series"][name]
    picked = []
    for k, value in enumerate(values):
        t = t0 + k * interval
        if from_us is not None and t <= from_us:
            continue
        if to_us is not None and t > to_us:
            break
        picked.append(value)
    return sum(picked) / len(picked) if picked else 0.0


def write_metrics_jsonl(path, cells) -> int:
    """Write metric series as JSON Lines; returns lines written.

    ``cells`` is an iterable of ``(label, metrics_dict)`` pairs (one per
    experiment cell).  Each cell contributes a ``meta`` line followed by
    one ``sample`` line per tick::

        {"type": "meta", "cell": "tcp-50/100", "interval_us": ..., ...}
        {"type": "sample", "cell": "tcp-50/100", "t_us": ..., "values": {...}}
    """
    lines = 0
    with open(path, "w") as fh:
        for label, metrics in cells:
            if not metrics:
                continue
            names = sorted(metrics["series"])
            meta = {"type": "meta", "cell": label,
                    "interval_us": metrics["interval_us"],
                    "t0_us": metrics["t0_us"],
                    "samples": metrics["samples"],
                    "series": names}
            fh.write(json.dumps(meta, sort_keys=True) + "\n")
            lines += 1
            for k in range(metrics["samples"]):
                row = {"type": "sample", "cell": label,
                       "t_us": metrics["t0_us"] + k * metrics["interval_us"],
                       "values": {name: metrics["series"][name][k]
                                  for name in names
                                  if k < len(metrics["series"][name])}}
                fh.write(json.dumps(row, sort_keys=True) + "\n")
                lines += 1
    return lines
