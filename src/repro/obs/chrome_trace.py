"""Chrome trace-event JSON export (Perfetto / chrome://tracing viewable).

Maps :class:`~repro.obs.tracer.Span` objects onto the Trace Event
Format's JSON-object form: closed spans become ``"X"`` (complete)
events, instants become ``"i"`` events, and every distinct ``who``
string gets a ``thread_name`` metadata event so the viewer shows
process/worker names instead of numeric tids.

``who`` strings of the form ``"proc/sub"`` split into a pid row named
``proc`` with a tid lane named ``sub``; plain names get one lane in a
shared pid.  Timestamps are simulated microseconds, which is exactly
the unit the format expects.
"""

import json
from typing import Dict, Iterable, List, Optional

#: pid used for `who` strings without a "/" separator
DEFAULT_PID_NAME = "sim"


def _intern(table: Dict[str, int], name: str) -> int:
    ident = table.get(name)
    if ident is None:
        ident = len(table) + 1
        table[name] = ident
    return ident


def to_chrome_events(events) -> List[Dict]:
    """Convert an iterable of spans into trace-event dicts.

    Metadata (``process_name`` / ``thread_name``) events come first so
    viewers label lanes before any real event lands in them.
    """
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}
    meta: List[Dict] = []
    body: List[Dict] = []
    for span in events:
        who = span.who or "?"
        proc, _, thread = who.partition("/")
        if not thread:
            proc, thread = DEFAULT_PID_NAME, who
        new_proc = proc not in pids
        pid = _intern(pids, proc)
        if new_proc:
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": proc}})
        new_thread = who not in tids
        tid = _intern(tids, who)
        if new_thread:
            meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": tid, "args": {"name": thread}})
        event = {
            "name": span.name,
            "cat": span.cat,
            "ts": span.start_us,
            "pid": pid,
            "tid": tid,
        }
        if span.attrs:
            event["args"] = dict(span.attrs)
        if span.end_us is None or span.end_us == span.start_us:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span.end_us - span.start_us
        body.append(event)
    return meta + body


def write_chrome_trace(path, tracer, extra: Optional[Dict] = None) -> int:
    """Write ``tracer``'s buffered events as a Chrome trace file.

    Returns the number of trace events written (excluding metadata).
    ``extra`` lands in ``otherData`` next to the eviction count, so a
    truncated trace is visibly partial in the viewer's metadata panel.
    """
    events = tracer.events()
    other: Dict = {
        "events_recorded": tracer.emitted,
        "events_dropped": tracer.dropped,
        "capacity": tracer.capacity,
    }
    if extra:
        other.update(extra)
    payload = {
        "traceEvents": to_chrome_events(events),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return len(events)


def write_journey_trace(path, causal, extra: Optional[Dict] = None) -> int:
    """Write a causal tracer's segments as a Chrome trace file.

    Each wait-state segment becomes a complete event named after its
    component (``network``/``sockq``/``runq``/``lock``/``ipc``/``cpu``)
    on the lane of the process it occurred on, with the trace id in
    ``args`` so Perfetto's search groups one message's journey.  Phone
    marks (``uac_send``/``uac_final``) render as instants on the caller's
    lane, giving each journey visible endpoints.  Lanes reuse the span
    exporter's ``proc/sub`` convention, so the server's workers and
    supervisor land under one labelled process block and the phones under
    another.  Returns the number of events written (excluding metadata).
    """
    from repro.obs.tracer import Span

    spans: List[Span] = []
    for seg in causal.segments:
        span = Span(seg.kind, "journey", seg.who, seg.start_us,
                    attrs={"tid": seg.tid})
        if seg.detail:
            span.attrs["detail"] = seg.detail
        span.end_us = seg.end_us
        spans.append(span)
    for tid, which, who, t_us in causal.marks:
        span = Span(which, "journey", who, t_us, attrs={"tid": tid})
        span.end_us = t_us  # instant
        spans.append(span)
    other: Dict = {
        "segments_recorded": causal.emitted,
        "segments_dropped": causal.dropped,
        "marks": len(causal.marks),
        "capacity": causal.capacity,
    }
    if extra:
        other.update(extra)
    payload = {
        "traceEvents": to_chrome_events(spans),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return len(spans)


def validate_chrome_trace(path) -> Dict:
    """Parse a trace file and sanity-check the schema; returns summary.

    Used by tests and the CI validation step.  Raises ``ValueError`` on
    structural problems rather than asserting, so callers get a message
    naming the offending event.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("not a Chrome trace: missing traceEvents")
    names = set()
    cats = set()
    counts = {"X": 0, "i": 0, "M": 0}
    for event in payload["traceEvents"]:
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event!r}")
        ph = event["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue
        if "ts" not in event:
            raise ValueError(f"event missing 'ts': {event!r}")
        if ph == "X" and not event.get("dur", 0) >= 0:
            raise ValueError(f"complete event with bad dur: {event!r}")
        names.add(event["name"])
        cats.add(event.get("cat", ""))
    return {
        "events": counts.get("X", 0) + counts.get("i", 0),
        "complete": counts.get("X", 0),
        "instants": counts.get("i", 0),
        "metadata": counts.get("M", 0),
        "names": names,
        "cats": cats,
    }
