"""Span tracing keyed to simulated time.

A :class:`Span` covers one interval of simulated time — one message's
trip through a worker, one supervisor fd-passing round trip, one idle
sweep — and carries attributes (call-id, worker, transport) for
filtering in a trace viewer.  An *instant* is a zero-length span (a
context switch, a cache hit, a blocked IPC send).

Completed events land in a ring buffer (:class:`collections.deque` with
``maxlen``): million-operation runs stay bounded, the newest events win,
and :attr:`Tracer.dropped` records how many old events were evicted so
exports can say the trace is partial.

Tracing is pull-wired: components hold a ``tracer`` attribute that is
``None`` by default, and every emission site guards with
``if tracer is not None`` — the untraced hot path costs one attribute
load and a branch.
"""

import collections
from typing import Dict, Iterator, List, Optional

#: default ring-buffer capacity (events); ~100 bytes/event in memory
DEFAULT_CAPACITY = 200_000


class Span:
    """One traced interval of simulated time.

    ``end_us`` is ``None`` while the span is open; :meth:`Tracer.end`
    stamps it and moves the span into the ring buffer.  Instants have
    ``end_us == start_us``.
    """

    __slots__ = ("name", "cat", "who", "start_us", "end_us", "attrs")

    def __init__(self, name: str, cat: str, who: str, start_us: float,
                 attrs: Optional[Dict] = None) -> None:
        self.name = name
        self.cat = cat
        self.who = who
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def set(self, **attrs) -> "Span":
        """Attach (more) attributes to an open span."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:
        state = ("open" if self.end_us is None
                 else f"{self.duration_us:.1f}us")
        return f"<Span {self.cat}:{self.name} @{self.start_us:.1f} {state}>"


class Tracer:
    """Ring-buffered span recorder for one simulation."""

    def __init__(self, engine, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self._events: collections.deque = collections.deque(maxlen=capacity)
        #: completed events ever recorded (≥ len(events) once evicting)
        self.emitted = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "proxy", who: str = "?",
              **attrs) -> Span:
        """Open a span at the current simulated time (not yet buffered)."""
        return Span(name, cat, who, self.engine.now, attrs or None)

    def end(self, span: Span) -> Span:
        """Close ``span`` now and commit it to the ring buffer."""
        span.end_us = self.engine.now
        self._events.append(span)
        self.emitted += 1
        return span

    def instant(self, name: str, cat: str = "kernel", who: str = "?",
                **attrs) -> Span:
        """Record a zero-length event at the current simulated time."""
        span = Span(name, cat, who, self.engine.now, attrs or None)
        span.end_us = span.start_us
        self._events.append(span)
        self.emitted += 1
        return span

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer (oldest-first)."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Span]:
        """The buffered events, oldest first."""
        return list(self._events)

    def spans(self, name: Optional[str] = None,
              cat: Optional[str] = None) -> Iterator[Span]:
        """Buffered events filtered by name and/or category."""
        for span in self._events:
            if name is not None and span.name != name:
                continue
            if cat is not None and span.cat != cat:
                continue
            yield span

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def __repr__(self) -> str:
        return (f"<Tracer events={len(self._events)}/{self.capacity} "
                f"dropped={self.dropped}>")
