"""Log-bucketed streaming latency histograms.

``percentiles()`` in :mod:`repro.clients.workload` sorts every retained
sample — fine for the bounded per-phone sample lists, wrong for
million-operation runs.  :class:`StreamingHistogram` records values into
geometrically-spaced buckets (default 5% resolution), so memory is
O(buckets), inserts are O(1), and any percentile is recoverable to
within one bucket's relative width.

Histograms merge (per-phone → per-run) and serialize to plain dicts, so
they survive the result cache and the parallel runner's process boundary
like every other :class:`~repro.clients.workload.BenchmarkResult` field.
"""

import math
from typing import Dict, Iterable, Optional

#: default relative bucket width (5% ⇒ percentile error ≤ ~5%)
DEFAULT_RESOLUTION = 0.05


class StreamingHistogram:
    """Streaming histogram with geometric buckets for positive values.

    Non-positive values (a zero-latency sample is possible at simulated
    instants) are counted in a dedicated underflow bucket valued 0.
    """

    __slots__ = ("base", "_inv_log_base", "buckets", "count", "total",
                 "min", "max", "zeros")

    def __init__(self, resolution: float = DEFAULT_RESOLUTION) -> None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.base = 1.0 + resolution
        self._inv_log_base = 1.0 / math.log(self.base)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zeros = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = math.floor(math.log(value) * self._inv_log_base)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` into this histogram (resolutions must match)."""
        if abs(other.base - self.base) > 1e-12:
            raise ValueError("cannot merge histograms with different "
                             f"resolutions ({self.base} vs {other.base})")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, point: float) -> float:
        """Estimated value at percentile ``point`` (0 < point ≤ 100)."""
        if not self.count:
            return 0.0
        rank = max(1, min(self.count,
                          math.ceil(point / 100.0 * self.count)))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # Geometric midpoint of the bucket, clamped to observed
                # extremes so p0/p100 never overshoot the data.
                value = self.base ** (index + 0.5)
                if self.max is not None:
                    value = min(value, self.max)
                if self.min is not None:
                    value = max(value, self.min)
                return value
        return self.max if self.max is not None else 0.0

    def percentiles(self, points=(50, 95, 99, 99.9)) -> Dict[str, float]:
        """Same shape as :func:`repro.clients.workload.percentiles`."""
        if not self.count:
            return {}
        out = {f"p{point:g}": self.percentile(point) for point in points}
        out["mean"] = self.mean
        return out

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "resolution": self.base - 1.0,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "zeros": self.zeros,
            "buckets": {str(index): n for index, n in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "StreamingHistogram":
        hist = cls(resolution=payload["resolution"])
        hist.count = payload["count"]
        hist.total = payload["total"]
        hist.min = payload["min"]
        hist.max = payload["max"]
        hist.zeros = payload["zeros"]
        hist.buckets = {int(index): n
                        for index, n in payload["buckets"].items()}
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"<StreamingHistogram n={self.count} "
                f"mean={self.mean:.1f} buckets={len(self.buckets)}>")
