"""Per-transaction journey reconstruction from causal segments.

A *journey* is the critical path of one SIP transaction: the window
from the phone's ``uac_send`` mark (request handed to the transport) to
its ``uac_final`` mark (final response consumed), decomposed into the
:data:`~repro.obs.causal.COMPONENTS` wait states.

Reconstruction is a cursor walk over the trace-id's segments sorted by
start time: each segment contributes only its portion past the cursor,
so overlapping evidence — retransmitted requests re-tagging the same
trace id, a lock charge inside an IPC round trip — is clipped rather
than double-counted, and the decomposition sums to the window length by
construction (uncovered time lands in ``"other"``).
"""

from typing import Dict, List, Optional

from repro.obs.causal import COMPONENTS, CausalTracer


class Journey:
    """One reconstructed transaction window with its decomposition."""

    __slots__ = ("tid", "who", "method", "start_us", "end_us",
                 "components")

    def __init__(self, tid: str, who: str, start_us: float,
                 end_us: float, components: Dict[str, float]) -> None:
        self.tid = tid
        self.who = who
        self.method = tid.rsplit("/", 1)[-1] if "/" in tid else "?"
        self.start_us = start_us
        self.end_us = end_us
        #: µs per component; keys are COMPONENTS plus ``"other"``
        self.components = components

    @property
    def total_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> Dict:
        return {"tid": self.tid, "who": self.who, "method": self.method,
                "start_us": self.start_us, "end_us": self.end_us,
                "total_us": self.total_us, "components": self.components}

    def __repr__(self) -> str:
        return (f"<Journey {self.tid!r} {self.total_us:.0f}us "
                f"{self.components}>")


def decompose(segments, start_us: float, end_us: float) -> Dict[str, float]:
    """Clip ``segments`` to the window and decompose it by kind.

    The cursor walk is retransmission-safe: duplicate or overlapping
    segments (same trace id tagged twice) only cover each instant once,
    first-starting segment wins.  Returns µs per component, with the
    window time no segment explains under ``"other"``; the values always
    sum to exactly ``end_us - start_us``.
    """
    components = {kind: 0.0 for kind in COMPONENTS}
    components["other"] = 0.0
    cursor = start_us
    for seg in sorted(segments, key=lambda s: (s.start_us, s.end_us)):
        lo = max(seg.start_us, cursor)
        hi = min(seg.end_us, end_us)
        if hi <= lo:
            continue
        if lo > cursor:
            components["other"] += lo - cursor
        components[seg.kind] = components.get(seg.kind, 0.0) + (hi - lo)
        cursor = hi
    if cursor < end_us:
        components["other"] += end_us - cursor
    return components


def journey_windows(causal: CausalTracer) -> List[tuple]:
    """(tid, who, start, end) per transaction from the uac marks.

    Retransmissions leave several ``uac_send`` marks for one trace id:
    the earliest wins (the caller's latency clock starts at the first
    send).  A transaction with no final response (timed out, still in
    flight at shutdown) has no window.
    """
    first_send: Dict[str, tuple] = {}
    finals: Dict[str, float] = {}
    for tid, which, who, t_us in causal.marks:
        if which == "uac_send":
            if tid not in first_send or t_us < first_send[tid][1]:
                first_send[tid] = (who, t_us)
        elif which == "uac_final":
            if tid not in finals or t_us < finals[tid]:
                finals[tid] = t_us
    windows = []
    for tid, (who, t0) in first_send.items():
        t1 = finals.get(tid)
        if t1 is not None and t1 > t0:
            windows.append((tid, who, t0, t1))
    windows.sort(key=lambda w: w[2])
    return windows


def build_journeys(causal: CausalTracer,
                   window: Optional[tuple] = None) -> List[Journey]:
    """Reconstruct every completed journey recorded by ``causal``.

    ``window=(t0, t1)`` keeps only transactions that *start* inside the
    measured interval (warmup and drain-phase calls are excluded the
    same way the latency histograms exclude them).
    """
    by_tid: Dict[str, list] = {}
    for seg in causal.segments:
        by_tid.setdefault(seg.tid, []).append(seg)
    journeys = []
    for tid, who, t0, t1 in journey_windows(causal):
        if window is not None and not (window[0] <= t0 <= window[1]):
            continue
        components = decompose(by_tid.get(tid, ()), t0, t1)
        journeys.append(Journey(tid, who, t0, t1, components))
    return journeys


def journeys_to_jsonable(journeys: List[Journey]) -> List[Dict]:
    return [j.to_dict() for j in journeys]
