"""Observability: end-to-end tracing and time-series metrics.

The paper's contribution is *explanatory* — OProfile samples showing that
TCP's collapse comes from supervisor fd-passing IPC and idle-scan lock
contention.  The aggregate profile (:mod:`repro.profiling`) reproduces
the shares; this package reproduces the *mechanism view*:

- :class:`~repro.obs.tracer.Tracer` records begin/end spans keyed to
  simulated time for the full message lifecycle (recv → parse →
  transaction match → supervisor IPC round trip → fd-cache lookup →
  send) plus kernel events (context switches, lock spins), bounded by a
  ring buffer so million-op runs stay bounded;
- :class:`~repro.obs.metrics.MetricSampler` snapshots gauges (run-queue
  length, open connections, fd-table occupancy, IPC queue depth,
  fd-cache hit rate, idle-scan cost) and counter rates into
  fixed-interval series, with per-interval CPU-share series that turn
  the paper's 12.0% → 4.6% IPC claim into a time series;
- :class:`~repro.obs.histogram.StreamingHistogram` provides log-bucketed
  latency distributions so percentile reporting no longer sorts every
  sample on large runs;
- :mod:`~repro.obs.chrome_trace` exports Perfetto-viewable Chrome
  trace-event JSON, :mod:`~repro.obs.metrics` writes metrics JSONL, and
  :class:`~repro.obs.timeline.TimelineReport` renders series as text
  alongside :class:`~repro.profiling.report.ProfileReport`;
- :class:`~repro.obs.causal.CausalTracer` tags every SIP message with a
  trace id and records its wait-state transitions (network, socket
  queue, run queue, lock, IPC, CPU); :mod:`~repro.obs.journey`
  reconstructs per-transaction critical paths between the phone's
  ``uac_send``/``uac_final`` marks and :mod:`~repro.obs.attribution`
  aggregates them into the stacked latency-attribution figure
  (``python -m repro fig-attr``).

Every instrumentation hook in the simulator is a no-op when no tracer is
attached (a ``tracer is None`` guard on the hot path), so the PR 1
engine optimisations are preserved for untraced runs.
"""

from repro.obs.attribution import (
    ALL_COMPONENTS,
    aggregate_journeys,
    attribution_table,
    render_waterfall,
)
from repro.obs.causal import (
    COMPONENTS,
    CausalTracer,
    Segment,
    classify_charge,
)
from repro.obs.chrome_trace import (
    to_chrome_events,
    write_chrome_trace,
    write_journey_trace,
)
from repro.obs.histogram import StreamingHistogram
from repro.obs.journey import (
    Journey,
    build_journeys,
    decompose,
    journeys_to_jsonable,
)
from repro.obs.metrics import (
    IPC_LABELS,
    MetricSampler,
    register_standard_probes,
    write_metrics_jsonl,
)
from repro.obs.timeline import TimelineReport
from repro.obs.tracer import Span, Tracer

__all__ = [
    "ALL_COMPONENTS",
    "COMPONENTS",
    "CausalTracer",
    "IPC_LABELS",
    "Journey",
    "MetricSampler",
    "Segment",
    "Span",
    "StreamingHistogram",
    "TimelineReport",
    "Tracer",
    "aggregate_journeys",
    "attribution_table",
    "build_journeys",
    "classify_charge",
    "decompose",
    "journeys_to_jsonable",
    "register_standard_probes",
    "render_waterfall",
    "to_chrome_events",
    "write_chrome_trace",
    "write_journey_trace",
    "write_metrics_jsonl",
]
