"""Aggregation of journeys into per-transport latency attribution.

Turns a run's reconstructed journeys into the paper-style answer:
mean/p50/p99 end-to-end latency, decomposed into the
:data:`~repro.obs.causal.COMPONENTS` stack, with per-component shares —
the machine-generated analogue of the oprofile tables (the IPC row is
the paper's Table 3 claim: 12.0% of time without the fd cache, 4.6%
with it).

Latency percentiles come from :class:`StreamingHistogram`\\ s built per
caller and folded together with :meth:`StreamingHistogram.merge`, so
aggregation cost stays O(buckets) however many phones contributed.
"""

from typing import Dict, List, Optional

from repro.obs.causal import COMPONENTS, CausalTracer
from repro.obs.histogram import StreamingHistogram
from repro.obs.journey import Journey

ALL_COMPONENTS = COMPONENTS + ("other",)


def aggregate_journeys(journeys: List[Journey]) -> Dict:
    """Fold journeys into one attribution summary (plain JSON dict)."""
    if not journeys:
        return {"journeys": 0}
    per_caller: Dict[str, StreamingHistogram] = {}
    comp_total = {kind: 0.0 for kind in ALL_COMPONENTS}
    methods: Dict[str, int] = {}
    total = 0.0
    for j in journeys:
        hist = per_caller.get(j.who)
        if hist is None:
            hist = per_caller[j.who] = StreamingHistogram()
        hist.add(j.total_us)
        total += j.total_us
        methods[j.method] = methods.get(j.method, 0) + 1
        for kind, us in j.components.items():
            comp_total[kind] = comp_total.get(kind, 0.0) + us
    merged = StreamingHistogram()
    for hist in per_caller.values():
        merged.merge(hist)
    n = len(journeys)
    components_us = {kind: comp_total[kind] / n for kind in ALL_COMPONENTS}
    shares = ({kind: comp_total[kind] / total for kind in ALL_COMPONENTS}
              if total > 0 else {kind: 0.0 for kind in ALL_COMPONENTS})
    return {
        "journeys": n,
        "callers": len(per_caller),
        "methods": methods,
        "latency_us": {"mean": merged.mean,
                       "p50": merged.percentile(50),
                       "p99": merged.percentile(99)},
        "mean_total_us": total / n,
        "components_us": components_us,
        "shares": shares,
    }


# ----------------------------------------------------------------------
# single-call waterfall
# ----------------------------------------------------------------------
def render_waterfall(causal: CausalTracer, call_id: str,
                     width: int = 48) -> str:
    """Text waterfall for every journey whose trace id contains call_id.

    One bar row per segment, offset/scaled to the journey window, so a
    single INVITE's trip — network, socket queue, run queue, IPC round
    trip, CPU service — reads top to bottom like a waterfall view.
    """
    from repro.obs.journey import build_journeys

    journeys = [j for j in build_journeys(causal) if call_id in j.tid]
    if not journeys:
        return f"no completed journey matches call-id {call_id!r}"
    lines = []
    for j in journeys:
        lines.append(f"journey {j.tid}  caller={j.who}  "
                     f"total={j.total_us:.1f}us")
        span = j.total_us or 1.0
        segs = sorted((s for s in causal.segments if s.tid == j.tid),
                      key=lambda s: (s.start_us, s.end_us))
        for seg in segs:
            lo = max(seg.start_us, j.start_us)
            hi = min(seg.end_us, j.end_us)
            if hi <= lo:
                continue
            left = int((lo - j.start_us) / span * width)
            bar = max(1, int((hi - lo) / span * width))
            bar = min(bar, width - left)
            detail = f" ({seg.detail})" if seg.detail else ""
            lines.append(f"  {seg.kind:>8} {'.' * left}{'#' * bar}"
                         f"{' ' * (width - left - bar)} "
                         f"{hi - lo:8.1f}us  {seg.who}{detail}")
        comp = "  ".join(f"{k}={v:.1f}" for k, v in j.components.items()
                         if v > 0)
        lines.append(f"  {'sum':>8} {comp}")
        lines.append("")
    return "\n".join(lines).rstrip()


def attribution_table(attribution: Dict,
                      label: Optional[str] = None) -> str:
    """One attribution summary as an aligned text block."""
    if not attribution or not attribution.get("journeys"):
        return "no journeys recorded"
    lines = []
    if label:
        lines.append(label)
    lat = attribution["latency_us"]
    lines.append(f"  journeys={attribution['journeys']}  "
                 f"latency mean={lat['mean']:.1f}us "
                 f"p50={lat['p50']:.1f}us p99={lat['p99']:.1f}us")
    for kind in ALL_COMPONENTS:
        us = attribution["components_us"].get(kind, 0.0)
        share = attribution["shares"].get(kind, 0.0)
        bar = "#" * int(round(share * 40))
        lines.append(f"  {kind:>8} {us:9.1f}us  {share * 100:5.1f}%  {bar}")
    return "\n".join(lines)
