"""Causal per-message tracing: wait-state transitions keyed by trace id.

The flat spans of :mod:`repro.obs.tracer` say *that* a worker spent time
in ``fd_request_rtt``; they cannot say how one INVITE's 900 µs divided
into socket-queue wait vs run-queue wait vs lock vs IPC vs CPU — the
question the paper answers by hand with oprofile tables.  This module
answers it automatically:

- every SIP message is tagged with a **trace id** derived from its
  Call-ID and CSeq method (``sniff``), so INVITE and BYE transactions
  sharing a dialog stay distinct;
- instrumented components emit :class:`Segment` records — one interval
  of simulated time attributed to a *kind* drawn from
  :data:`COMPONENTS` — into a bounded ring buffer;
- the phone marks ``uac_send``/``uac_final`` instants that delimit each
  transaction's journey window (:mod:`repro.obs.journey` reconstructs
  the critical path between them).

Wiring follows the PR 2 tracer idiom exactly: components hold a
``causal`` attribute that is ``None`` by default and every emission site
guards with ``if causal is not None``, so the untraced hot path costs
one attribute load and a branch.

Attribution of *blocked* waits uses a hint handshake: a blocking
primitive calls :meth:`CausalTracer.hint_block` immediately before its
``yield Wait(...)``; the scheduler's dispatch consumes the hint in
:meth:`on_block_start` and :meth:`on_block_end` emits the classified
segment when the process wakes.  The simulator is single-threaded and
dispatch runs synchronously during the yield, so the single pending
hint slot cannot be claimed by another process.
"""

import collections
from typing import Dict, List, Optional

#: critical-path components, in stacked-figure order
COMPONENTS = ("network", "sockq", "runq", "lock", "ipc", "cpu")

#: default ring-buffer capacity (segments); ~90 bytes/segment in memory
DEFAULT_CAPACITY = 500_000

#: Compute labels whose CPU burn is IPC machinery (mirrors
#: :data:`repro.obs.metrics.IPC_LABELS`)
IPC_CHARGE_LABELS = frozenset({
    "ipc_send_fd_request", "ipc_recv", "receive_fd",
    "tcpconn_send_fd", "ipc_send", "send_fd",
})


def classify_charge(label: str) -> str:
    """Map a scheduler charge label to an attribution component."""
    if (label.startswith("lock.") or label.startswith("kmutex.")
            or label == "kernel.sched_yield"):
        return "lock"
    if label in IPC_CHARGE_LABELS:
        return "ipc"
    return "cpu"


class Segment:
    """One interval of simulated time attributed to a trace id."""

    __slots__ = ("tid", "kind", "who", "start_us", "end_us", "detail")

    def __init__(self, tid: str, kind: str, who: str, start_us: float,
                 end_us: float, detail: Optional[str] = None) -> None:
        self.tid = tid
        self.kind = kind
        self.who = who
        self.start_us = start_us
        self.end_us = end_us
        self.detail = detail

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def __repr__(self) -> str:
        return (f"<Segment {self.kind} {self.tid!r} "
                f"[{self.start_us:.1f},{self.end_us:.1f}] by {self.who}>")


class CausalTracer:
    """Ring-buffered wait-state transition recorder for one simulation.

    One instance is shared by every machine and the fabric of a
    :class:`~repro.testbed.Testbed` (messages cross machines; their
    trace ids must not).
    """

    def __init__(self, engine, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("causal tracer capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.segments: collections.deque = collections.deque(maxlen=capacity)
        #: segments ever recorded (≥ len(segments) once evicting)
        self.emitted = 0
        #: journey-window marks: (tid, which, who, t_us) with which in
        #: {"uac_send", "uac_final"}
        self.marks: List[tuple] = []
        #: per-process trace-id context, keyed by FULL scheduler process
        #: name (e.g. ``server/tcp-worker-0``)
        self._ctx: Dict[str, str] = {}
        #: single pending block-reason hint (see module docstring)
        self._hint: Optional[str] = None
        #: consumed hints parked until the blocked process wakes
        self._block_reason: Dict[str, str] = {}
        #: run-queue entry stamps for processes with an active context
        self._runq_since: Dict[str, float] = {}
        #: free-form event counters (fd-cache hits, drops, ...)
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # trace-id extraction
    # ------------------------------------------------------------------
    @staticmethod
    def sniff(text: str) -> Optional[str]:
        """Trace id for a SIP message: ``"<Call-ID>/<CSeq method>"``.

        The CSeq method disambiguates the INVITE/ACK/BYE transactions of
        one dialog, which share a Call-ID.  Returns None for text with
        no Call-ID header (keep-alives, garbage).
        """
        i = text.find("Call-ID:")
        if i < 0:
            return None
        j = text.find("\r\n", i)
        call_id = text[i + 8:j if j >= 0 else len(text)].strip()
        if not call_id:
            return None
        k = text.find("CSeq:")
        if k < 0:
            return call_id
        m = text.find("\r\n", k)
        cseq = text[k + 5:m if m >= 0 else len(text)].strip()
        method = cseq.rsplit(" ", 1)[-1] if cseq else ""
        return f"{call_id}/{method}" if method else call_id

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def note(self, tid: Optional[str], kind: str, who: str,
             start_us: float, end_us: float,
             detail: Optional[str] = None) -> None:
        """Record one attributed interval (no-op for untagged traffic)."""
        if tid is None or end_us <= start_us:
            return
        self.segments.append(Segment(tid, kind, who, start_us, end_us,
                                     detail))
        self.emitted += 1

    def mark(self, tid: Optional[str], which: str, who: str) -> None:
        """Record a journey-window boundary at the current time."""
        if tid is None:
            return
        self.marks.append((tid, which, who, self.engine.now))

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    # ------------------------------------------------------------------
    # per-process message context
    # ------------------------------------------------------------------
    def ctx_begin(self, proc_name: str, tid: Optional[str]) -> None:
        """Attribute ``proc_name``'s time to ``tid`` until ``ctx_end``."""
        if tid is not None:
            self._ctx[proc_name] = tid

    def ctx_end(self, proc_name: str) -> None:
        self._ctx.pop(proc_name, None)
        self._runq_since.pop(proc_name, None)

    def ctx_tid(self, proc_name: str) -> Optional[str]:
        return self._ctx.get(proc_name)

    # ------------------------------------------------------------------
    # scheduler hooks (all called with causal-is-not-None already checked)
    # ------------------------------------------------------------------
    def hint_block(self, reason: str) -> None:
        """Declare why the *next* ``yield Wait`` will block."""
        self._hint = reason

    def on_block_start(self, proc_name: str) -> None:
        """Dispatch saw ``proc_name`` block; claim the pending hint."""
        hint, self._hint = self._hint, None
        if hint is not None and proc_name in self._ctx:
            self._block_reason[proc_name] = hint

    def on_block_end(self, proc_name: str, blocked_at: float) -> None:
        """``proc_name`` became ready after blocking at ``blocked_at``."""
        reason = self._block_reason.pop(proc_name, None)
        if reason is None:
            return
        tid = self._ctx.get(proc_name)
        if tid is not None:
            self.note(tid, reason, proc_name, blocked_at, self.engine.now)

    def on_runq_push(self, proc_name: str) -> None:
        """``proc_name`` entered the run queue (earliest stamp wins)."""
        if proc_name in self._ctx and proc_name not in self._runq_since:
            self._runq_since[proc_name] = self.engine.now

    def on_runq_pop(self, proc_name: str) -> None:
        """``proc_name`` left the run queue for a core."""
        since = self._runq_since.pop(proc_name, None)
        if since is None:
            return
        tid = self._ctx.get(proc_name)
        if tid is not None:
            self.note(tid, "runq", proc_name, since, self.engine.now)

    def on_charge(self, proc_name: str, label: str, us: float) -> None:
        """``proc_name`` was just charged ``us`` of CPU under ``label``."""
        if us <= 0:
            return
        tid = self._ctx.get(proc_name)
        if tid is None:
            return
        now = self.engine.now
        self.note(tid, classify_charge(label), proc_name, now - us, now,
                  label)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Segments evicted by the ring buffer (oldest-first)."""
        return self.emitted - len(self.segments)

    def segments_for(self, tid: str) -> List[Segment]:
        return [seg for seg in self.segments if seg.tid == tid]

    def tids(self) -> List[str]:
        """Distinct trace ids present in the buffer, insertion order."""
        seen = dict.fromkeys(seg.tid for seg in self.segments)
        return list(seen)

    def __len__(self) -> int:
        return len(self.segments)

    def __repr__(self) -> str:
        return (f"<CausalTracer segments={len(self.segments)}"
                f"/{self.capacity} marks={len(self.marks)} "
                f"dropped={self.dropped}>")
