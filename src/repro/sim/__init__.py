"""Discrete-event simulation core.

The simulator models time in microseconds of *simulated* time.  Everything
in :mod:`repro` — the OS scheduler, the network, the SIP proxy — runs on
top of this engine, so wall-clock interpreter speed never contaminates the
measured results.

Public surface:

- :class:`~repro.sim.engine.Engine` — the event loop and clock.
- :class:`~repro.sim.process.SimProcess` — a generator-based simulated
  process (used for client phones and other uncontended actors; CPU-bound
  server processes instead run under :class:`repro.kernel.scheduler.Scheduler`).
- Effect primitives in :mod:`repro.sim.primitives`.
- :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Condition`.
- :class:`~repro.sim.rng.RngStreams` — named deterministic RNG streams.
"""

from repro.sim.engine import Engine, Scheduled, SimulationError
from repro.sim.events import Event, Condition
from repro.sim.primitives import (
    Compute,
    Sleep,
    Wait,
    YieldCPU,
    Fork,
    Exit,
)
from repro.sim.process import SimProcess, ProcessState
from repro.sim.rng import RngStreams

__all__ = [
    "Engine",
    "Scheduled",
    "SimulationError",
    "Event",
    "Condition",
    "Compute",
    "Sleep",
    "Wait",
    "YieldCPU",
    "Fork",
    "Exit",
    "SimProcess",
    "ProcessState",
    "RngStreams",
]
