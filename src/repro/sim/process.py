"""Generator-driven simulated processes.

:class:`SimProcess` drives a process body (a generator yielding
:mod:`~repro.sim.primitives` effects) directly on the engine with
*uncontended* CPU: ``Compute`` simply advances the clock.  This is the
right model for the benchmark client machines, which the paper monitored
"to ensure that they were never the bottleneck" (§4.1).

Server-side processes instead run as
:class:`repro.kernel.scheduler.KernelProcess`, a subclass that routes CPU
effects through the simulated multi-core scheduler.
"""

import enum
from typing import Any, Callable, Iterator, Optional

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event
from repro.sim.primitives import Compute, Exit, Fork, Sleep, Wait, YieldCPU


class ProcessState(enum.Enum):
    NEW = "new"
    LIVE = "live"
    DONE = "done"
    KILLED = "killed"
    FAILED = "failed"


class SimProcess:
    """A simulated process executing a generator of effects."""

    def __init__(self, engine: Engine, body: Iterator, name: str = "proc") -> None:
        self.engine = engine
        self.name = name
        self.gen = body
        self.state = ProcessState.NEW
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done = Event(engine, name=f"{name}.done")
        #: incremented on every resume; lets stale wakeups be discarded
        self._epoch = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SimProcess":
        """Begin execution (first step runs as a zero-delay event)."""
        if self.state is not ProcessState.NEW:
            raise SimulationError(f"{self.name}: start() called twice")
        self.state = ProcessState.LIVE
        self.engine.schedule(0.0, self._resume, None, self._epoch)
        return self

    def kill(self) -> None:
        """Terminate the process; any pending wakeups are discarded."""
        if self.state in (ProcessState.DONE, ProcessState.KILLED, ProcessState.FAILED):
            return
        self._epoch += 1
        self.state = ProcessState.KILLED
        self.gen.close()
        self.done.fire(None)

    @property
    def alive(self) -> bool:
        return self.state in (ProcessState.NEW, ProcessState.LIVE)

    # ------------------------------------------------------------------
    # driving the generator
    # ------------------------------------------------------------------
    def _resume(self, value: Any, epoch: int) -> None:
        """Advance the generator with ``value``; drop stale wakeups."""
        if epoch != self._epoch or self.state is not ProcessState.LIVE:
            return
        self._epoch += 1
        try:
            effect = self.gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced to the engine
            self.state = ProcessState.FAILED
            self.error = exc
            self.done.fire(None)
            raise
        self._dispatch(effect)

    def _dispatch(self, effect) -> None:
        """Interpret one effect.  Subclasses override CPU-related cases."""
        epoch = self._epoch
        if isinstance(effect, Compute):
            self._on_compute(effect, epoch)
        elif isinstance(effect, Sleep):
            self.engine.schedule(effect.us, self._resume, None, epoch)
        elif isinstance(effect, Wait):
            effect.source.subscribe(lambda value: self._resume(value, epoch))
        elif isinstance(effect, YieldCPU):
            self._on_yield(epoch)
        elif isinstance(effect, Fork):
            child = self._spawn(effect.body, effect.name)
            child.start()
            self.engine.schedule(0.0, self._resume, child, epoch)
        elif isinstance(effect, Exit):
            self.gen.close()
            self._finish(effect.value)
        else:
            raise SimulationError(f"{self.name}: unknown effect {effect!r}")

    # Hooks specialised by KernelProcess -------------------------------
    def _on_compute(self, effect: Compute, epoch: int) -> None:
        """Uncontended CPU: computing just takes time."""
        self.engine.schedule(effect.us, self._resume, None, epoch)

    def _on_yield(self, epoch: int) -> None:
        """Uncontended CPU: yielding is free."""
        self.engine.schedule(0.0, self._resume, None, epoch)

    def _spawn(self, body: Iterator, name: str) -> "SimProcess":
        return SimProcess(self.engine, body, name=name)

    def _finish(self, value: Any) -> None:
        self.state = ProcessState.DONE
        self.result = value
        self.done.fire(value)

    def __repr__(self) -> str:
        return f"<SimProcess {self.name!r} {self.state.value}>"
