"""Deterministic named random streams.

Every stochastic choice in the simulation (network jitter, workload
think times, hash placement, ...) draws from a stream obtained via
``RngStreams.stream(name)``.  Streams are independent and derived from the
master seed, so a run is reproducible and adding a new consumer does not
perturb existing streams.
"""

import hashlib
import random
from typing import Dict


class RngStreams:
    """A family of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __repr__(self) -> str:
        return f"<RngStreams seed={self.seed} streams={sorted(self._streams)}>"
