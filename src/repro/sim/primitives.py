"""Effect primitives yielded by simulated-process generators.

A process body is a Python generator.  Each ``yield`` hands the driver an
effect describing what the process wants to do next::

    def body():
        yield Compute(12.5, label="parse_msg")   # burn 12.5 µs of CPU
        value = yield Wait(some_event)           # block until event fires
        yield Sleep(1000.0)                      # 1 ms off-CPU delay
        yield Exit(value)

How ``Compute`` and ``YieldCPU`` behave depends on the driver: a bare
:class:`~repro.sim.process.SimProcess` treats CPU as uncontended (clients
are "never the bottleneck"), while a kernel-scheduled process competes for
cores under :class:`repro.kernel.scheduler.Scheduler`.
"""

from typing import Any, Optional


class Effect:
    """Base class for everything a process may yield."""

    __slots__ = ()


class Compute(Effect):
    """Consume ``us`` microseconds of CPU time.

    ``label`` names the simulated function for the profiler; the paper's
    OProfile results are reproduced by aggregating these labels.
    """

    __slots__ = ("us", "label")

    def __init__(self, us: float, label: str = "anon") -> None:
        if us < 0:
            raise ValueError(f"negative compute time: {us}")
        self.us = float(us)
        self.label = label

    def __repr__(self) -> str:
        return f"Compute({self.us:.2f}us, {self.label!r})"


class Sleep(Effect):
    """Block off-CPU for ``us`` microseconds (a timer, not CPU burn)."""

    __slots__ = ("us",)

    def __init__(self, us: float) -> None:
        if us < 0:
            raise ValueError(f"negative sleep time: {us}")
        self.us = float(us)

    def __repr__(self) -> str:
        return f"Sleep({self.us:.2f}us)"


class Wait(Effect):
    """Block until an :class:`~repro.sim.events.Event`/``Signal``/``Condition``
    wakes us; the fired value becomes the result of the ``yield``.
    """

    __slots__ = ("source",)

    def __init__(self, source) -> None:
        self.source = source

    def __repr__(self) -> str:
        return f"Wait({self.source!r})"


class YieldCPU(Effect):
    """Relinquish the CPU voluntarily (``sched_yield``).

    OpenSER's userspace spinlocks call ``sched_yield`` when contended; under
    the kernel scheduler this requeues the process behind its peers, which
    is exactly the behaviour behind the paper's §5.2 profile observation
    that "the top ten kernel functions are all in the Linux scheduler".
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "YieldCPU()"


class Fork(Effect):
    """Spawn a child process running ``body`` in the same scheduling domain.

    The ``yield`` evaluates to the child process object.
    """

    __slots__ = ("body", "name")

    def __init__(self, body, name: str = "child") -> None:
        self.body = body
        self.name = name

    def __repr__(self) -> str:
        return f"Fork({self.name!r})"


class Exit(Effect):
    """Terminate the process with ``value`` as its result."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Exit({self.value!r})"
