"""Synchronization objects for simulated processes.

Two flavours:

- :class:`Event` — one-shot: fires once with a value; late waiters resume
  immediately with that value.
- :class:`Signal` — multi-shot: each :meth:`Signal.fire` wakes the waiters
  registered at that moment and is then forgotten.
"""

from typing import Any, Callable, List, Optional


class Event:
    """A one-shot event carrying a value.

    Processes wait on it via ``yield Wait(event)``; arbitrary callbacks can
    subscribe with :meth:`subscribe`.
    """

    __slots__ = ("engine", "name", "fired", "value", "_callbacks")

    def __init__(self, engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self.fired = False
        self.value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires (or now if it has)."""
        if self.fired:
            self.engine.schedule(0.0, callback, self.value)
        else:
            self._callbacks.append(callback)

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking all subscribers.  Firing twice is an error."""
        if self.fired:
            raise RuntimeError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.engine.schedule(0.0, callback, value)

    def __repr__(self) -> str:
        state = f"fired={self.value!r}" if self.fired else "pending"
        return f"<Event {self.name!r} {state}>"


class Signal:
    """A repeatable wake-up source.

    Each call to :meth:`fire` wakes exactly the callbacks registered at the
    time of the call; registrations are not persistent.
    """

    __slots__ = ("engine", "name", "_callbacks", "_listeners")

    def __init__(self, engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._callbacks: List[Callable[[Any], None]] = []
        #: persistent listeners, called synchronously on every fire (used
        #: by pollers so they need not re-subscribe per wait round)
        self._listeners: List[Callable[[Any], None]] = []

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        self._callbacks.append(callback)

    def unsubscribe(self, callback: Callable[[Any], None]) -> None:
        if callback in self._callbacks:
            self._callbacks.remove(callback)

    def listen(self, callback: Callable[[Any], None]) -> None:
        """Persistently observe every fire (not cleared by firing)."""
        self._listeners.append(callback)

    def unlisten(self, callback: Callable[[Any], None]) -> None:
        if callback in self._listeners:
            self._listeners.remove(callback)

    @property
    def waiters(self) -> int:
        return len(self._callbacks)

    def fire(self, value: Any = None) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.engine.schedule(0.0, callback, value)
        for listener in list(self._listeners):
            listener(value)

    def fire_one(self, value: Any = None) -> bool:
        """Wake only the longest-waiting subscriber.  Returns False if none."""
        if not self._callbacks:
            return False
        callback = self._callbacks.pop(0)
        self.engine.schedule(0.0, callback, value)
        return True

    def __repr__(self) -> str:
        return f"<Signal {self.name!r} waiters={len(self._callbacks)}>"


class Condition:
    """A level-triggered condition: waiters wake whenever ``check()`` holds.

    Built from a predicate over external state plus a :class:`Signal` that
    interested parties pulse via :meth:`notify` after mutating that state.
    """

    def __init__(self, engine, predicate: Callable[[], bool], name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._predicate = predicate
        self._signal = Signal(engine, name=f"{name}.signal")

    def holds(self) -> bool:
        return bool(self._predicate())

    def notify(self) -> None:
        """Re-test the predicate and wake all waiters if it holds."""
        if self.holds():
            self._signal.fire()

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        if self.holds():
            self.engine.schedule(0.0, callback, None)
        else:
            self._signal.subscribe(callback)

    def __repr__(self) -> str:
        return f"<Condition {self.name!r} holds={self.holds()}>"
