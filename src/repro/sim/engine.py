"""The discrete-event engine: a clock and an ordered event heap.

Time is measured in **microseconds of simulated time** throughout the
project.  The engine guarantees deterministic ordering: events scheduled
for the same instant fire in the order they were scheduled.
"""

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation core."""


class Scheduled:
    """Handle for a scheduled callback; allows cancellation.

    Returned by :meth:`Engine.schedule` and :meth:`Engine.schedule_at`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Scheduled t={self.time:.1f} fn={getattr(self.fn, '__name__', self.fn)} {state}>"


class Engine:
    """Event loop holding the simulated clock.

    Usage::

        eng = Engine()
        eng.schedule(10.0, callback)     # run callback at now+10 µs
        eng.run(until=1_000_000)         # simulate one second
    """

    #: compaction triggers: heap larger than this and mostly cancelled
    COMPACT_MIN = 65536

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Scheduled] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._steps_since_compact = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> Scheduled:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Scheduled:
        """Schedule ``fn(*args)`` to run at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (t={time}, now={self.now})"
            )
        self._seq += 1
        item = Scheduled(time, self._seq, fn, args)
        # Heap entries are (time, seq, item) tuples so ordering runs on C
        # tuple comparison rather than Scheduled.__lt__.
        heapq.heappush(self._heap, (time, self._seq, item))
        return item

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop cancelled entries from the heap (kept lazily otherwise)."""
        live = [entry for entry in self._heap if not entry[2].cancelled]
        if len(live) < len(self._heap):
            self._heap = live
            heapq.heapify(self._heap)

    def _maybe_compact(self) -> None:
        self._steps_since_compact += 1
        if self._steps_since_compact < 100_000 or \
                len(self._heap) < self.COMPACT_MIN:
            return
        self._steps_since_compact = 0
        self.compact()

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        self._maybe_compact()
        while self._heap:
            time, __, item = heapq.heappop(self._heap)
            if item.cancelled:
                continue
            if time < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            self.now = time
            item.fn(*item.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap empties or the clock passes ``until``.

        Returns the simulated time at which the run stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                head_time, __, head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head_time > until:
                    break
                self.step()
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Stop an in-progress :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    def __repr__(self) -> str:
        return f"<Engine now={self.now:.1f}us pending={self.pending}>"
