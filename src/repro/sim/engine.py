"""The discrete-event engine: a clock and an ordered event heap.

Time is measured in **microseconds of simulated time** throughout the
project.  The engine guarantees deterministic ordering: events scheduled
for the same instant fire in the order they were scheduled.

Cancellation is lazy: a cancelled entry stays in the heap until it is
popped or until a compaction removes it.  The engine keeps an exact
count of cancelled entries still in the heap, so compaction triggers as
soon as cancelled entries outnumber live ones (restartable SIP
retransmission timers cancel on every restart, which used to bloat the
heap until a step-count heuristic fired).
"""

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation core."""


class Scheduled:
    """Handle for a scheduled callback; allows cancellation.

    Returned by :meth:`Engine.schedule` and :meth:`Engine.schedule_at`.
    A consumed (fired) entry is marked cancelled as well, so ``cancel``
    after the fact is a no-op and does not skew the engine's count.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "engine")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple,
                 engine: "Engine") -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            self.engine._cancelled += 1

    def __lt__(self, other: "Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Scheduled t={self.time:.1f} fn={getattr(self.fn, '__name__', self.fn)} {state}>"


class Engine:
    """Event loop holding the simulated clock.

    Usage::

        eng = Engine()
        eng.schedule(10.0, callback)     # run callback at now+10 µs
        eng.run(until=1_000_000)         # simulate one second
    """

    #: compaction triggers: heap at least this big and mostly cancelled
    COMPACT_MIN = 8192

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: exact number of cancelled entries still sitting in the heap
        self._cancelled = 0
        #: events executed so far (observability gauge; updated from a
        #: local accumulator so the fire loop stays attribute-free)
        self.events_fired = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> Scheduled:
        """Schedule ``fn(*args)`` to run ``delay`` µs from now."""
        # Inlined schedule_at: this is the hottest allocation site in the
        # whole simulator (millions of calls per cell).
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        self._seq = seq = self._seq + 1
        item = Scheduled(time, seq, fn, args, self)
        heap = self._heap
        # Heap entries are (time, seq, item) tuples so ordering runs on C
        # tuple comparison rather than Scheduled.__lt__.
        heapq.heappush(heap, (time, seq, item))
        # The heap only grows here, so this is the one place compaction
        # needs checking: fire when cancelled entries dominate.
        if self._cancelled * 2 > len(heap) and len(heap) >= self.COMPACT_MIN:
            self.compact()
        return item

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Scheduled:
        """Schedule ``fn(*args)`` to run at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (t={time}, now={self.now})"
            )
        self._seq = seq = self._seq + 1
        item = Scheduled(time, seq, fn, args, self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, item))
        if self._cancelled * 2 > len(heap) and len(heap) >= self.COMPACT_MIN:
            self.compact()
        return item

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop cancelled entries from the heap (kept lazily otherwise).

        Mutates the heap list in place so aliases held by a running
        :meth:`run` loop stay valid.
        """
        if self._cancelled:
            heap = self._heap
            live = [entry for entry in heap if not entry[2].cancelled]
            if len(live) < len(heap):
                heap[:] = live
                heapq.heapify(heap)
            self._cancelled = 0

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, __, item = pop(heap)
            if item.cancelled:
                self._cancelled -= 1
                continue
            if time < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            self.now = time
            item.cancelled = True  # consumed; a later cancel() is a no-op
            self.events_fired += 1
            item.fn(*item.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap empties or the clock passes ``until``.

        Returns the simulated time at which the run stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        # Local bindings: this loop dominates every simulation's profile.
        # compact() rewrites the heap in place, so the alias stays valid.
        # The fired counter stays local for the same reason and is flushed
        # on exit; mid-run samplers read `events_scheduled` instead.
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            while heap and not self._stopped:
                time, __, item = heap[0]
                if item.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                if until is not None and time > until:
                    break
                pop(heap)
                if time < self.now:
                    raise SimulationError(
                        "event heap corrupted: time went backwards")
                self.now = time
                item.cancelled = True  # consumed
                fired += 1
                item.fn(*item.args)
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._running = False
            self.events_fired += fired
        return self.now

    def stop(self) -> None:
        """Stop an in-progress :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap (O(1))."""
        return len(self._heap) - self._cancelled

    @property
    def events_scheduled(self) -> int:
        """Events ever scheduled (O(1); exact even mid-run, unlike
        :attr:`events_fired` which flushes when :meth:`run` exits)."""
        return self._seq

    def __repr__(self) -> str:
        return f"<Engine now={self.now:.1f}us pending={self.pending}>"
