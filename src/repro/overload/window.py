"""Window-based overload control: bound in-flight INVITEs per upstream.

The feedback-window scheme of Shen & Schulzrinne's TCP overload-control
work, enforced proxy-side: each upstream source (a TCP connection
record, or a UDP source address) may have at most ``window`` INVITE
transactions outstanding; excess arrivals are shed with 503.  The window
is AIMD-adjusted from the shared occupancy signal — additive increase
while the server has headroom, multiplicative decrease when occupancy or
the receive queue says overload — and an admitted call's completion (or
timeout) releases its slot.

Bounding *concurrency* rather than rate is what makes this scheme
self-clocking: under overload, per-call latency grows, so a fixed
window automatically admits fewer calls per second (Little's law), and
the shed traffic never enters the retransmission spiral.

Per-source state lives in a plain dict keyed by the source object (the
TCP servers' ``ConnRecord``/the UDP ``(addr, port)`` pair); the
transports call :meth:`forget_source` when a connection dies so closed
upstreams cannot leak slots.
"""

from typing import Callable, Dict, Optional

from repro.overload.controller import PeriodicController


class WindowController(PeriodicController):
    """Per-upstream AIMD feedback window over in-flight INVITEs."""

    name = "window"

    def __init__(self, params: Optional[Dict] = None) -> None:
        super().__init__(params)
        get = self.params.get
        self.target = float(get("target_occupancy", 0.85))
        self.queue_high = float(get("queue_high", 0.25))
        self.window_min = float(get("window_min", 1.0))
        self.window_max = float(get("window_max", 64.0))
        #: additive increase per control tick with headroom
        self.increase = float(get("increase", 0.25))
        #: multiplicative decrease factor on overload
        self.decrease = float(get("decrease", 0.7))
        self.window = float(get("window_initial", 8.0))
        self._inflight: Dict[object, int] = {}

    # -- control law ---------------------------------------------------
    def update(self, occupancy: float, queue_fill: float) -> None:
        if occupancy > self.target or queue_fill > self.queue_high:
            self.window = max(self.window_min, self.window * self.decrease)
        else:
            self.window = min(self.window_max, self.window + self.increase)

    # -- admission -----------------------------------------------------
    def admit(self, now: float, source) -> bool:
        try:
            inflight = self._inflight.get(source, 0)
        except TypeError:  # unhashable source: never throttle it
            return True
        return inflight < self.window

    def note_admitted(self, source) -> None:
        try:
            self._inflight[source] = self._inflight.get(source, 0) + 1
        except TypeError:
            pass

    def note_done(self, source, success: bool = True) -> None:
        try:
            left = self._inflight.get(source, 0) - 1
        except TypeError:
            return
        if left > 0:
            self._inflight[source] = left
        else:
            self._inflight.pop(source, None)
        if not success:
            # A timed-out admitted call is the strongest overload signal
            # there is; shrink without waiting for the next tick.
            self.window = max(self.window_min, self.window * self.decrease)

    def forget_source(self, source) -> None:
        try:
            self._inflight.pop(source, None)
        except TypeError:
            pass

    # -- observability -------------------------------------------------
    def inflight_total(self) -> int:
        return sum(self._inflight.values())

    def gauge_probes(self) -> Dict[str, Callable[[], float]]:
        return {
            "window": lambda: self.window,
            "inflight": lambda: float(self.inflight_total()),
            "occupancy": lambda: (self.signal.occupancy
                                  if self.signal is not None else 0.0),
        }
