"""The pluggable overload-control interface.

The paper stops at saturation; past it, SIP servers collapse — queueing
delay crosses T1, clients retransmit, and the server burns its CPU
absorbing duplicates instead of completing calls (Hong et al., "A
Comparative Study of SIP Overload Control Algorithms"; Shen &
Schulzrinne, "On TCP-based SIP Server Overload Control").  An
:class:`OverloadController` decides, per arriving INVITE, whether the
proxy admits it or sheds it with a cheap 503 + Retry-After (the
rejection fast path in :meth:`repro.proxy.core.ProxyCore.process`).

Controllers observe the live proxy (CPU occupancy, receive-queue fill,
transaction completions) through zero-simulated-cost callbacks — the
decision itself is what costs CPU, and that cost is charged on the
rejection/admission paths in the core, exactly like a real in-server
admission check.  Control-law updates run on a
:class:`~repro.kernel.timerwheel.PeriodicTimer` tick; a real
implementation's per-tick arithmetic is nanoseconds and is not charged.
"""

from typing import Callable, Dict, Optional

from repro.kernel.timerwheel import PeriodicTimer

#: how often control laws re-evaluate their signals (µs of simulated time)
DEFAULT_CONTROL_INTERVAL_US = 20_000.0


class OverloadController:
    """Admission policy for new INVITEs (base class admits everything).

    Lifecycle: constructed from config, then :meth:`bind` is called once
    by :meth:`repro.proxy.base.BaseProxyServer.start` with the live
    server.  Hooks:

    - :meth:`admit` — called by the core's fast path for every arriving
      INVITE *before* any parsing/transaction work; return False to shed
      it with a 503.
    - :meth:`note_admitted` / :meth:`note_done` — transaction lifecycle
      feedback (new INVITE transaction created / reached a final
      response or timed out), used by window-based controllers.
    - :meth:`forget_source` — the transport dropped an upstream
      (connection closed); per-source state must not leak.
    """

    name = "base"
    #: advertised in the 503's Retry-After header (seconds)
    retry_after_s = 1

    def __init__(self, params: Optional[Dict] = None) -> None:
        self.params = dict(params or {})
        self.proxy = None
        self.engine = None

    # -- lifecycle -----------------------------------------------------
    def bind(self, proxy) -> None:
        """Attach to a started proxy server and begin controlling."""
        self.proxy = proxy
        self.engine = proxy.engine
        self._on_bind()

    def _on_bind(self) -> None:
        """Subclass hook: signals are available, timers may start."""

    def stop(self) -> None:
        """Detach timers (the proxy is being torn down)."""

    # -- admission -----------------------------------------------------
    def admit(self, now: float, source) -> bool:
        """Admit (True) or shed (False) one arriving INVITE."""
        return True

    # -- transaction feedback ------------------------------------------
    def note_admitted(self, source) -> None:
        """A new INVITE transaction was created for ``source``."""

    def note_done(self, source, success: bool = True) -> None:
        """An admitted INVITE reached a final response (or timed out)."""

    def forget_source(self, source) -> None:
        """The transport destroyed ``source``; drop its state."""

    # -- observability -------------------------------------------------
    def gauge_probes(self) -> Dict[str, Callable[[], float]]:
        """Named zero-cost gauges for the metric sampler (read-only)."""
        return {}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class OccupancySignal:
    """Shared occupancy probe: per-interval CPU busy fraction plus the
    transport's receive-queue fill.

    Both :class:`~repro.overload.occupancy.LocalOccupancyController` and
    :class:`~repro.overload.window.WindowController` drive their control
    laws from this pair; reading it never perturbs the simulation.
    """

    def __init__(self, proxy) -> None:
        self.scheduler = proxy.machine.scheduler
        self.n_cores = len(self.scheduler.cores)
        self.queue_fill_fn = proxy.queue_fill
        self._last_busy = self.scheduler.total_busy_us()
        self.occupancy = 0.0
        self.queue_fill = 0.0

    def sample(self, interval_us: float) -> None:
        """Refresh both signals over the interval just ended."""
        busy = self.scheduler.total_busy_us()
        self.occupancy = (busy - self._last_busy) / (interval_us *
                                                     self.n_cores)
        self._last_busy = busy
        self.queue_fill = self.queue_fill_fn()


class PeriodicController(OverloadController):
    """A controller whose law runs every ``control_interval_us``."""

    def __init__(self, params: Optional[Dict] = None) -> None:
        super().__init__(params)
        self.control_interval_us = float(self.params.get(
            "control_interval_us", DEFAULT_CONTROL_INTERVAL_US))
        self.signal: Optional[OccupancySignal] = None
        self._timer: Optional[PeriodicTimer] = None

    def _on_bind(self) -> None:
        self.signal = OccupancySignal(self.proxy)
        self._timer = PeriodicTimer(self.engine, self.control_interval_us,
                                    self._tick)
        self._timer.start()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def _tick(self) -> None:
        self.signal.sample(self.control_interval_us)
        self.update(self.signal.occupancy, self.signal.queue_fill)

    def update(self, occupancy: float, queue_fill: float) -> None:
        """The control law; subclasses adjust their admission state."""
        raise NotImplementedError
