"""Local occupancy control: 503-shed a fraction of new INVITEs.

The classic local (server-side) algorithm from the SIP overload
literature (Hong et al.'s OCC family): every control interval, measure
CPU occupancy; when it exceeds the target, multiplicatively shrink the
fraction of new calls accepted, and grow it back when headroom returns.
A receive-queue panic threshold reacts faster than the occupancy
average can — queue growth is the leading edge of collapse.

Acceptance is enforced with a deterministic token accumulator rather
than a random draw, so cells stay reproducible: with fraction *f*, every
INVITE deposits *f* tokens and admission spends one — exactly an
``accept f of 1`` pattern with no RNG.
"""

from typing import Callable, Dict, Optional

from repro.overload.controller import PeriodicController


class LocalOccupancyController(PeriodicController):
    """Occupancy-triggered 503 rejection with multiplicative backoff."""

    name = "local-occupancy"

    def __init__(self, params: Optional[Dict] = None) -> None:
        super().__init__(params)
        get = self.params.get
        #: occupancy the law steers toward (fraction of all cores busy)
        self.target = float(get("target_occupancy", 0.85))
        #: queue fill that triggers an immediate backoff.  High on
        #: purpose: Poisson bursts routinely fill a quarter of the
        #: receive buffer at 1× load, and shedding on those would cost
        #: real goodput — the panic is for *sustained* buildup, the
        #: leading edge of collapse.
        self.queue_high = float(get("queue_high", 0.6))
        self.queue_backoff = float(get("queue_backoff", 0.7))
        #: floor under the acceptance fraction (never shed everything)
        self.min_accept = float(get("min_accept", 0.05))
        #: cap on per-tick growth, so recovery cannot overshoot straight
        #: back into collapse
        self.max_growth = float(get("max_growth", 1.25))
        self.accept_fraction = 1.0
        self._tokens = 0.0

    # -- control law ---------------------------------------------------
    def update(self, occupancy: float, queue_fill: float) -> None:
        # OCC step: f *= target/rho (shrinks when rho > target, grows
        # toward 1 when below), clamped so growth is gradual.
        ratio = self.target / max(occupancy, 1e-6)
        fraction = self.accept_fraction * min(ratio, self.max_growth)
        if queue_fill > self.queue_high:
            # Receive queue building: occupancy alone lags this.
            fraction = min(fraction,
                           self.accept_fraction * self.queue_backoff)
        self.accept_fraction = min(1.0, max(self.min_accept, fraction))

    # -- admission -----------------------------------------------------
    def admit(self, now: float, source) -> bool:
        fraction = self.accept_fraction
        if fraction >= 1.0:
            return True
        self._tokens += fraction
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    # -- observability -------------------------------------------------
    def gauge_probes(self) -> Dict[str, Callable[[], float]]:
        return {
            "accept_fraction": lambda: self.accept_fraction,
            "occupancy": lambda: (self.signal.occupancy
                                  if self.signal is not None else 0.0),
            "queue_fill": lambda: (self.signal.queue_fill
                                   if self.signal is not None else 0.0),
        }
