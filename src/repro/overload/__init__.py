"""Overload control: admission policies for load past saturation.

The subsystem has three pieces:

- the :class:`~repro.overload.controller.OverloadController` interface
  the proxy core consults per arriving INVITE (plus the shared
  :class:`~repro.overload.controller.OccupancySignal` probe);
- :class:`~repro.overload.occupancy.LocalOccupancyController` — the
  classic occupancy-triggered 503 shedder;
- :class:`~repro.overload.window.WindowController` — per-upstream
  feedback windows à la Shen & Schulzrinne.

``build_controller`` maps a :class:`~repro.proxy.config.ProxyConfig`
name to an instance (``"none"`` → ``None``: the collapse baseline, with
zero per-message overhead).
"""

from typing import Dict, Optional

from repro.overload.controller import (
    DEFAULT_CONTROL_INTERVAL_US,
    OccupancySignal,
    OverloadController,
    PeriodicController,
)
from repro.overload.occupancy import LocalOccupancyController
from repro.overload.window import WindowController

CONTROLLERS = {
    "local-occupancy": LocalOccupancyController,
    "window": WindowController,
}

VALID_CONTROLLERS = ("none",) + tuple(sorted(CONTROLLERS))


def build_controller(name: str, params: Optional[Dict] = None
                     ) -> Optional[OverloadController]:
    """Instantiate the named controller (``"none"`` → ``None``)."""
    if name == "none":
        return None
    try:
        cls = CONTROLLERS[name]
    except KeyError:
        raise ValueError(f"unknown overload controller {name!r}; "
                         f"expected one of {VALID_CONTROLLERS}") from None
    return cls(params)


__all__ = [
    "OverloadController",
    "PeriodicController",
    "OccupancySignal",
    "LocalOccupancyController",
    "WindowController",
    "build_controller",
    "CONTROLLERS",
    "VALID_CONTROLLERS",
    "DEFAULT_CONTROL_INTERVAL_US",
]
