"""The paper's published numbers (ops/s).

Values are reconstructed from the bar labels embedded in the figure text
of the available copy; the series assignment is inferred, and where it is
ambiguous the prose ratios are authoritative (see DESIGN.md §4).  They
serve as *shape* targets: who wins, by what factor, where the crossovers
are — not absolute-value targets.
"""

CLIENT_COUNTS = (100, 500, 1000)

#: series names in presentation order (as in the figures' legends)
SERIES = ("tcp-50", "tcp-500", "tcp-persistent", "udp")

PAPER_FIGURES = {
    # Fig. 3: baseline OpenSER (no fd cache, scan-based idle management)
    "fig3": {
        "tcp-50": {100: 6794, 500: 5853, 1000: 4651},
        "tcp-500": {100: 12359, 500: 9500, 1000: 7472},
        "tcp-persistent": {100: 14635, 500: 12630, 1000: 9791},
        "udp": {100: 33695, 500: 33350, 1000: 28395},
    },
    # Fig. 4: file-descriptor cache
    "fig4": {
        "tcp-50": {100: 13232, 500: 11703, 1000: 10113},
        "tcp-500": {100: 23032, 500: 22376, 1000: 22502},
        "tcp-persistent": {100: 23696, 500: 23400, 1000: 22238},
        "udp": {100: 33695, 500: 33350, 1000: 28395},
    },
    # Fig. 5: fd cache + priority-queue idle management
    "fig5": {
        "tcp-50": {100: 20529, 500: 18986, 1000: 16661},
        "tcp-500": {100: 22356, 500: 21230, 1000: 21237},
        "tcp-persistent": {100: 22953, 500: 22574, 1000: 22082},
        "udp": {100: 33695, 500: 33350, 1000: 28395},
    },
}

#: prose claims used as assertions in the benchmark harness
PROSE_CLAIMS = {
    # §5.1: "With 100 clients, the UDP throughput is twice that of TCP
    # under the persistent connection workload."
    "fig3_persistent_gap_100": 2.0,
    # §5.1: "At 1000 clients, there is more than three-fold difference."
    "fig3_persistent_gap_1000": 3.0,
    # §5.1: 50 ops/conn — "about 4 to 7 times".
    "fig3_tcp50_gap_range": (4.0, 7.0),
    # §5.2: fd cache puts persistent TCP "within 66-78% of the UDP
    # throughput".
    "fig4_persistent_ratio": (0.66, 0.78),
    # §5.2: IPC function time drops from 12.0% to 4.6%.
    "ipc_share_baseline": 0.12,
    "ipc_share_cached": 0.046,
    # §5.3: priority queue puts 50 ops/conn "within 50-72% of the UDP
    # performance".
    "fig5_tcp50_ratio": (0.50, 0.72),
    # §4.3: supervisor priority elevation: "40-100% increases".
    "supervisor_priority_gain": (1.40, 2.00),
    # Conclusion: overall TCP goes from 13-51% to 50-78% of UDP.
    "overall_before": (0.13, 0.51),
    "overall_after": (0.50, 0.78),
}
