"""The faults figure: goodput before, during and after injected faults.

Each cell drives open-loop Poisson load at ``load_factor ×`` the
series' measured closed-loop capacity (same calibration as the overload
figure), injects a :class:`~repro.faults.FaultPlan` a fixed offset into
the measurement window, and splits the sampled ``client_goodput_cps``
series into three windows:

- **pre**    — ``[t0, t0 + fault_at_us)``: the healthy baseline;
- **during** — ``[fault_at_us, fault_at_us + settle_us)``: the damage
  plus detection/recovery transient;
- **post**   — ``[fault_at_us + settle_us, end]``: where a resilient
  server is back near baseline.

``recovery_ratio = post / pre`` is the figure's headline number: with
the watchdog a worker-crash run recovers to ≥ 0.9, without it the
crashed worker's share of the round-robin assignment (and, with
blocking sends, eventually the whole supervisor) stays dark.

Fault cells pin ``scale_windows=False``: the pre/during/post arithmetic
needs the fault offset and the window edges at fixed simulated times,
and detection timestamps stay seed-reproducible.
"""

from typing import Dict, Optional, Sequence

from repro.analysis.experiments import ExperimentSpec
from repro.analysis.overload import OVERLOAD_T1_US, capacity_spec
from repro.faults import FaultPlan, WorkerCrash
from repro.obs.metrics import series_window_mean

DEFAULT_SERIES = ("tcp-persistent",)
#: offered load as a fraction of closed-loop capacity — below the edge,
#: so goodput changes isolate the *fault*, not overload
DEFAULT_LOAD_FACTOR = 0.7

DEFAULT_WARMUP_US = 300_000.0
DEFAULT_MEASURE_US = 900_000.0
#: fault offset into the measurement window
DEFAULT_FAULT_AT_US = 300_000.0
#: transient allowance between "fault hits" and "recovery judged"
DEFAULT_SETTLE_US = 200_000.0

#: metric sampling interval for the goodput series
SAMPLE_US = 10_000.0


def default_crash_plan(fault_at_us: float = DEFAULT_FAULT_AT_US,
                       worker: int = 0) -> FaultPlan:
    """The figure's canonical fault: one worker dies mid-measurement."""
    return FaultPlan([WorkerCrash(start_us=fault_at_us, worker=worker)])


def faults_spec(series: str, clients: int, offered_cps: float,
                plan: FaultPlan, watchdog: bool, seed: int = 1,
                workers: Optional[int] = None,
                warmup_us: float = DEFAULT_WARMUP_US,
                measure_us: float = DEFAULT_MEASURE_US) -> ExperimentSpec:
    """One open-loop fault-injection cell."""
    return ExperimentSpec(series=series, clients=clients, seed=seed,
                          workers=workers, warmup_us=warmup_us,
                          measure_us=measure_us,
                          sip_t1_us=OVERLOAD_T1_US,
                          offered_cps=offered_cps,
                          sample_us=SAMPLE_US,
                          scale_windows=False,
                          fault_plan=plan.to_dict(),
                          detect_deadlocks=True,
                          watchdog=watchdog)


def _cell_summary(result, fault_at_us: float, settle_us: float) -> Dict:
    """Windowed goodput + fault record for one cell (JSON-ready)."""
    t0, t_end = result.metrics["window_us"]
    pre = series_window_mean(result.metrics, "client_goodput_cps",
                             from_us=t0, to_us=t0 + fault_at_us)
    during = series_window_mean(result.metrics, "client_goodput_cps",
                                from_us=t0 + fault_at_us,
                                to_us=t0 + fault_at_us + settle_us)
    post = series_window_mean(result.metrics, "client_goodput_cps",
                              from_us=t0 + fault_at_us + settle_us,
                              to_us=t_end)
    faults = result.faults or {}
    return {
        "offered_cps": result.offered_cps,
        "goodput_cps": result.goodput_cps,
        "pre_goodput_cps": pre,
        "during_goodput_cps": during,
        "post_goodput_cps": post,
        "recovery_ratio": post / pre if pre > 0 else 0.0,
        "calls_completed": result.calls_completed,
        "calls_failed": result.calls_failed,
        "injected": faults.get("injected", []),
        "deadlocks": faults.get("deadlocks", []),
        "restarts": faults.get("restarts", []),
        "workers_restarted": result.proxy_stats.get("workers_restarted", 0),
        "conns_redispatched": result.proxy_stats.get(
            "conns_redispatched", 0),
    }


def run_faults_figure(series: Sequence[str] = DEFAULT_SERIES,
                      clients: int = 100, seed: int = 1,
                      workers: Optional[int] = None,
                      load_factor: float = DEFAULT_LOAD_FACTOR,
                      fault_at_us: float = DEFAULT_FAULT_AT_US,
                      settle_us: float = DEFAULT_SETTLE_US,
                      plan: Optional[FaultPlan] = None,
                      jobs: int = 1, cache=None,
                      progress=None) -> Dict:
    """Run the fault-resilience grid; returns JSON-ready figure data.

    Phase 1 calibrates closed-loop capacity per series (cells shared
    with fig-overload, so they cache across figures); phase 2 runs each
    series' fault plan with the watchdog off and on.
    """
    from repro.analysis.runner import run_cells  # avoid an import cycle

    plan = plan or default_crash_plan(fault_at_us)
    cap_specs = [capacity_spec(name, clients=clients, seed=seed,
                               workers=workers) for name in series]
    cap_outcomes = run_cells(cap_specs, jobs=jobs, cache=cache,
                             progress=progress)
    capacity = {}
    for name, outcome in zip(series, cap_outcomes):
        # Two measured operations (INVITE + BYE) complete per call.
        capacity[name] = outcome.result.throughput_ops_s / 2.0

    specs, index = [], []
    for name in series:
        for watchdog in (False, True):
            specs.append(faults_spec(
                name, clients=clients,
                offered_cps=load_factor * capacity[name],
                plan=plan, watchdog=watchdog, seed=seed, workers=workers))
            index.append((name, watchdog))
    outcomes = run_cells(specs, jobs=jobs, cache=cache, progress=progress)

    grid: Dict[str, Dict[str, Dict]] = {name: {} for name in series}
    for (name, watchdog), outcome in zip(index, outcomes):
        key = "watchdog-on" if watchdog else "watchdog-off"
        grid[name][key] = _cell_summary(outcome.result, fault_at_us,
                                        settle_us)
    return {
        "t1_us": OVERLOAD_T1_US,
        "clients": clients,
        "seed": seed,
        "load_factor": load_factor,
        "fault_at_us": fault_at_us,
        "settle_us": settle_us,
        "plan": plan.to_dict(),
        "capacity_cps": capacity,
        "grid": grid,
    }


def render_faults_figure(data: Dict) -> str:
    """Text rendering of :func:`run_faults_figure` output."""
    lines = []
    kinds = [event["kind"] for event in data["plan"]["events"]]
    lines.append(f"fault plan: {', '.join(kinds)} at "
                 f"+{data['fault_at_us'] / 1e3:.0f}ms into the window "
                 f"(settle {data['settle_us'] / 1e3:.0f}ms)")
    lines.append("")
    for name, cells in data["grid"].items():
        lines.append(f"== {name}  (offered "
                     f"{data['load_factor']:.0%} of "
                     f"{data['capacity_cps'][name]:.0f} calls/s) ==")
        lines.append(f"{'':>14}{'pre':>10}{'during':>10}{'post':>10}"
                     f"{'recovery':>10}{'restarts':>10}{'deadlocks':>10}")
        for key in ("watchdog-off", "watchdog-on"):
            cell = cells.get(key)
            if cell is None:
                continue
            lines.append(
                f"{key:>14}"
                f"{cell['pre_goodput_cps']:>10.0f}"
                f"{cell['during_goodput_cps']:>10.0f}"
                f"{cell['post_goodput_cps']:>10.0f}"
                f"{cell['recovery_ratio']:>10.2f}"
                f"{len(cell['restarts']):>10}"
                f"{len(cell['deadlocks']):>10}")
        lines.append("")
    return "\n".join(lines)
