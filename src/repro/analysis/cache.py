"""Persistent on-disk cache for experiment-cell results.

Simulated cells are deterministic: the same :class:`ExperimentSpec` (plus
the same ``REPRO_SCALE``) always produces the same
:class:`~repro.clients.workload.BenchmarkResult`.  That makes results
safe to memoize *across* processes and across benchmark/test runs, which
turns the second run of any figure grid into a sub-second disk read.

Layout: one JSON file per cell under ``benchmarks/results/.cache/``
(override with ``REPRO_CACHE_DIR``), named by a SHA-256 of the canonical
spec payload.  The payload embeds:

- every field of the spec (including ``config_overrides`` and a
  serialized cost model, when one is set);
- the effective ``REPRO_SCALE`` and ``TIME_COMPRESSION`` values, since
  both change the numbers a cell produces;
- ``SCHEMA_VERSION``, bumped whenever the simulator's behaviour changes
  in a result-affecting way — bumping it invalidates every cached cell
  at once.

Specs whose payload cannot be canonicalized to JSON (e.g. an exotic
custom cost object) are simply not cached.  Clearing the cache is always
safe: delete the directory or call :meth:`ResultCache.clear`.
"""

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Optional

#: bump when simulator changes invalidate previously computed results
#: (v2: results carry latency p99.9/mean keys and sampled metric series;
#: v3: overload subsystem — goodput/rejection fields, Timer E in
#: Proceeding, controller hooks in the proxy core;
#: v4: fault subsystem — fabric egress/ordering fixes, IPC
#: blocked-marker hygiene, fault_plan/watchdog spec fields;
#: v5: causal-tracing subsystem — attribution result field, causal spec
#: field, datagram trace slots)
SCHEMA_VERSION = 5

#: default location, relative to the repository root (this file lives at
#: ``<root>/src/repro/analysis/cache.py``)
DEFAULT_CACHE_DIR = (pathlib.Path(__file__).resolve().parents[3]
                     / "benchmarks" / "results" / ".cache")


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    return pathlib.Path(env) if env else DEFAULT_CACHE_DIR


def spec_payload(spec) -> Optional[dict]:
    """Canonical, JSON-ready description of everything a cell depends on.

    Returns None when the spec is not serializable (→ uncacheable).
    """
    from repro.analysis.experiments import TIME_COMPRESSION, _scale

    if getattr(spec, "trace", False) or getattr(spec, "causal", False):
        # Traced/causal runs exist for their live tracer, which a cached
        # (or pickled) result cannot carry — never serve them from disk.
        return None
    payload = {"schema": SCHEMA_VERSION,
               "scale": _scale(),
               "time_compression": TIME_COMPRESSION}
    for field in dataclasses.fields(spec):
        value = getattr(spec, field.name)
        if field.name == "costs" and value is not None:
            if dataclasses.is_dataclass(value):
                value = dataclasses.asdict(value)
            else:
                return None  # unknown cost object: don't risk stale hits
        payload[field.name] = value
    try:
        json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError):
        return None
    return payload


def spec_key(spec) -> Optional[str]:
    """Stable hash key for a spec, or None when uncacheable."""
    payload = spec_payload(spec)
    if payload is None:
        return None
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Directory of ``<spec-hash>.json`` files holding cell results.

    Results are stored and returned as plain dicts (the
    ``dataclasses.asdict`` form of a ``BenchmarkResult``); the runner
    reconstructs the dataclass so cached and fresh results are
    indistinguishable.
    """

    def __init__(self, directory=None) -> None:
        self.directory = pathlib.Path(directory) if directory is not None \
            else default_cache_dir()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def get(self, key: Optional[str]) -> Optional[dict]:
        """The cached result dict for ``key``, or None on a miss."""
        if key is None:
            return None
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None  # missing or corrupt: treat as a miss
        return entry.get("result")

    def put(self, key: Optional[str], spec, result_dict: dict) -> None:
        """Store one result (atomic write; no-op for uncacheable specs)."""
        if key is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"spec": spec_payload(spec), "result": result_dict}
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cached cell; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for __ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return f"<ResultCache {self.directory} entries={len(self)}>"
