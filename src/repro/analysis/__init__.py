"""Experiment drivers and result rendering.

:mod:`~repro.analysis.experiments` runs the paper's cells;
:mod:`~repro.analysis.runner` fans independent cells across worker
processes; :mod:`~repro.analysis.cache` persists deterministic results
on disk; :mod:`~repro.analysis.paper_data` holds the published numbers;
:mod:`~repro.analysis.tables` renders measured-vs-paper tables for every
figure.
"""

from repro.analysis.experiments import (
    ExperimentSpec,
    figure_specs,
    run_cell,
    run_figure,
    TCP_WORKERS,
    UDP_WORKERS,
)
from repro.analysis.attribution import (
    attr_spec,
    render_attr_figure,
    run_attr_figure,
)
from repro.analysis.cache import ResultCache, spec_key
from repro.analysis.overload import (
    OVERLOAD_T1_US,
    capacity_spec,
    overload_spec,
    render_overload_figure,
    run_overload_figure,
)
from repro.analysis.runner import CellOutcome, default_jobs, run_cells
from repro.analysis.paper_data import PAPER_FIGURES, SERIES, CLIENT_COUNTS
from repro.analysis.tables import render_figure, render_comparison

__all__ = [
    "ExperimentSpec",
    "figure_specs",
    "run_cell",
    "run_figure",
    "run_cells",
    "CellOutcome",
    "ResultCache",
    "spec_key",
    "default_jobs",
    "UDP_WORKERS",
    "TCP_WORKERS",
    "PAPER_FIGURES",
    "SERIES",
    "CLIENT_COUNTS",
    "render_figure",
    "render_comparison",
    "OVERLOAD_T1_US",
    "capacity_spec",
    "overload_spec",
    "run_overload_figure",
    "render_overload_figure",
    "attr_spec",
    "run_attr_figure",
    "render_attr_figure",
]
