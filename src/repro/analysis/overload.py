"""The overload figure: goodput and 503-rate vs offered load.

The paper's closed-loop benchmark stops at saturation; this figure
drives *open-loop* Poisson arrivals from 0.5× to 3× measured capacity
and shows what the paper's architectures do past the edge:

- with ``controller="none"`` over UDP, goodput collapses — queueing
  delay crosses T1, clients retransmit (timer A/E), and the server
  spends its CPU absorbing duplicates of calls it will never finish;
- with a controller, excess INVITEs are shed with a cheap 503 and
  goodput holds near capacity (the shed calls fail *fast* instead of
  failing slow while poisoning the admitted ones);
- over TCP there is no retransmission amplification, but the window
  controller additionally keeps the supervisor/IPC path from drowning.

**Capacity calibration.**  Each series first runs one *closed-loop*
cell (same client count, same compressed timers); its throughput —
which self-limits at saturation — defines ``capacity_cps`` (2 measured
operations, INVITE + BYE, per call).  Offered rates are then
``factor × capacity_cps``, so the x-axis is in capacity multiples and
the figure is robust to cost-model recalibration.

**Time compression.**  Real SIP T1 is 500 ms; waiting seconds of
simulated time for retransmission dynamics is wasteful, so overload
cells compress T1 to :data:`OVERLOAD_T1_US` (T2/T4 follow at the RFC's
8×/10× ratios, on the proxy and the phones alike).  Queueing delays
scale with per-message service time, not with T1, so compression makes
the collapse *harder* to reproduce, never easier — an uncompressed run
only collapses more deeply.

Everything runs through :func:`repro.analysis.runner.run_cells`, so
cells cache on disk and fan out across processes like any figure grid.
"""

from typing import Dict, Optional, Sequence

from repro.analysis.experiments import ExperimentSpec

#: compressed SIP T1 for overload cells (real: 500 ms)
OVERLOAD_T1_US = 20_000.0

#: offered load as multiples of measured closed-loop capacity
DEFAULT_LOAD_FACTORS = (0.5, 1.0, 1.5, 2.0, 3.0)

DEFAULT_SERIES = ("udp", "tcp-persistent")
DEFAULT_CONTROLLERS = ("none", "local-occupancy")

#: overload cells need no connection-churn warmup, just registration
#: plus a few control intervals; the measure window spans dozens of
#: retransmission intervals (64×T1 = 1.28 s is the give-up horizon)
DEFAULT_WARMUP_US = 300_000.0
DEFAULT_MEASURE_US = 600_000.0


def capacity_spec(series: str, clients: int, seed: int = 1,
                  workers: Optional[int] = None,
                  warmup_us: float = DEFAULT_WARMUP_US,
                  measure_us: float = DEFAULT_MEASURE_US,
                  scale_windows: bool = True) -> ExperimentSpec:
    """The closed-loop calibration cell for one overload series."""
    return ExperimentSpec(series=series, clients=clients, seed=seed,
                          workers=workers, warmup_us=warmup_us,
                          measure_us=measure_us,
                          sip_t1_us=OVERLOAD_T1_US,
                          scale_windows=scale_windows)


def overload_spec(series: str, clients: int, offered_cps: float,
                  controller: str, seed: int = 1,
                  workers: Optional[int] = None,
                  warmup_us: float = DEFAULT_WARMUP_US,
                  measure_us: float = DEFAULT_MEASURE_US,
                  scale_windows: bool = True,
                  sample_us: Optional[float] = None,
                  controller_params: Optional[Dict] = None) -> ExperimentSpec:
    """One open-loop cell of the overload grid."""
    return ExperimentSpec(series=series, clients=clients, seed=seed,
                          workers=workers, warmup_us=warmup_us,
                          measure_us=measure_us,
                          sip_t1_us=OVERLOAD_T1_US,
                          offered_cps=offered_cps,
                          controller=controller,
                          controller_params=dict(controller_params or {}),
                          sample_us=sample_us,
                          scale_windows=scale_windows)


def _cell_summary(factor: float, result) -> Dict:
    """The JSON-ready per-cell record carried in the figure data."""
    return {
        "factor": factor,
        "offered_cps": result.offered_cps,
        "goodput_cps": result.goodput_cps,
        "calls_attempted": result.calls_attempted,
        "calls_completed": result.calls_completed,
        "calls_failed": result.calls_failed,
        "rejections_503": result.rejections_503,
        "rejection_rate_503_s": (result.rejections_503
                                 / (result.duration_us / 1e6)
                                 if result.duration_us > 0 else 0.0),
        "client_retransmissions": result.client_retransmissions,
        "retransmissions_absorbed": result.proxy_stats.get(
            "retransmissions_absorbed", 0),
        "cpu_utilization": result.cpu_utilization,
    }


def run_overload_figure(series: Sequence[str] = DEFAULT_SERIES,
                        controllers: Sequence[str] = DEFAULT_CONTROLLERS,
                        load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
                        clients: int = 100, seed: int = 1,
                        workers: Optional[int] = None,
                        warmup_us: float = DEFAULT_WARMUP_US,
                        measure_us: float = DEFAULT_MEASURE_US,
                        scale_windows: bool = True,
                        sample_us: Optional[float] = None,
                        jobs: int = 1, cache=None,
                        progress=None) -> Dict:
    """Run the full overload grid; returns the JSON-ready figure data.

    Phase 1 measures closed-loop capacity per series; phase 2 fans out
    ``series × controllers × load_factors`` open-loop cells.  Both
    phases go through the cached parallel runner.
    """
    from repro.analysis.runner import run_cells  # avoid an import cycle

    kw = dict(clients=clients, seed=seed, workers=workers,
              warmup_us=warmup_us, measure_us=measure_us,
              scale_windows=scale_windows)
    cap_specs = [capacity_spec(name, **kw) for name in series]
    cap_outcomes = run_cells(cap_specs, jobs=jobs, cache=cache,
                             progress=progress)
    capacity = {}
    for name, outcome in zip(series, cap_outcomes):
        # Two measured operations (INVITE + BYE) complete per call.
        capacity[name] = outcome.result.throughput_ops_s / 2.0

    specs, index = [], []
    for name in series:
        for controller in controllers:
            for factor in load_factors:
                specs.append(overload_spec(
                    name, offered_cps=factor * capacity[name],
                    controller=controller, sample_us=sample_us, **kw))
                index.append((name, controller, factor))
    outcomes = run_cells(specs, jobs=jobs, cache=cache, progress=progress)

    grid: Dict[str, Dict[str, list]] = {
        name: {controller: [] for controller in controllers}
        for name in series}
    for (name, controller, factor), outcome in zip(index, outcomes):
        grid[name][controller].append(_cell_summary(factor, outcome.result))
    return {
        "t1_us": OVERLOAD_T1_US,
        "clients": clients,
        "seed": seed,
        "load_factors": list(load_factors),
        "capacity_cps": capacity,
        "grid": grid,
    }


def render_overload_figure(data: Dict) -> str:
    """Text rendering of :func:`run_overload_figure` output."""
    lines = []
    factors = data["load_factors"]
    for name, by_controller in data["grid"].items():
        controllers = list(by_controller)
        lines.append(f"== {name}  "
                     f"(closed-loop capacity {data['capacity_cps'][name]:.0f}"
                     " calls/s) ==")
        header = f"{'offered':>11}"
        for controller in controllers:
            header += f"  {controller + ' goodput':>26}{'503/s':>8}"
        lines.append(header)
        for k, __ in enumerate(factors):
            cells = [by_controller[c][k] for c in controllers]
            row = f"{cells[0]['offered_cps']:7.0f} cps"
            for cell in cells:
                goodput = cell["goodput_cps"]
                share = (goodput / cell["offered_cps"]
                         if cell["offered_cps"] else 0.0)
                row += (f"  {goodput:12.0f} cps ({share:4.0%})"
                        f"{cell['rejection_rate_503_s']:8.0f}")
            lines.append(row)
        lines.append("")
    return "\n".join(lines)
