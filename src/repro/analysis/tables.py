"""Rendering measured grids next to the paper's figures."""

from typing import Dict, Optional

from repro.analysis.paper_data import CLIENT_COUNTS, PAPER_FIGURES, SERIES

_LABELS = {
    "tcp-50": "TCP 50 ops/conn",
    "tcp-500": "TCP 500 ops/conn",
    "tcp-persistent": "TCP persistent",
    "udp": "UDP",
    "sctp": "SCTP",
    "tcp-threaded": "TCP threaded",
    "tcp-threaded-50": "TCP threaded 50/conn",
}


def _fmt(value: Optional[float]) -> str:
    return f"{value:>8.0f}" if value is not None else f"{'-':>8}"


def render_figure(title: str, throughputs: Dict[str, Dict[int, float]],
                  clients=CLIENT_COUNTS) -> str:
    """One grid as text: rows are series, columns are client counts."""
    width = max(len(_LABELS.get(name, name)) for name in throughputs)
    header = " " * width + "".join(f"{c:>9}" for c in clients)
    lines = [f"== {title} (ops/s) ==", header]
    for name, row in throughputs.items():
        label = _LABELS.get(name, name)
        cells = "".join(" " + _fmt(row.get(c)) for c in clients)
        lines.append(f"{label:<{width}}{cells}")
    return "\n".join(lines)


def render_comparison(figure_key: str,
                      measured: Dict[str, Dict[int, float]],
                      clients=CLIENT_COUNTS) -> str:
    """Measured vs paper, with the TCP/UDP ratio that carries the paper's
    claims."""
    paper = PAPER_FIGURES[figure_key]
    lines = [f"== {figure_key}: measured vs paper ==",
             f"{'series':<18}{'clients':>8}{'measured':>10}{'paper':>10}"
             f"{'meas/udp':>10}{'paper/udp':>10}"]
    for name in SERIES:
        if name not in measured:
            continue
        for count in clients:
            got = measured[name].get(count)
            want = paper[name].get(count)
            udp_got = measured.get("udp", {}).get(count)
            udp_want = paper["udp"].get(count)
            ratio_got = (got / udp_got) if got and udp_got else None
            ratio_want = (want / udp_want) if want and udp_want else None
            row = (f"{_LABELS.get(name, name):<18}{count:>8}"
                   f"{_fmt(got):>10}{_fmt(want):>10}")
            row += f"{ratio_got:>10.2f}" if ratio_got is not None \
                else f"{'-':>10}"
            row += f"{ratio_want:>10.2f}" if ratio_want is not None \
                else f"{'-':>10}"
            lines.append(row)
    return "\n".join(lines)


def throughput_grid(results) -> Dict[str, Dict[int, float]]:
    """Extract ops/s from a run_figure() result grid."""
    return {name: {count: res.throughput_ops_s
                   for count, res in row.items()}
            for name, row in results.items()}
