"""Running the paper's experimental cells.

One *cell* is a (series, client-count) pair from Figs. 3–5; one *figure*
is the 4×3 grid.  Worker counts follow §4.3 (24 for UDP, 32 for TCP);
the supervisor runs at nice −20 and the idle timeout is 10 s unless an
experiment overrides them.

Simulated windows default to a fraction of the paper's multi-minute runs
(throughput is stationary under saturation); ``REPRO_SCALE`` in the
environment scales them for quicker smoke runs.

**Time compression.**  The connection-churn effects (§5.2/§5.3) depend on
the *population* of abandoned connections relative to the live ones; in
steady state ``abandoned ≈ (throughput / ops_per_conn) × 2×idle_timeout``.
The paper reaches that steady state over minutes with a 10 s timeout;
simulating minutes of a saturated server is wasteful, so the experiment
driver compresses the timeout by ``TIME_COMPRESSION`` (10×: 10 s → 1 s)
**and** divides ``ops_per_conn`` by the same factor, which preserves the
abandoned-to-live ratio exactly.  The cost is that connection *setup*
events run 10× more frequently than the paper's (a few percent of CPU,
in the same direction for every TCP series).  Experiments about the
timeout itself (Tab. S2) override this.
"""

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.clients import BenchmarkManager, BenchmarkResult, Workload
from repro.proxy import CostModel, ProxyConfig, build_proxy
from repro.testbed import Testbed

UDP_WORKERS = 24
TCP_WORKERS = 32

#: series name -> (transport, ops_per_conn)
SERIES_DEF = {
    "udp": ("udp", None),
    "sctp": ("sctp", None),
    "tcp-persistent": ("tcp", None),
    "tcp-500": ("tcp", 500),
    "tcp-50": ("tcp", 50),
    "tcp-threaded": ("tcp-threaded", None),
    "tcp-threaded-50": ("tcp-threaded", 50),
}


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


#: simulated-time compression for connection-churn dynamics
TIME_COMPRESSION = 5.0
#: compressed idle timeout used by default (paper: 10 s)
SCALED_IDLE_TIMEOUT_US = 10_000_000.0 / TIME_COMPRESSION


@dataclass
class ExperimentSpec:
    """Everything needed to run one cell.

    ``warmup_us``/``measure_us`` of ``None`` pick per-series defaults:
    connection-churn series need a warmup beyond 2× the idle timeout so
    the abandoned-connection population reaches steady state.
    """

    series: str = "udp"
    clients: int = 100
    fd_cache: bool = False
    idle_strategy: str = "scan"
    supervisor_nice: int = -20
    idle_timeout_us: float = SCALED_IDLE_TIMEOUT_US
    workers: Optional[int] = None
    seed: int = 1
    warmup_us: Optional[float] = None
    measure_us: Optional[float] = None
    profile: bool = False
    #: sample time-series metrics every this many µs of simulated time
    #: (None = no sampling); implies profiling so CPU-share series exist
    sample_us: Optional[float] = None
    #: record spans into a live tracer (``result.tracer``); trace results
    #: cannot be cached or cross the parallel runner's process boundary
    trace: bool = False
    #: record causal per-message segments and attach latency attribution
    #: (``result.attribution`` + live ``result.causal``/``result.journeys``);
    #: like ``trace``, causal results are uncacheable and serial-only
    causal: bool = False
    costs: Optional[CostModel] = None
    stateful: bool = True
    server_fd_limit: int = 65536  # a tuned server (ulimit -n raised)
    #: bypass the compression-coupled reuse count (timeout experiments)
    ops_per_conn_override: Optional[int] = None
    # -- overload cells (fig-overload) ---------------------------------
    #: open-loop Poisson arrival rate, calls/s (None = closed loop)
    offered_cps: Optional[float] = None
    #: overload controller name (see :data:`repro.overload.VALID_CONTROLLERS`)
    controller: str = "none"
    controller_params: Dict = field(default_factory=dict)
    #: compressed SIP T1 for overload cells (None = the config default
    #: 500 ms).  T2/T4 follow at the RFC's 8×/10× ratios on both the
    #: proxy and the phones, so retransmission dynamics fit sub-second
    #: measurement windows.
    sip_t1_us: Optional[float] = None
    #: exempt this cell's windows from REPRO_SCALE (experiments whose
    #: effect needs a minimum absolute duration, like Tab. S2)
    scale_windows: bool = True
    config_overrides: Dict = field(default_factory=dict)
    # -- fault-injection cells (fig-faults) -----------------------------
    #: serialized :class:`repro.faults.FaultPlan` (``plan.to_dict()``;
    #: None = no injected faults).  Event times are relative to the
    #: start of the measurement window.
    fault_plan: Optional[Dict] = None
    #: run the wait-for-graph deadlock detector alongside the cell
    detect_deadlocks: bool = False
    #: run the supervisor watchdog (crash/hang/deadlock restarts)
    watchdog: bool = False

    def transport(self) -> str:
        return SERIES_DEF[self.series][0]

    def ops_per_conn(self) -> Optional[int]:
        """The paper's reuse knob, compressed with the idle timeout so the
        abandoned-to-live connection ratio matches the paper's regime."""
        nominal = SERIES_DEF[self.series][1]
        if nominal is None:
            return None
        if self.ops_per_conn_override is not None:
            return self.ops_per_conn_override
        # Experiments running with uncompressed (>= 10 s) timeouts keep
        # the paper's nominal reuse counts.
        compression = max(1.0, 10_000_000.0 / self.idle_timeout_us)
        return max(2, round(nominal / compression))

    def default_workers(self) -> int:
        return UDP_WORKERS if self.transport() in ("udp", "sctp") \
            else TCP_WORKERS

    def windows(self) -> tuple:
        """(warmup_us, measure_us) for this cell."""
        if self.warmup_us is not None and self.measure_us is not None:
            return self.warmup_us, self.measure_us
        if self.transport() in ("udp", "sctp"):
            defaults = (250_000.0, 500_000.0)
        elif self.ops_per_conn() is not None:
            # Churn: build the abandoned-connection population first.
            defaults = (2.1 * self.idle_timeout_us, 600_000.0)
        else:
            defaults = (600_000.0, 600_000.0)
        warmup = self.warmup_us if self.warmup_us is not None else defaults[0]
        measure = self.measure_us if self.measure_us is not None \
            else defaults[1]
        return warmup, measure


def run_cell(spec: ExperimentSpec) -> BenchmarkResult:
    """Run one cell; returns the client-measured result."""
    scale = _scale()
    # Sampling needs a profiler for the CPU-share series; the profiler
    # only aggregates charged bursts, so enabling it never perturbs the
    # simulation (sampled and unsampled cells produce identical numbers).
    bed = Testbed(seed=spec.seed,
                  profile=spec.profile or spec.sample_us is not None,
                  trace=spec.trace,
                  causal=spec.causal,
                  server_fd_limit=spec.server_fd_limit)
    overload_kw = {}
    if spec.sip_t1_us is not None:
        overload_kw["sip_t1_us"] = spec.sip_t1_us
        overload_kw["sip_t2_us"] = 8.0 * spec.sip_t1_us
        # The timer process must wake well inside T1 or proxy-side
        # retransmissions quantize to the tick.
        overload_kw["timer_tick_us"] = spec.sip_t1_us / 4.0
    config = ProxyConfig(
        transport=spec.transport(),
        workers=spec.workers or spec.default_workers(),
        fd_cache=spec.fd_cache,
        idle_strategy=spec.idle_strategy,
        supervisor_nice=spec.supervisor_nice,
        idle_timeout_us=spec.idle_timeout_us,
        stateful=spec.stateful,
        overload_controller=spec.controller,
        overload_params=dict(spec.controller_params),
        **overload_kw,
        **spec.config_overrides,
    )
    proxy = build_proxy(bed.server, config, spec.costs).start()
    warmup_us, measure_us = spec.windows()
    if spec.scale_windows:
        # REPRO_SCALE trades measurement precision for wall time; the
        # warmup is a correctness requirement (steady-state populations)
        # and is never scaled.
        measure_us *= scale
    workload = Workload(
        clients=spec.clients,
        ops_per_conn=spec.ops_per_conn(),
        warmup_us=warmup_us,
        measure_us=measure_us,
        mode="open" if spec.offered_cps is not None else "closed",
        offered_cps=spec.offered_cps or 0.0,
    )
    timers = None
    if spec.sip_t1_us is not None:
        from repro.sip.transaction import TransactionTimers
        timers = TransactionTimers(t1_us=spec.sip_t1_us,
                                   t2_us=8.0 * spec.sip_t1_us,
                                   t4_us=10.0 * spec.sip_t1_us)
    manager = BenchmarkManager(bed, proxy, workload, timers=timers)
    # -- fault machinery (all zero simulated cost; see repro.faults) ----
    detector = watchdog = injector = None
    if spec.detect_deadlocks:
        from repro.faults import DeadlockDetector
        detector = DeadlockDetector(bed.engine, tracer=bed.tracer)
        detector.watch_proxy(proxy)
        detector.start()
    if spec.watchdog:
        from repro.faults import Watchdog
        watchdog = Watchdog(proxy, detector=detector,
                            tracer=bed.tracer).start()
    if spec.fault_plan:
        from repro.faults import FaultInjector, FaultPlan
        injector = FaultInjector(bed, proxy,
                                 FaultPlan.from_dict(spec.fault_plan),
                                 tracer=bed.tracer)
        manager.on_measure_start.append(injector.arm)
    sampler = None
    if spec.sample_us is not None:
        from repro.obs import MetricSampler, register_standard_probes
        sampler = MetricSampler(bed.engine, interval_us=spec.sample_us,
                                profiler=bed.profiler)
        register_standard_probes(sampler, bed, proxy)
        # Client-measured completion rate, windowable around fault
        # events (manager.callers is filled in before traffic starts).
        sampler.add_rate("client_goodput_cps", lambda: sum(
            p.calls_completed for p in manager.callers))
        if detector is not None:
            for name, fn in detector.gauge_probes().items():
                sampler.add_gauge(name, fn)
        if watchdog is not None:
            for name, fn in watchdog.gauge_probes().items():
                sampler.add_gauge(name, fn)
        sampler.start()
    result = manager.run()
    for component in (detector, watchdog):
        if component is not None:
            component.stop()
    if detector is not None or watchdog is not None or injector is not None:
        result.faults = {
            "plan": spec.fault_plan or {},
            "injected": list(injector.log) if injector else [],
            "deadlocks": list(detector.detections) if detector else [],
            "restarts": list(watchdog.restarts) if watchdog else [],
        }
    if sampler is not None:
        sampler.stop()
        metrics = sampler.to_dict()
        metrics["window_us"] = list(manager.measured_window)
        result.metrics = metrics
    result.proxy = proxy  # expose server-side state to the harness
    result.testbed = bed
    result.tracer = bed.tracer  # live; None unless spec.trace
    result.causal = bed.causal  # live; None unless spec.causal
    result.journeys = []
    if bed.causal is not None:
        from repro.obs import aggregate_journeys, build_journeys
        journeys = build_journeys(bed.causal,
                                  window=manager.measured_window)
        result.journeys = journeys
        result.attribution = aggregate_journeys(journeys)
    return result


def figure_specs(fd_cache: bool, idle_strategy: str,
                 series=("tcp-50", "tcp-500", "tcp-persistent", "udp"),
                 clients=(100, 500, 1000), seed: int = 1,
                 **spec_overrides):
    """The flat list of specs making up one figure grid (row-major)."""
    return [ExperimentSpec(series=name, clients=count, fd_cache=fd_cache,
                           idle_strategy=idle_strategy, seed=seed,
                           **spec_overrides)
            for name in series for count in clients]


def run_figure(fd_cache: bool, idle_strategy: str,
               series=("tcp-50", "tcp-500", "tcp-persistent", "udp"),
               clients=(100, 500, 1000), seed: int = 1,
               jobs: int = 1, cache=None,
               **spec_overrides) -> Dict[str, Dict[int, BenchmarkResult]]:
    """Run a full figure grid; returns results[series][clients].

    ``jobs`` > 1 fans the cells across worker processes and ``cache``
    (a :class:`~repro.analysis.cache.ResultCache`) skips already-computed
    cells; both go through :func:`repro.analysis.runner.run_cells`, so
    results are deterministic and identical to the serial path (they are
    the serializable form — no live ``proxy`` attached).
    """
    from repro.analysis.runner import run_cells  # avoid an import cycle

    specs = figure_specs(fd_cache, idle_strategy, series=series,
                         clients=clients, seed=seed, **spec_overrides)
    outcomes = run_cells(specs, jobs=jobs, cache=cache)
    grid: Dict[str, Dict[int, BenchmarkResult]] = {name: {} for name in series}
    for spec, outcome in zip(specs, outcomes):
        grid[spec.series][spec.clients] = outcome.result
    return grid
