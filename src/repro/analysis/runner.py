"""Parallel experiment-cell execution.

Every figure in the paper is a grid of *independent* (series, clients,
fixes) cells, so the experiment layer fans them out across worker
processes instead of running them serially in-process.  The runner is
the single execution path for benchmarks, the CLI and tests:

- deterministic: results come back in input order, and a cell computed
  in a worker process is bit-identical to one computed serially (cells
  are seeded simulations; no wall-clock state leaks into results);
- cached: pass a :class:`~repro.analysis.cache.ResultCache` and
  already-computed cells are served from disk without re-execution;
- deduplicating: identical specs inside one batch run once;
- graceful: ``jobs=1`` (the default) never touches ``multiprocessing``.

Results cross the process boundary (and the disk cache) as plain dicts,
so the live ``proxy``/``testbed``/``tracer`` objects a serial
:func:`~repro.analysis.experiments.run_cell` attaches are *not*
available on runner results — use the serializable
``proxy_totals``/``open_conns`` summaries instead.  Sampled metric
series *do* survive (``result.metrics`` is plain JSON), but span traces
and causal segments do not: specs with ``trace=True`` or ``causal=True``
are rejected here — run them through ``run_cell`` directly (the CLI's
``--trace`` and ``fig-attr`` paths do exactly that).
"""

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.analysis.cache import ResultCache, spec_key
from repro.analysis.experiments import ExperimentSpec, run_cell
from repro.clients.workload import BenchmarkResult


@dataclass
class CellOutcome:
    """One executed (or cache-served) cell."""

    spec: ExperimentSpec
    result: BenchmarkResult
    #: wall-clock seconds spent computing (0.0 when served from cache)
    elapsed_s: float
    #: True when the result came from the persistent cache
    cached: bool


def default_jobs() -> int:
    """Worker-count default: ``REPRO_JOBS`` env var, else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _execute(spec: ExperimentSpec) -> tuple:
    """Run one cell; must stay module-level (pickled into workers)."""
    start = time.perf_counter()
    result = run_cell(spec)
    # asdict() keeps only dataclass fields, dropping the live proxy and
    # testbed objects run_cell attaches (they cannot cross processes).
    return dataclasses.asdict(result), time.perf_counter() - start


def _pool(jobs: int):
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        ctx = multiprocessing.get_context()
    return ctx.Pool(processes=jobs)


def run_cells(specs: Iterable[ExperimentSpec],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[CellOutcome], None]] = None,
              ) -> List[CellOutcome]:
    """Run a batch of cells, fanning cache misses across ``jobs`` workers.

    Returns one :class:`CellOutcome` per input spec, in input order.
    ``jobs=None`` picks :func:`default_jobs`; ``jobs=1`` runs serially
    in-process.  ``progress`` (if given) is called once per computed cell
    as results arrive, in deterministic order.
    """
    specs = list(specs)
    for spec in specs:
        if getattr(spec, "trace", False) or getattr(spec, "causal", False):
            raise ValueError(
                "trace=True/causal=True cells need their live tracer, "
                "which cannot cross the runner's process/cache boundary; "
                "call repro.analysis.experiments.run_cell(spec) directly")
    if jobs is None:
        jobs = default_jobs()
    keys = [spec_key(spec) for spec in specs]
    outcomes: List[Optional[CellOutcome]] = [None] * len(specs)

    # -- serve cache hits ------------------------------------------------
    misses: List[int] = []
    for index, (spec, key) in enumerate(zip(specs, keys)):
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            outcomes[index] = CellOutcome(spec, BenchmarkResult(**hit),
                                          elapsed_s=0.0, cached=True)
        else:
            misses.append(index)

    # -- dedupe identical specs within the batch -------------------------
    leaders: List[int] = []      # first index computing each unique key
    followers = {}               # miss index -> leader position
    seen = {}                    # key -> leader position
    for index in misses:
        key = keys[index]
        if key is not None and key in seen:
            followers[index] = seen[key]
            continue
        if key is not None:
            seen[key] = len(leaders)
        leaders.append(index)

    # -- compute ---------------------------------------------------------
    computed: List[tuple] = []
    to_run = [specs[i] for i in leaders]
    if to_run:
        if jobs <= 1 or len(to_run) == 1:
            for spec in to_run:
                computed.append(_execute(spec))
        else:
            with _pool(min(jobs, len(to_run))) as pool:
                for item in pool.imap(_execute, to_run, chunksize=1):
                    computed.append(item)

    # -- fan results back out, in input order ----------------------------
    for position, index in enumerate(leaders):
        result_dict, elapsed = computed[position]
        if cache is not None:
            cache.put(keys[index], specs[index], result_dict)
        outcomes[index] = CellOutcome(specs[index],
                                      BenchmarkResult(**result_dict),
                                      elapsed_s=elapsed, cached=False)
    for index, position in followers.items():
        result_dict, elapsed = computed[position]
        outcomes[index] = CellOutcome(specs[index],
                                      BenchmarkResult(**result_dict),
                                      elapsed_s=elapsed, cached=False)

    if progress is not None:
        for outcome in outcomes:
            progress(outcome)
    return outcomes
