"""Figure A: causal latency attribution per transport and fix.

The paper explains its throughput gaps with hand-built oprofile tables
(§5.1–§5.3); this figure reproduces the explanation automatically.  One
cell runs with the :class:`~repro.obs.causal.CausalTracer` on, every
completed transaction's critical path is reconstructed
(:mod:`repro.obs.journey`) and aggregated
(:mod:`repro.obs.attribution`), and the result is the stacked
decomposition of end-to-end latency into {network, sockq, runq, lock,
ipc, cpu} — per transport, with and without the §5.2 fd cache.

The headline check mirrors the paper's Table 3: over TCP with
connection churn, the supervisor fd-passing IPC owns ≈12% of the
critical path; the per-worker fd cache collapses it below 5%.

Causal cells are **uncacheable and serial-only** — the live segment
buffer cannot cross the parallel runner's process boundary, so this
driver calls :func:`~repro.analysis.experiments.run_cell` directly.
The attribution itself never perturbs the simulation's *measured*
numbers (all hooks are zero-simulated-cost observers), but expect the
wall-clock cost of recording a few hundred thousand segments.
"""

from typing import Dict, Optional, Sequence

from repro.analysis.experiments import ExperimentSpec, run_cell
from repro.obs.attribution import ALL_COMPONENTS, attribution_table
from repro.obs.journey import journeys_to_jsonable

#: the series probed per transport — TCP uses the connection-churn
#: series (reuse=50), where foreign connections force fd-request IPC on
#: the critical path; UDP has no supervisor at all
ATTR_SERIES = {"tcp": "tcp-50", "udp": "udp"}

#: fix name -> fd_cache flag
FIXES = {"none": False, "fdcache": True}

#: paper Table 3: fd-passing IPC share of (CPU) time over TCP with
#: churn, before and after the per-worker fd cache
PAPER_IPC_SHARE = {"none": 0.120, "fdcache": 0.046}

#: calibrated so the churn cell sits at the paper's operating point —
#: saturated enough that fd-request IPC lands on ~the Table 3 share of
#: the critical path, not so deep into overload that socket-queue wait
#: swamps everything else
DEFAULT_CLIENTS = 150

#: journeys embedded verbatim in the JSON payload (the aggregate covers
#: all of them; the sample exists for schema checks and eyeballing)
JOURNEY_SAMPLE = 100


def attr_spec(transport: str, fix: str,
              clients: int = DEFAULT_CLIENTS,
              workers: Optional[int] = None, seed: int = 1,
              smoke: bool = False) -> ExperimentSpec:
    """One causal-traced cell for the attribution figure."""
    if transport not in ATTR_SERIES:
        raise ValueError(f"unknown transport {transport!r}; "
                         f"expected one of {sorted(ATTR_SERIES)}")
    if fix not in FIXES:
        raise ValueError(f"unknown fix {fix!r}; "
                         f"expected one of {sorted(FIXES)}")
    if smoke:
        # Short windows for CI: enough completed journeys to validate
        # the schema and the decomposition identity, not a calibrated
        # steady state.
        windows = {"warmup_us": 300_000.0, "measure_us": 200_000.0,
                   "scale_windows": False}
    else:
        # Keep the series' steady-state warmup but bound the measured
        # window so the segment ring buffer (newest-wins) still covers
        # every journey in it — a saturated cell emits ~1M segments per
        # simulated second against the 500k default capacity.
        windows = {"measure_us": 300_000.0}
    return ExperimentSpec(series=ATTR_SERIES[transport], clients=clients,
                          fd_cache=FIXES[fix], workers=workers, seed=seed,
                          causal=True, **windows)


def _cell_summary(result) -> Dict:
    """JSON-ready summary of one causal cell."""
    causal = result.causal
    return {
        "throughput_ops_s": result.throughput_ops_s,
        "setup_latency_us": result.setup_latency_us,
        "processing_latency_us": result.processing_latency_us,
        "attribution": result.attribution,
        "segments_recorded": causal.emitted,
        "segments_dropped": causal.dropped,
        "counters": dict(causal.counters),
        "journey_sample": journeys_to_jsonable(
            result.journeys[:JOURNEY_SAMPLE]),
    }


def run_attr_figure(transport: str = "tcp",
                    fixes: Sequence[str] = ("none", "fdcache"),
                    clients: int = DEFAULT_CLIENTS,
                    workers: Optional[int] = None, seed: int = 1,
                    smoke: bool = False,
                    progress=None, on_cell=None) -> Dict:
    """Run the attribution cells serially; returns JSON-ready data.

    ``on_cell(fix, result)`` is called with each cell's **live** result
    (the JSON payload cannot carry the segment buffer) — the CLI uses it
    for the ``--call-id`` waterfall and the journey Chrome-trace export.
    """
    grid: Dict[str, Dict] = {}
    for k, fix in enumerate(fixes):
        if progress is not None:
            progress(f"[{k + 1}/{len(fixes)}] {transport}/{fix} ...")
        spec = attr_spec(transport, fix, clients=clients, workers=workers,
                         seed=seed, smoke=smoke)
        result = run_cell(spec)
        grid[fix] = _cell_summary(result)
        if on_cell is not None:
            on_cell(fix, result)
    data = {
        "transport": transport,
        "series": ATTR_SERIES[transport],
        "clients": clients,
        "seed": seed,
        "smoke": smoke,
        "components": list(ALL_COMPONENTS),
        "grid": grid,
    }
    if transport == "tcp" and all(f in grid for f in ("none", "fdcache")):
        data["ipc_share"] = {
            fix: grid[fix]["attribution"].get("shares", {}).get("ipc", 0.0)
            for fix in ("none", "fdcache")}
        data["paper_ipc_share"] = dict(PAPER_IPC_SHARE)
    return data


def render_attr_figure(data: Dict) -> str:
    """Text rendering of :func:`run_attr_figure` output."""
    lines = [f"== latency attribution: {data['transport']} "
             f"(series {data['series']}, {data['clients']} clients) =="]
    for fix, cell in data["grid"].items():
        lines.append("")
        lines.append(attribution_table(
            cell["attribution"],
            label=(f"-- fix={fix}  "
                   f"({cell['throughput_ops_s']:.0f} ops/s, "
                   f"{cell['segments_recorded']} segments"
                   + (f", {cell['segments_dropped']} dropped"
                      if cell["segments_dropped"] else "")
                   + ") --")))
    if "ipc_share" in data:
        lines.append("")
        lines.append("-- critical-path IPC share vs paper Table 3 "
                     "(CPU-time shares) --")
        for fix in ("none", "fdcache"):
            lines.append(f"  {fix:>8}: measured "
                         f"{data['ipc_share'][fix] * 100:5.1f}%   "
                         f"paper {data['paper_ipc_share'][fix] * 100:4.1f}%")
    return "\n".join(lines)
