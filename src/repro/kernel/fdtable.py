"""Per-process file-descriptor tables.

OpenSER's TCP architecture revolves around descriptor plumbing: the
supervisor holds a descriptor for every connection, passes duplicates to
workers over IPC (SCM_RIGHTS), and workers close their duplicates after
use.  A :class:`FileDescription` is the refcounted open-file object; an fd
is an integer slot in a process's :class:`FdTable` referencing one.

The table enforces a configurable limit so descriptor exhaustion under
connection churn (§4.3) is observable.
"""

import heapq
from typing import Any, Dict, Optional


class BadFdError(OSError):
    """Operation on a closed or never-opened descriptor (EBADF)."""


class EmfileError(OSError):
    """Per-process descriptor limit reached (EMFILE)."""


class FileDescription:
    """A refcounted open file (socket, pipe end, ...).

    ``obj`` is the underlying kernel object; when the last descriptor
    referencing the description is closed, ``obj.on_last_close()`` is
    invoked if present (e.g. to start TCP teardown).
    """

    __slots__ = ("obj", "kind", "refs", "closed")

    def __init__(self, obj: Any, kind: str = "file") -> None:
        self.obj = obj
        self.kind = kind
        self.refs = 0
        self.closed = False

    def incref(self) -> None:
        if self.closed:
            raise BadFdError(f"description already fully closed: {self!r}")
        self.refs += 1

    def decref(self) -> None:
        if self.refs <= 0:
            raise BadFdError(f"refcount underflow: {self!r}")
        self.refs -= 1
        if self.refs == 0:
            self.closed = True
            hook = getattr(self.obj, "on_last_close", None)
            if hook is not None:
                hook()

    def __repr__(self) -> str:
        return f"<FileDescription {self.kind} refs={self.refs}>"


class FdTable:
    """Integer descriptor slots for one process."""

    def __init__(self, limit: int = 1024, owner: str = "?") -> None:
        self.limit = limit
        self.owner = owner
        self._slots: Dict[int, FileDescription] = {}
        self._free: list = []  # released fds below the high-water mark
        self._next = 0

    def install(self, desc: FileDescription) -> int:
        """Claim the lowest free fd for ``desc`` (incrementing its refcount)."""
        if len(self._slots) >= self.limit:
            raise EmfileError(
                f"{self.owner}: fd limit reached ({self.limit})")
        if self._free:
            fd = heapq.heappop(self._free)
        else:
            fd = self._next
            self._next += 1
        desc.incref()
        self._slots[fd] = desc
        return fd

    def get(self, fd: int) -> FileDescription:
        desc = self._slots.get(fd)
        if desc is None:
            raise BadFdError(f"{self.owner}: bad fd {fd}")
        return desc

    def close(self, fd: int) -> None:
        desc = self._slots.pop(fd, None)
        if desc is None:
            raise BadFdError(f"{self.owner}: close of bad fd {fd}")
        heapq.heappush(self._free, fd)
        desc.decref()

    def close_all(self) -> None:
        for fd in list(self._slots):
            self.close(fd)

    def fd_of(self, obj: Any) -> Optional[int]:
        """Reverse lookup: the first fd whose description wraps ``obj``."""
        for fd, desc in self._slots.items():
            if desc.obj is obj:
                return fd
        return None

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, fd: int) -> bool:
        return fd in self._slots

    def __repr__(self) -> str:
        return f"<FdTable {self.owner} open={len(self._slots)}/{self.limit}>"
