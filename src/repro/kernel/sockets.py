"""Socket buffers and port allocation.

- :class:`DatagramBuffer` — a UDP-style receive queue: bounded in
  datagrams, silently dropping on overflow (the kernel's behaviour that
  forces SIP-level retransmission under overload).
- :class:`StreamBuffer` — a TCP-style byte buffer with flow control:
  writers must check :meth:`StreamBuffer.space` and wait on
  ``writable_signal``.
- :class:`PortAllocator` — ephemeral port pool with TIME_WAIT holding,
  reproducing the §4.3 port-starvation effect when idle connections are
  kept open too long under churn.
"""

import collections
from typing import Deque, Optional, Set

from repro.sim.events import Signal


class PortExhaustedError(OSError):
    """No ephemeral ports available (EADDRNOTAVAIL)."""


class DatagramBuffer:
    """Bounded datagram receive queue (drops on overflow)."""

    def __init__(self, engine, capacity: int = 256, name: str = "dgram") -> None:
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.queue: Deque = collections.deque()
        self.readable_signal = Signal(engine, name=f"{name}.readable")
        self.drops = 0
        self.delivered = 0

    def push(self, datagram) -> bool:
        """Deliver a datagram; returns False (dropped) when full."""
        if len(self.queue) >= self.capacity:
            self.drops += 1
            return False
        self.queue.append(datagram)
        self.delivered += 1
        self.readable_signal.fire()
        return True

    def readable(self) -> bool:
        return bool(self.queue)

    def pop(self):
        if not self.queue:
            raise IndexError(f"{self.name}: empty datagram buffer")
        return self.queue.popleft()

    def __len__(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:
        return f"<DatagramBuffer {self.name} {len(self.queue)}/{self.capacity}>"


class StreamBuffer:
    """Bounded byte buffer carrying real payload text (TCP receive side).

    TCP is not message-based: the reader gets raw byte runs and must do
    its own framing (the SIP layer frames on ``Content-Length``).
    """

    def __init__(self, engine, capacity_bytes: int = 65536,
                 name: str = "stream") -> None:
        self.engine = engine
        self.name = name
        self.capacity = capacity_bytes
        self._chunks: Deque[str] = collections.deque()
        self._size = 0
        self.readable_signal = Signal(engine, name=f"{name}.readable")
        self.writable_signal = Signal(engine, name=f"{name}.writable")
        self.eof = False
        self.total_bytes = 0
        #: bytes handed to readers — with :attr:`total_bytes` this gives
        #: the stream offsets the causal tracer's socket-queue markers
        #: are keyed to (delivered vs consumed)
        self.consumed = 0

    @property
    def size(self) -> int:
        return self._size

    def space(self) -> int:
        return max(0, self.capacity - self._size)

    def push(self, data: str) -> None:
        """Append payload bytes; caller must have checked :meth:`space`."""
        if not data:
            return
        if len(data) > self.space():
            raise BufferError(f"{self.name}: overrun ({len(data)} > {self.space()})")
        self._chunks.append(data)
        self._size += len(data)
        self.total_bytes += len(data)
        self.readable_signal.fire()

    def push_eof(self) -> None:
        """Peer closed its side (FIN): readers see EOF after draining."""
        self.eof = True
        self.readable_signal.fire()

    def readable(self) -> bool:
        return self._size > 0 or self.eof

    def read(self, max_bytes: int = 1 << 30) -> str:
        """Take up to ``max_bytes`` from the front (may split chunks)."""
        out = []
        taken = 0
        while self._chunks and taken < max_bytes:
            chunk = self._chunks.popleft()
            room = max_bytes - taken
            if len(chunk) > room:
                out.append(chunk[:room])
                self._chunks.appendleft(chunk[room:])
                taken += room
            else:
                out.append(chunk)
                taken += len(chunk)
        if taken:
            self._size -= taken
            self.consumed += taken
            self.writable_signal.fire()
        return "".join(out)

    def __repr__(self) -> str:
        eof = " EOF" if self.eof else ""
        return f"<StreamBuffer {self.name} {self._size}/{self.capacity}{eof}>"


class PortAllocator:
    """Ephemeral port pool with TIME_WAIT holding.

    Closed connections keep their local port for ``time_wait_us`` before
    it returns to the pool, as the initiator side of a TCP teardown does.
    """

    def __init__(self, engine, lo: int = 32768, hi: int = 61000,
                 time_wait_us: float = 60_000_000.0, name: str = "ports") -> None:
        if hi <= lo:
            raise ValueError("empty port range")
        self.engine = engine
        self.name = name
        self.lo = lo
        self.hi = hi
        self.time_wait_us = time_wait_us
        self._in_use: Set[int] = set()
        self._time_wait: Set[int] = set()
        self._free: Deque[int] = collections.deque(range(lo, hi))
        self.exhaustions = 0

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def in_time_wait(self) -> int:
        return len(self._time_wait)

    def allocate(self) -> int:
        if not self._free:
            self.exhaustions += 1
            raise PortExhaustedError(
                f"{self.name}: no ephemeral ports "
                f"(in_use={len(self._in_use)}, time_wait={len(self._time_wait)})")
        port = self._free.popleft()
        self._in_use.add(port)
        return port

    def release(self, port: int, time_wait: bool = True) -> None:
        if port not in self._in_use:
            raise ValueError(f"{self.name}: releasing unallocated port {port}")
        self._in_use.remove(port)
        if time_wait and self.time_wait_us > 0:
            self._time_wait.add(port)
            self.engine.schedule(self.time_wait_us, self._reclaim, port)
        else:
            self._free.append(port)

    def _reclaim(self, port: int) -> None:
        if port in self._time_wait:
            self._time_wait.remove(port)
            self._free.append(port)

    def __repr__(self) -> str:
        return (f"<PortAllocator {self.name} free={len(self._free)} "
                f"in_use={len(self._in_use)} tw={len(self._time_wait)}>")
