"""A simulated host: cores + kernel state + network identity.

The testbed (§4.1) has one 4-core Opteron server and three 2-core client
machines.  Server processes are CPU-scheduled
(:class:`~repro.kernel.scheduler.KernelProcess`); the paper verified the
clients "were never the bottleneck", so client-side actors may instead be
spawned uncontended via :meth:`Machine.spawn_light`.
"""

from typing import Iterator, Optional

from repro.kernel.fdtable import FdTable
from repro.kernel.scheduler import KernelProcess, Scheduler
from repro.kernel.sockets import PortAllocator
from repro.sim.engine import Engine
from repro.sim.process import SimProcess


class Machine:
    """One host in the testbed."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        n_cores: int = 4,
        quantum_us: float = 2000.0,
        ctx_switch_us: float = 1.5,
        profiler=None,
        tracer=None,
        causal=None,
        fd_limit: int = 1024,
        ephemeral_ports: int = 28232,
        time_wait_us: float = 60_000_000.0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.address = name  # the fabric addresses machines by name
        self.profiler = profiler
        #: optional span tracer, propagated to the scheduler and read by
        #: the proxy architectures (None = tracing off, zero overhead)
        self.tracer = tracer
        #: optional causal tracer, shared testbed-wide (trace ids cross
        #: machines) and propagated the same way
        self.causal = causal
        self.scheduler = Scheduler(engine, n_cores=n_cores,
                                   quantum_us=quantum_us,
                                   ctx_switch_us=ctx_switch_us,
                                   profiler=profiler,
                                   tracer=tracer,
                                   causal=causal)
        self.fd_limit = fd_limit
        self.tcp_ports = PortAllocator(
            engine, lo=32768, hi=32768 + ephemeral_ports,
            time_wait_us=time_wait_us, name=f"{name}.tcp-ports")
        #: the network fabric attaches itself here
        self.fabric = None
        #: per-transport demux tables, managed by the net layer
        self.udp_binds = {}
        self.tcp_listeners = {}
        self.tcp_connections = set()
        self.sctp_binds = {}

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, body: Iterator, name: str, nice: int = 0) -> KernelProcess:
        """A CPU-scheduled process with its own descriptor table."""
        proc = self.scheduler.spawn(body, name=f"{self.name}/{name}", nice=nice)
        proc.fdtable = FdTable(limit=self.fd_limit, owner=proc.name)
        return proc

    def spawn_light(self, body: Iterator, name: str) -> SimProcess:
        """An uncontended process (for never-the-bottleneck clients)."""
        return SimProcess(self.engine, body, name=f"{self.name}/{name}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cpu_utilization(self, since_busy_us: float, window_us: float) -> float:
        """Utilization over a window given a busy-time snapshot taken at
        the window start (see :meth:`Scheduler.total_busy_us`)."""
        if window_us <= 0:
            return 0.0
        busy = self.scheduler.total_busy_us() - since_busy_us
        return busy / (window_us * len(self.scheduler.cores))

    def __repr__(self) -> str:
        return f"<Machine {self.name} cores={len(self.scheduler.cores)}>"
