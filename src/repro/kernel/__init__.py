"""Simulated operating-system substrate.

This package models the parts of Linux 2.6.20 that the paper's results
depend on:

- :mod:`~repro.kernel.scheduler` — a multi-core weighted-fair CPU
  scheduler with the real Linux nice→weight table, wakeup preemption and
  ``sched_yield``.  Reproduces the §4.3 supervisor-starvation effect.
- :mod:`~repro.kernel.locks` — OpenSER-style userspace spinlocks that fall
  back to ``sched_yield`` (the §5.2 "top ten kernel functions are all in
  the Linux scheduler" effect) and kernel blocking mutexes.
- :mod:`~repro.kernel.ipc` — bounded-buffer duplex channels with blocking
  send/recv and SCM_RIGHTS-style fd passing (the Fig. 4 IPC overhead and
  the §6 deadlock).
- :mod:`~repro.kernel.fdtable` — per-process descriptor tables with
  refcounted open-file descriptions and an EMFILE limit.
- :mod:`~repro.kernel.sockets` — socket buffers, port allocation with
  TIME_WAIT (the §4.3 port-starvation effect).
- :mod:`~repro.kernel.machine` — a host assembling cores + kernel + NIC.
- :mod:`~repro.kernel.poller` — an epoll-like readiness multiplexor.
- :mod:`~repro.kernel.timerwheel` — cancellable kernel timers.
"""

from repro.kernel.scheduler import Scheduler, KernelProcess, nice_to_weight
from repro.kernel.locks import SpinLock, KMutex
from repro.kernel.ipc import IpcChannel, IpcEndpoint, FdPayload, IpcMessage
from repro.kernel.fdtable import FdTable, FileDescription, EmfileError, BadFdError
from repro.kernel.sockets import (
    DatagramBuffer,
    StreamBuffer,
    PortAllocator,
    PortExhaustedError,
)
from repro.kernel.machine import Machine
from repro.kernel.poller import Poller
from repro.kernel.timerwheel import Timer

__all__ = [
    "Scheduler",
    "KernelProcess",
    "nice_to_weight",
    "SpinLock",
    "KMutex",
    "IpcChannel",
    "IpcEndpoint",
    "FdPayload",
    "IpcMessage",
    "FdTable",
    "FileDescription",
    "EmfileError",
    "BadFdError",
    "DatagramBuffer",
    "StreamBuffer",
    "PortAllocator",
    "PortExhaustedError",
    "Machine",
    "Poller",
    "Timer",
]
