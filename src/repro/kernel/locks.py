"""Locks: OpenSER-style userspace spinlocks and kernel blocking mutexes.

OpenSER guards its shared-memory structures (transaction table, TCP
connection hash table) with userspace spinlocks that call ``sched_yield``
after failing to promptly acquire the lock (§5.2).  Under contention this
burns CPU in spin iterations and floods the scheduler with yields — the
paper observes "the top ten kernel functions are all in the Linux
scheduler" during the 50 ops/conn workload.  :class:`SpinLock` models
exactly that behaviour; the spin and yield costs are charged to the
profiler so the effect is visible in regenerated profiles.

Both lock types are used from process generators via ``yield from``::

    yield from table_lock.acquire()
    try:
        ...critical section...
    finally:
        table_lock.release()
"""

from typing import Optional

from repro.sim.events import Signal
from repro.sim.primitives import Compute, Wait, YieldCPU


class SpinLock:
    """Userspace test-and-set spinlock with ``sched_yield`` backoff.

    Because the simulator advances one process at a time, the
    check-then-set inside :meth:`acquire` is atomic; the *cost* of the
    spinning (and of the yield syscalls) is what we model.
    """

    def __init__(
        self,
        name: str = "lock",
        try_us: float = 0.05,
        spin_us: float = 1.0,
        spins_before_yield: int = 4,
        yield_syscall_us: float = 0.7,
    ) -> None:
        # spin_us models a *batch* of test-and-test-and-set iterations; the
        # burn rate is what matters, and coarser batches keep the event
        # count (and therefore wall-clock simulation time) manageable.
        self.name = name
        self.try_us = try_us
        self.spin_us = spin_us
        self.spins_before_yield = spins_before_yield
        self.yield_syscall_us = yield_syscall_us
        self.held = False
        self.owner: Optional[str] = None
        #: optional span tracer (spans only on the contended path, so the
        #: uncontended fast path stays emission-free)
        self.tracer = None
        #: statistics
        self.acquisitions = 0
        self.contentions = 0
        self.yields = 0

    def acquire(self, who: str = "?"):
        """Generator: spin (burning CPU) until the lock is ours."""
        yield Compute(self.try_us, f"lock.{self.name}.acquire")
        contended = False
        span = None
        while self.held:
            if not contended:
                contended = True
                if self.tracer is not None:
                    span = self.tracer.begin("lock_spin", cat="kernel",
                                             who=who, lock=self.name,
                                             holder=self.owner)
            spun = 0
            while self.held and spun < self.spins_before_yield:
                yield Compute(self.spin_us, f"lock.{self.name}.spin")
                spun += 1
            if self.held:
                self.yields += 1
                yield Compute(self.yield_syscall_us, "kernel.sched_yield")
                yield YieldCPU()
        if contended:
            self.contentions += 1
            if span is not None:
                self.tracer.end(span)
        self.held = True
        self.owner = who
        self.acquisitions += 1

    def release(self) -> None:
        if not self.held:
            raise RuntimeError(f"lock {self.name!r} released while not held")
        self.held = False
        self.owner = None

    def __repr__(self) -> str:
        state = f"held by {self.owner!r}" if self.held else "free"
        return f"<SpinLock {self.name!r} {state} acq={self.acquisitions}>"


class KMutex:
    """Kernel-style blocking mutex: contenders sleep on a wait queue.

    Used for in-kernel serialization (socket buffers, accept queues), where
    the kernel blocks rather than spins.
    """

    def __init__(self, engine, name: str = "kmutex",
                 acquire_us: float = 0.3) -> None:
        self.engine = engine
        self.name = name
        self.acquire_us = acquire_us
        self.held = False
        self.owner: Optional[str] = None
        self._waiters = Signal(engine, name=f"{name}.waiters")
        self.acquisitions = 0
        self.contentions = 0
        #: optional causal tracer: blocked acquires hint their wait
        #: reason so the scheduler attributes them as lock time
        self.causal = None

    def acquire(self, who: str = "?"):
        """Generator: block (off-CPU) until the mutex is ours."""
        yield Compute(self.acquire_us, f"kmutex.{self.name}.acquire")
        contended = False
        while self.held:
            contended = True
            if self.causal is not None:
                self.causal.hint_block("lock")
            yield Wait(self._waiters)
        if contended:
            self.contentions += 1
        self.held = True
        self.owner = who
        self.acquisitions += 1

    def release(self) -> None:
        if not self.held:
            raise RuntimeError(f"kmutex {self.name!r} released while not held")
        self.held = False
        self.owner = None
        self._waiters.fire_one()

    def __repr__(self) -> str:
        state = f"held by {self.owner!r}" if self.held else "free"
        return f"<KMutex {self.name!r} {state}>"
