"""An epoll-like readiness multiplexor.

Workers in the TCP architecture wait simultaneously on their IPC channel
(new connections, fd responses) and on every connection they own.  The
paper's §6 stresses that an event-driven server must *only* read when the
event mechanism reports readiness; :class:`Poller` is that mechanism.

A source must expose ``readable() -> bool`` and a ``readable_signal``
(:class:`~repro.sim.events.Signal` fired whenever data arrives).
"""

from typing import List

from repro.sim.events import Signal
from repro.sim.primitives import Wait


class Poller:
    """Level-triggered readiness waiting over a dynamic source set.

    Each source's ``readable_signal`` is observed with one persistent
    listener installed at :meth:`add` time, so waiting is O(ready), not
    O(sources) — the *simulator* stays efficient, while the modeled
    select/poll re-arm CPU cost is charged separately by the event loops
    via ``poll_per_fd_us``.
    """

    def __init__(self, engine, name: str = "poller") -> None:
        self.engine = engine
        self.name = name
        self.sources: List = []
        self._waker: Signal = None
        #: optional causal tracer: a mid-message poller wait (rare — the
        #: loops usually poll between messages) attributes as sockq time
        self.causal = None

    def _on_data(self, value=None) -> None:
        waker = self._waker
        if waker is not None:
            self._waker = None
            waker.fire()

    def add(self, source) -> None:
        if source not in self.sources:
            self.sources.append(source)
            source.readable_signal.listen(self._on_data)
            if source.readable():
                self._on_data()

    def remove(self, source) -> None:
        if source in self.sources:
            self.sources.remove(source)
            source.readable_signal.unlisten(self._on_data)

    def ready(self) -> List:
        """Sources currently readable (non-blocking poll)."""
        return [source for source in self.sources if source.readable()]

    def wait(self, timeout_us: float = None):
        """Generator: block until at least one source is readable.

        Returns the list of ready sources; on timeout returns ``[]``.
        """
        while True:
            ready = self.ready()
            if ready:
                return ready
            self._waker = waker = Signal(self.engine,
                                         name=f"{self.name}.waker")
            timer = None
            if timeout_us is not None:
                timer = self.engine.schedule(timeout_us, self._on_data, None)
            if self.causal is not None:
                self.causal.hint_block("sockq")
            yield Wait(waker)
            if timer is not None:
                timer.cancel()
            self._waker = None
            if timeout_us is not None and not self.ready():
                return []

    def __repr__(self) -> str:
        return f"<Poller {self.name} sources={len(self.sources)}>"


class TickSource:
    """A poller source that becomes readable every ``period_us``.

    Event loops that must do periodic housekeeping (idle sweeps) register
    one of these instead of polling with a timeout — a single timer per
    loop instead of one abandoned timeout event per wait round.
    """

    def __init__(self, engine, period_us: float, name: str = "tick") -> None:
        if period_us <= 0:
            raise ValueError("period must be positive")
        self.engine = engine
        self.period_us = period_us
        self.name = name
        self.pending = False
        self.readable_signal = Signal(engine, name=f"{name}.signal")
        self._arm()

    def _arm(self) -> None:
        self.engine.schedule(self.period_us, self._fire)

    def _fire(self) -> None:
        self.pending = True
        self.readable_signal.fire()
        self._arm()

    def readable(self) -> bool:
        return self.pending

    def consume(self) -> None:
        """Acknowledge the tick (call when the housekeeping ran)."""
        self.pending = False

    def __repr__(self) -> str:
        return f"<TickSource {self.name} every {self.period_us}us>"
