"""Cancellable, restartable timers.

Used by the SIP transaction layer (retransmission timers A/B/E/F/G/H) and
by OpenSER's idle-connection management.
"""

from typing import Any, Callable, Optional

from repro.sim.engine import Engine, Scheduled


class Timer:
    """A one-shot timer that can be cancelled or restarted."""

    def __init__(self, engine: Engine, fn: Callable, *args: Any) -> None:
        self.engine = engine
        self.fn = fn
        self.args = args
        self._handle: Optional[Scheduled] = None

    @property
    def active(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self, delay_us: float) -> None:
        """Arm the timer; restarts (reschedules) if already armed."""
        self.cancel()
        self._handle = self.engine.schedule(delay_us, self._fire)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.fn(*self.args)

    def __repr__(self) -> str:
        state = "armed" if self.active else "idle"
        return f"<Timer {getattr(self.fn, '__name__', self.fn)} {state}>"


class PeriodicTimer:
    """Fires ``fn`` every ``period_us`` until stopped."""

    def __init__(self, engine: Engine, period_us: float,
                 fn: Callable, *args: Any) -> None:
        if period_us <= 0:
            raise ValueError("period must be positive")
        self.engine = engine
        self.period_us = period_us
        self.fn = fn
        self.args = args
        self._handle: Optional[Scheduled] = None
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._handle = self.engine.schedule(self.period_us, self._tick)

    def stop(self) -> None:
        self.running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self.running:
            return
        self._handle = None
        try:
            self.fn(*self.args)
        except BaseException:
            # A failing callback must not leave a zombie timer ticking
            # forever; the timer is dead until start() is called again.
            self.running = False
            raise
        # Reschedule only after fn ran (and only if fn didn't stop us);
        # callbacks run at a fixed instant, so firing cadence is unchanged.
        if self.running:
            self._handle = self.engine.schedule(self.period_us, self._tick)

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<PeriodicTimer {self.period_us}us {state}>"
