"""Multi-core weighted-fair CPU scheduler.

The paper's §4.3 finding — the TCP supervisor starves among 32 runnable
workers unless elevated to nice −20, leaving cores idle and costing
40–100% of throughput — is a pure CPU-scheduling phenomenon.  This module
reproduces it with a CFS-style model:

- each process has a *weight* from the real Linux nice→weight table;
- ready processes are ordered by weighted virtual runtime;
- a waking process preempts a running one only when its weight is strictly
  higher (so nice −20 preempts nice 0 instantly, while equal-priority
  processes wait out the current slice, as a nice-0 supervisor must).

CPU time consumed by each :class:`~repro.sim.primitives.Compute` burst is
attributed to its label through the optional profiler, which is how the
OProfile tables in §5 are regenerated.
"""

import heapq
from typing import Any, Iterator, List, Optional

from repro.sim.engine import Engine, Scheduled
from repro.sim.primitives import Compute, YieldCPU
from repro.sim.process import SimProcess

#: The Linux ``prio_to_weight`` table (kernel/sched.c), nice −20 … +19.
PRIO_TO_WEIGHT = [
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
]

NICE_0_WEIGHT = 1024

#: label used for the yield marker burst
_YIELD_LABEL = "kernel.sched_yield"


def nice_to_weight(nice: int) -> int:
    """Map a nice level (−20 … 19) to its scheduler weight."""
    if not -20 <= nice <= 19:
        raise ValueError(f"nice level out of range: {nice}")
    return PRIO_TO_WEIGHT[nice + 20]


class _Core:
    """One CPU core: at most one running process and its slice timer."""

    __slots__ = ("index", "current", "last_proc", "slice_handle",
                 "slice_started", "slice_len", "ctx_pending", "busy_us")

    def __init__(self, index: int) -> None:
        self.index = index
        self.current: Optional["KernelProcess"] = None
        self.last_proc: Optional["KernelProcess"] = None
        self.slice_handle: Optional[Scheduled] = None
        self.slice_started: float = 0.0
        self.slice_len: float = 0.0
        self.ctx_pending: float = 0.0
        self.busy_us: float = 0.0


class Scheduler:
    """Weighted-fair scheduler over ``n_cores`` simulated cores."""

    def __init__(
        self,
        engine: Engine,
        n_cores: int = 4,
        quantum_us: float = 2000.0,
        ctx_switch_us: float = 1.5,
        granularity_us: float = 1000.0,
        o1_model: bool = True,
        o1_timeslice_us: float = 60_000.0,
        o1_park_us: float = 60_000.0,
        profiler=None,
        tracer=None,
        causal=None,
    ) -> None:
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.engine = engine
        self.cores = [_Core(i) for i in range(n_cores)]
        self.quantum_us = quantum_us
        self.ctx_switch_us = ctx_switch_us
        #: CFS-style preemption granularity: a running process is only
        #: displaced at a burst boundary when it is this far (in weighted
        #: vruntime) ahead of the best waiter — otherwise short bursts
        #: would context-switch pathologically.
        self.granularity_us = granularity_us
        #: Linux 2.6.20 O(1)-scheduler behaviour (§4.3): a non-interactive
        #: task — one whose CPU use since its last reset exceeds its sleep
        #: time by more than a timeslice — lands in the *expired* array on
        #: wake and waits out an epoch even when cores are idle.  Elevated
        #: (negative-nice) tasks are exempt, which is exactly why raising
        #: the TCP supervisor to −20 fixes its starvation.
        self.o1_model = o1_model
        self.o1_timeslice_us = o1_timeslice_us
        self.o1_park_us = o1_park_us
        self.profiler = profiler
        #: optional span tracer; every hook below guards on None so the
        #: untraced hot path costs one attribute load and a branch
        self.tracer = tracer
        #: optional causal tracer (run-queue wait, blocked-wait and CPU
        #: charge attribution), same None-guard discipline as the tracer
        self.causal = causal
        self._runqueue: List[tuple] = []  # (vruntime, seq, proc)
        self._seq = 0
        self._min_vruntime = 0.0
        self.processes: List["KernelProcess"] = []

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, body: Iterator, name: str = "kproc",
              nice: int = 0) -> "KernelProcess":
        """Create (but do not start) a process scheduled on these cores."""
        proc = KernelProcess(self.engine, body, name=name, nice=nice,
                             scheduler=self)
        self.processes.append(proc)
        return proc

    # ------------------------------------------------------------------
    # run queue
    # ------------------------------------------------------------------
    def _should_park(self, proc: "KernelProcess") -> bool:
        """O(1)-model: has this task exhausted its interactivity credit?"""
        return (self.o1_model
                and proc.weight <= NICE_0_WEIGHT
                and proc.cpu_debt - proc.sleep_credit > self.o1_timeslice_us)

    def _park(self, proc: "KernelProcess") -> None:
        proc.parked = True
        proc.cpu_debt = 0.0
        proc.sleep_credit = 0.0
        proc.epochs_parked += 1
        if self.tracer is not None:
            # The §4.3 starvation ingredient, visible per-process.
            self.tracer.instant("o1_park", cat="kernel", who=proc.name,
                                park_us=self.o1_park_us)
        if self.causal is not None:
            # An epoch in the expired array is scheduler-induced wait:
            # attribute it as run-queue time (earliest stamp wins, so the
            # eventual _fill_core pop covers park + queueing in one go).
            self.causal.on_runq_push(proc.name)
        self.engine.schedule(self.o1_park_us, self._unpark, proc)

    def _push_ready(self, proc: "KernelProcess") -> None:
        if self._should_park(proc):
            # Expired array: the task waits out an epoch even if cores
            # sit idle (the §4.3 starvation).
            self._park(proc)
            return
        # Long sleepers get at most one quantum of credit (CFS's wakeup
        # placement); a CPU-hungry process that merely blips off the CPU
        # keeps its vruntime debt.
        floor = self._min_vruntime - self.quantum_us
        if proc.vruntime < floor:
            proc.vruntime = floor
        self._seq += 1
        proc.in_runqueue = True
        heapq.heappush(self._runqueue, (proc.vruntime, self._seq, proc))
        if self.causal is not None:
            self.causal.on_runq_push(proc.name)

    def _pop_ready(self) -> Optional["KernelProcess"]:
        while self._runqueue:
            __, __, proc = heapq.heappop(self._runqueue)
            if proc.in_runqueue and proc.alive:
                proc.in_runqueue = False
                return proc
        return None

    def _peek_key(self) -> Optional[float]:
        while self._runqueue:
            vruntime, __, proc = self._runqueue[0]
            if proc.in_runqueue and proc.alive:
                return vruntime
            heapq.heappop(self._runqueue)
        return None

    def make_ready(self, proc: "KernelProcess") -> None:
        """A process woke up (or was forked) and wants the CPU."""
        if proc.in_runqueue or proc.core is not None or not proc.alive:
            return
        if proc.suspended:
            return  # fault injection: hung processes never get the CPU
        if proc.parked:
            return  # waiting out an expired-array epoch
        if proc.blocked_at is not None:
            slept = self.engine.now - proc.blocked_at
            if self.causal is not None:
                self.causal.on_block_end(proc.name, proc.blocked_at)
            proc.blocked_at = None
            proc.sleep_credit = min(proc.sleep_credit + slept,
                                    self.o1_park_us)
        if self._should_park(proc):
            self._park(proc)
            return
        idle = self._idle_core()
        if idle is not None:
            self._push_ready(proc)
            self._fill_core(idle)
            return
        victim = self._preemption_victim(proc)
        if victim is not None:
            core = victim.core
            self._preempt(core)
            self._push_ready(proc)
            self._fill_core(core)
        else:
            self._push_ready(proc)

    def _unpark(self, proc: "KernelProcess") -> None:
        proc.parked = False
        if proc.alive:
            self.make_ready(proc)

    def _idle_core(self) -> Optional[_Core]:
        for core in self.cores:
            if core.current is None:
                return core
        return None

    def _preemption_victim(self, waker: "KernelProcess") -> Optional["KernelProcess"]:
        """Wakeup preemption: a strictly heavier process evicts the lightest
        running one.  Equal weights never preempt mid-slice."""
        victim = None
        for core in self.cores:
            running = core.current
            if running is None or running.weight >= waker.weight:
                continue
            if victim is None or running.weight < victim.weight:
                victim = running
        return victim

    # ------------------------------------------------------------------
    # core/slice mechanics
    # ------------------------------------------------------------------
    def _fill_core(self, core: _Core) -> None:
        """Put the best ready process on an idle core."""
        if core.current is not None:
            return
        proc = self._pop_ready()
        if proc is None:
            return
        if self.causal is not None:
            self.causal.on_runq_pop(proc.name)
        core.current = proc
        proc.core = core
        # Switching back to the process that last ran here is (nearly)
        # free; a real switch pays the context-switch cost.
        core.ctx_pending = (self.ctx_switch_us
                            if core.last_proc is not proc else 0.0)
        core.last_proc = proc
        self._min_vruntime = max(self._min_vruntime, proc.vruntime)
        self._start_slice(core)

    def _start_slice(self, core: _Core) -> None:
        proc = core.current
        assert proc is not None and proc.pending is not None
        if core.slice_handle is not None:
            core.slice_handle.cancel()
        engine = self.engine
        pending_us = proc.pending[0]
        quantum = self.quantum_us
        slice_len = pending_us if pending_us < quantum else quantum
        core.slice_started = engine.now
        core.slice_len = slice_len
        core.slice_handle = engine.schedule(
            slice_len + core.ctx_pending, self._slice_end, core, proc)

    def _charge(self, proc: "KernelProcess", us: float, label: str) -> None:
        if us <= 0:
            return
        proc.vruntime += us * NICE_0_WEIGHT / proc.weight
        proc.cpu_us += us
        proc.cpu_debt += us
        if self.profiler is not None:
            self.profiler.record(label, us, proc.name)
        if self.causal is not None:
            self.causal.on_charge(proc.name, label, us)

    def _settle_ctx(self, core: _Core, proc: "KernelProcess") -> None:
        if core.ctx_pending > 0:
            core.busy_us += core.ctx_pending
            self._charge(proc, core.ctx_pending, "kernel.context_switch")
            core.ctx_pending = 0.0
            if self.tracer is not None:
                self.tracer.instant("context_switch", cat="kernel",
                                    who=proc.name, core=core.index)

    def _slice_end(self, core: _Core, proc: "KernelProcess") -> None:
        if core.current is not proc:
            return  # stale (process was preempted or released)
        core.slice_handle = None
        # Hot path: one _slice_end per Compute burst, millions per cell.
        # The context-switch settle is skipped entirely in the common
        # ctx_pending == 0 case, and the charge is inlined.
        if core.ctx_pending > 0:
            self._settle_ctx(core, proc)
        ran = core.slice_len
        core.busy_us += ran
        pending = proc.pending
        assert pending is not None
        if ran > 0:
            proc.vruntime += ran * NICE_0_WEIGHT / proc.weight
            proc.cpu_us += ran
            proc.cpu_debt += ran
            if self.profiler is not None:
                self.profiler.record(pending[1], ran, proc.name)
            if self.causal is not None:
                self.causal.on_charge(proc.name, pending[1], ran)
        pending[0] -= ran
        if pending[0] > 1e-9:
            # Quantum expired mid-burst: requeue if a peer deserves the core.
            best = self._peek_key()
            if best is not None and best + self.granularity_us <= proc.vruntime:
                self._release(core, requeue=True)
                self._fill_core(core)
            else:
                self._start_slice(core)
            return
        # Burst complete: resume the generator while still on-core; the next
        # effect decides whether we keep the core (another Compute) or
        # release it (block/exit).
        proc.pending = None
        proc.resume_on_core()
        self._after_resume(core, proc)

    def _after_resume(self, core: _Core, proc: "KernelProcess") -> None:
        if core.current is not proc:
            # The resume blocked/exited/yielded and released the core already.
            return
        if core.slice_handle is not None:
            # The resume went through sched_yield and was re-dispatched to
            # this same core: its next slice is already scheduled.
            return
        if proc.pending is not None:
            if self._should_park(proc):
                # Timeslice exhausted mid-stream: off to the expired array
                # even with no waiter (the O(1) tick does not care).
                self._release(core, requeue=True)
                self._fill_core(core)
                return
            # Next burst: displace only when a waiter is beyond the
            # preemption granularity behind us.
            best = self._peek_key()
            if best is not None and \
                    best + self.granularity_us < proc.vruntime:
                self._release(core, requeue=True)
                self._fill_core(core)
            else:
                self._start_slice(core)
        else:
            # Resume neither blocked nor computed; give up the core anyway.
            self._release(core, requeue=False)
            self._fill_core(core)

    def _preempt(self, core: _Core) -> None:
        """Evict the running process mid-slice, charging partial time."""
        proc = core.current
        if proc is None:
            return
        if core.slice_handle is not None:
            core.slice_handle.cancel()
            core.slice_handle = None
        self._settle_ctx(core, proc)
        ran = min(self.engine.now - core.slice_started, core.slice_len)
        if ran > 0 and proc.pending is not None:
            core.busy_us += ran
            self._charge(proc, ran, proc.pending[1])
            proc.pending[0] = max(0.0, proc.pending[0] - ran)
        self._release(core, requeue=True)

    def _release(self, core: _Core, requeue: bool) -> None:
        proc = core.current
        core.current = None
        core.ctx_pending = 0.0
        if core.slice_handle is not None:
            core.slice_handle.cancel()
            core.slice_handle = None
        if proc is not None:
            proc.core = None
            if requeue and proc.alive:
                self._push_ready(proc)

    def release_core_of(self, proc: "KernelProcess") -> None:
        """Called when a running process blocks or exits."""
        core = proc.core
        if core is None:
            return
        self._release(core, requeue=False)
        self._fill_core(core)

    def yield_cpu(self, proc: "KernelProcess") -> None:
        """``sched_yield``: go behind every currently-ready peer."""
        core = proc.core
        proc.vruntime = max(proc.vruntime, self._max_key()) + 1e-6
        if core is not None:
            self._release(core, requeue=True)
            self._fill_core(core)
        else:
            self._push_ready(proc)

    def _max_key(self) -> float:
        best = self._min_vruntime
        for vruntime, __, proc in self._runqueue:
            if proc.in_runqueue and vruntime > best:
                best = vruntime
        for core in self.cores:
            if core.current is not None and core.current.vruntime > best:
                best = core.current.vruntime
        return best

    # ------------------------------------------------------------------
    # fault injection: hangs
    # ------------------------------------------------------------------
    def suspend(self, proc: "KernelProcess") -> None:
        """Stop giving ``proc`` the CPU (a SIGSTOP-style hang).

        A running process is evicted mid-slice (partial time charged);
        a queued one is lazily removed.  The process keeps advancing
        through non-CPU effects until its next ``Compute``, then stalls
        holding whatever locks/buffers it holds — exactly the failure a
        watchdog must detect from the outside.
        """
        if proc.suspended or not proc.alive:
            return
        proc.suspended = True
        if proc.core is not None:
            self._preempt(proc.core)
            self._fill_core_any()
        proc.in_runqueue = False  # lazy heap removal (_pop_ready skips)

    def resume(self, proc: "KernelProcess") -> None:
        """Undo :meth:`suspend`; the process competes for the CPU again."""
        if not proc.suspended:
            return
        proc.suspended = False
        if proc.alive and proc.pending is not None:
            self.make_ready(proc)

    def _fill_core_any(self) -> None:
        idle = self._idle_core()
        if idle is not None:
            self._fill_core(idle)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_busy_us(self) -> float:
        """CPU time consumed so far across cores (completed slices only)."""
        return sum(core.busy_us for core in self.cores)

    def runnable(self) -> int:
        """Currently running + ready process count."""
        ready = sum(1 for __, __, p in self._runqueue if p.in_runqueue and p.alive)
        running = sum(1 for core in self.cores if core.current is not None)
        return ready + running

    def __repr__(self) -> str:
        return (f"<Scheduler cores={len(self.cores)} runnable={self.runnable()}"
                f" quantum={self.quantum_us}us>")


class KernelProcess(SimProcess):
    """A process whose CPU effects contend for the scheduler's cores."""

    def __init__(self, engine: Engine, body: Iterator, name: str,
                 nice: int, scheduler: Scheduler) -> None:
        super().__init__(engine, body, name=name)
        self.scheduler = scheduler
        self.nice = nice
        self.weight = nice_to_weight(nice)
        self.vruntime = 0.0
        self.cpu_us = 0.0
        self.core: Optional[_Core] = None
        self.in_runqueue = False
        #: O(1)-model interactivity bookkeeping
        self.cpu_debt = 0.0
        self.sleep_credit = 0.0
        self.blocked_at: Optional[float] = None
        self.parked = False
        self.epochs_parked = 0
        #: fault injection: a suspended (hung) process never runs
        self.suspended = False
        #: [remaining_us, label] of the in-progress Compute, if any
        self.pending: Optional[list] = None
        #: attached by Machine.spawn
        self.fdtable = None

    def set_nice(self, nice: int) -> None:
        """Renice (takes effect from the next scheduling decision)."""
        self.nice = nice
        self.weight = nice_to_weight(nice)

    # -- effect handling ------------------------------------------------
    def _on_compute(self, effect: Compute, epoch: int) -> None:
        self.pending = [effect.us, effect.label]
        if self.core is not None:
            # Continuing on-core right after a completed burst; the
            # scheduler notices via _after_resume and starts the next slice.
            return
        self.scheduler.make_ready(self)

    def _on_yield(self, epoch: int) -> None:
        # A zero-length marker burst keeps the slice machinery uniform.
        self.pending = [0.0, _YIELD_LABEL]
        self.scheduler.yield_cpu(self)

    def resume_on_core(self) -> None:
        """Scheduler hook: burst done, advance the generator synchronously."""
        self._resume(None, self._epoch)

    def _dispatch(self, effect) -> None:
        if isinstance(effect, (Compute, YieldCPU)):
            super()._dispatch(effect)
            return
        # Blocking (Wait/Sleep), forking or exiting: release the core first.
        self.blocked_at = self.engine.now
        causal = self.scheduler.causal
        if causal is not None:
            # Claim the block-reason hint the yielding primitive left
            # (dispatch runs synchronously during the yield, so the hint
            # can only belong to this process).
            causal.on_block_start(self.name)
        if self.core is not None:
            self.scheduler.release_core_of(self)
        super()._dispatch(effect)

    def _spawn(self, body: Iterator, name: str) -> "KernelProcess":
        return self.scheduler.spawn(body, name=name, nice=self.nice)

    def _finish(self, value: Any) -> None:
        if self.core is not None:
            self.scheduler.release_core_of(self)
        super()._finish(value)

    def kill(self) -> None:
        if self.core is not None:
            self.scheduler.release_core_of(self)
        self.in_runqueue = False
        super().kill()

    def __repr__(self) -> str:
        return (f"<KernelProcess {self.name!r} nice={self.nice} "
                f"{self.state.value}>")
