"""Interprocess communication: bounded duplex channels with fd passing.

Models the unix-domain socket pairs OpenSER sets up between the TCP
supervisor and each worker.  Two properties matter for the paper:

1. **Cost and serialization** — every fd request is a round trip through
   the single supervisor (Fig. 4's 12% → 4.6% IPC time).  Costs are
   charged by the *callers* from the proxy cost model; this module only
   provides the blocking semantics.
2. **Bounded buffers + blocking sends** — the §6 deadlock: the supervisor
   blocks sending a new connection to a worker whose buffer is full while
   that worker blocks awaiting an fd response the supervisor will never
   send.

An :class:`IpcEndpoint` also satisfies the :class:`~repro.kernel.poller.Poller`
source protocol (``readable`` / ``readable_signal``).
"""

import collections
from typing import Any, Deque, Optional

from repro.sim.events import Signal
from repro.sim.primitives import Wait


class FdPayload:
    """An SCM_RIGHTS-style descriptor transfer riding on a message."""

    __slots__ = ("description",)

    def __init__(self, description) -> None:
        self.description = description

    def __repr__(self) -> str:
        return f"FdPayload({self.description!r})"


class IpcMessage:
    """One message on a channel: a kind tag, payload, optional fd."""

    __slots__ = ("kind", "payload", "fd", "size")

    def __init__(self, kind: str, payload: Any = None,
                 fd: Optional[FdPayload] = None, size: int = 64) -> None:
        self.kind = kind
        self.payload = payload
        self.fd = fd
        self.size = size

    def __repr__(self) -> str:
        fd = " +fd" if self.fd is not None else ""
        return f"<IpcMessage {self.kind}{fd}>"


class _Direction:
    """One direction of a channel: a bounded FIFO of messages."""

    __slots__ = ("capacity", "queue", "readable_signal", "writable_signal",
                 "stalled")

    def __init__(self, engine, capacity: int, name: str) -> None:
        self.capacity = capacity
        self.queue: Deque[IpcMessage] = collections.deque()
        self.readable_signal = Signal(engine, name=f"{name}.readable")
        self.writable_signal = Signal(engine, name=f"{name}.writable")
        #: fault injection: a stalled direction accepts no transfers in
        #: either sense (senders see a full buffer, receivers an empty
        #: one), like a wedged peer that stopped servicing the socket
        self.stalled = False

    @property
    def full(self) -> bool:
        return self.stalled or len(self.queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return self.stalled or not self.queue


class IpcEndpoint:
    """One end of a duplex channel."""

    def __init__(self, channel: "IpcChannel", outgoing: _Direction,
                 incoming: _Direction, name: str) -> None:
        self.channel = channel
        self.name = name
        self._out = outgoing
        self._in = incoming
        #: diagnostics for deadlock analysis
        self.blocked_sending_since: Optional[float] = None
        self.blocked_receiving_since: Optional[float] = None
        self._engine = channel.engine

    # -- poller source protocol ----------------------------------------
    def readable(self) -> bool:
        return not self._in.empty

    @property
    def readable_signal(self) -> Signal:
        return self._in.readable_signal

    def writable(self) -> bool:
        return not self._out.full

    @property
    def writable_signal(self) -> Signal:
        return self._out.writable_signal

    # -- blocking operations (generators) --------------------------------
    def send(self, msg: IpcMessage):
        """Generator: block until buffer space is available, then enqueue."""
        while self._out.full:
            if self.blocked_sending_since is None:
                self.blocked_sending_since = self._engine.now
                tracer = self.channel.tracer
                if tracer is not None:
                    tracer.instant("ipc_send_blocked", cat="ipc",
                                   who=self.name, kind=msg.kind)
            if self.channel.causal is not None:
                self.channel.causal.hint_block("ipc")
            yield Wait(self._out.writable_signal)
        self.blocked_sending_since = None
        self._enqueue(msg)

    def recv(self):
        """Generator: block until a message is available; returns it."""
        while self._in.empty:
            if self.blocked_receiving_since is None:
                self.blocked_receiving_since = self._engine.now
            if self.channel.causal is not None:
                self.channel.causal.hint_block("ipc")
            yield Wait(self._in.readable_signal)
        self.blocked_receiving_since = None
        return self._dequeue()

    # -- non-blocking operations -----------------------------------------
    def try_send(self, msg: IpcMessage) -> bool:
        if self._out.full:
            return False
        # A successful transfer proves this endpoint is not wedged; a
        # marker left by an earlier blocking call is stale and would show
        # the deadlock detector a phantom permanently-blocked endpoint.
        self.blocked_sending_since = None
        self._enqueue(msg)
        return True

    def try_recv(self) -> Optional[IpcMessage]:
        if self._in.empty:
            return None
        self.blocked_receiving_since = None
        return self._dequeue()

    # -- internals ---------------------------------------------------------
    def _enqueue(self, msg: IpcMessage) -> None:
        if msg.fd is not None:
            # The in-flight message holds a reference so the description
            # cannot be reaped while queued (as the kernel does for
            # SCM_RIGHTS messages).
            msg.fd.description.incref()
        self._out.queue.append(msg)
        self._out.readable_signal.fire()

    def _dequeue(self) -> IpcMessage:
        msg = self._in.queue.popleft()
        self._in.writable_signal.fire()
        return msg

    def pending(self) -> int:
        """Messages waiting to be received on this endpoint."""
        return len(self._in.queue)

    def __repr__(self) -> str:
        return (f"<IpcEndpoint {self.name} in={len(self._in.queue)} "
                f"out={len(self._out.queue)}>")


class IpcChannel:
    """A duplex bounded channel between two processes.

    ``a`` and ``b`` are the two endpoints; capacity is per direction, in
    messages (unix-domain buffers are byte-bounded; message-bounded is the
    equivalent observable behaviour for fixed-size control messages).
    """

    def __init__(self, engine, capacity: int = 64, name: str = "ipc",
                 tracer=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.name = name
        #: optional span tracer (endpoints reach it via the channel; a
        #: None tracer keeps the blocking paths emission-free)
        self.tracer = tracer
        #: optional causal tracer: blocked sends/receives hint their wait
        #: reason so the scheduler attributes them as IPC time
        self.causal = None
        self._a2b = _Direction(engine, capacity, f"{name}.a2b")
        self._b2a = _Direction(engine, capacity, f"{name}.b2a")
        self.a = IpcEndpoint(self, self._a2b, self._b2a, f"{name}.a")
        self.b = IpcEndpoint(self, self._b2a, self._a2b, f"{name}.b")

    def pending_total(self) -> int:
        """Messages queued in both directions (the sampler's depth gauge)."""
        return self.a.pending() + self.b.pending()

    # -- fault injection ---------------------------------------------------
    @property
    def stalled(self) -> bool:
        return self._a2b.stalled or self._b2a.stalled

    def stall(self) -> None:
        """Freeze both directions (no transfers complete until unstall)."""
        self._a2b.stalled = True
        self._b2a.stalled = True

    def unstall(self) -> None:
        """Thaw the channel and wake anyone the stall left blocked."""
        for direction in (self._a2b, self._b2a):
            if not direction.stalled:
                continue
            direction.stalled = False
            if direction.queue:
                direction.readable_signal.fire()
            if len(direction.queue) < direction.capacity:
                direction.writable_signal.fire()

    def drain(self) -> int:
        """Discard every queued message (dropping queue fd references);
        returns how many were discarded.  Used when a worker is restarted
        and its in-flight traffic is no longer meaningful."""
        dropped = 0
        for direction in (self._a2b, self._b2a):
            while direction.queue:
                msg = direction.queue.popleft()
                if msg.fd is not None:
                    msg.fd.description.decref()
                dropped += 1
            if not direction.stalled and \
                    len(direction.queue) < direction.capacity:
                direction.writable_signal.fire()
        return dropped

    def __repr__(self) -> str:
        return f"<IpcChannel {self.name}>"


def receive_fd(msg: IpcMessage, fdtable) -> int:
    """Install a received descriptor into ``fdtable`` (kernel side of
    SCM_RIGHTS delivery) and drop the in-flight reference.

    Returns the new fd number.
    """
    if msg.fd is None:
        raise ValueError("message carries no descriptor")
    desc = msg.fd.description
    fd = fdtable.install(desc)
    desc.decref()  # the queue's reference
    return fd
