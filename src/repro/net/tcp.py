"""TCP: connection-oriented, reliable bytestream transport.

Modeled behaviours the paper depends on:

- **handshake + accept queue** — connections cost a round trip and must be
  accepted by a process (OpenSER's supervisor);
- **bytestream, not messages** — receivers get byte runs and must frame
  SIP messages themselves, which is why only one worker may read a
  connection (§3.1);
- **flow control** — senders block when the peer's receive buffer is full;
- **teardown** — FIN/EOF, with the active closer's ephemeral port held in
  TIME_WAIT (the §4.3 starvation ingredient).

Packet loss and retransmission are internal to TCP and invisible to the
application except as added latency; we model TCP as reliable and in-order
(the paper's LAN saw no meaningful loss) and let the *costs* of TCP
processing live in the proxy cost model.
"""

import collections
import enum
from typing import Optional

from repro.kernel.sockets import StreamBuffer
from repro.sim.events import Event, Signal
from repro.sim.primitives import Wait

#: on-wire sizes for control segments and per-segment header overhead
CTRL_SEGMENT_SIZE = 66
HEADER_OVERHEAD = 66
MSS = 1448


class TcpError(OSError):
    """Base class for TCP-level failures."""


class ConnectionRefusedError_(TcpError):
    """SYN answered with RST (no listener, or backlog full)."""


class ConnectionResetError_(TcpError):
    """Operation on a connection that is gone."""


class TcpState(enum.Enum):
    SYN_SENT = "syn-sent"
    ESTABLISHED = "established"
    FIN_SENT = "fin-sent"       # we closed, peer has not
    CLOSE_WAIT = "close-wait"   # peer closed, we have not
    CLOSED = "closed"


class TcpListener:
    """A listening socket with a bounded accept queue."""

    def __init__(self, machine, port: int, backlog: int = 128) -> None:
        if port in machine.tcp_listeners:
            raise OSError(f"{machine.name}: TCP port {port} already listening")
        self.machine = machine
        self.port = port
        self.backlog = backlog
        self.accept_queue = []
        self.readable_signal = Signal(machine.engine,
                                      name=f"{machine.name}:tcp{port}.accept")
        machine.tcp_listeners[port] = self
        self.accepted = 0
        self.refused = 0

    # -- poller source protocol ----------------------------------------
    def readable(self) -> bool:
        return bool(self.accept_queue)

    # -- operations -------------------------------------------------------
    def accept(self):
        """Generator: block until a completed connection is available."""
        while not self.accept_queue:
            yield Wait(self.readable_signal)
        conn = self.accept_queue.pop(0)
        self.accepted += 1
        return conn

    def try_accept(self) -> Optional["TcpConn"]:
        if not self.accept_queue:
            return None
        self.accepted += 1
        return self.accept_queue.pop(0)

    def close(self) -> None:
        self.machine.tcp_listeners.pop(self.port, None)

    def __repr__(self) -> str:
        return (f"<TcpListener {self.machine.name}:{self.port} "
                f"queued={len(self.accept_queue)}>")


class TcpConn:
    """One endpoint of an established (or in-progress) connection."""

    def __init__(self, machine, local_port: int, remote_addr: str,
                 remote_port: int, initiated: bool,
                 rcvbuf_bytes: int = 65536) -> None:
        self.machine = machine
        self.engine = machine.engine
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.initiated = initiated
        self.state = TcpState.SYN_SENT if initiated else TcpState.ESTABLISHED
        self.recv_buffer = StreamBuffer(
            machine.engine, capacity_bytes=rcvbuf_bytes,
            name=f"{machine.name}:{local_port}->{remote_addr}:{remote_port}")
        self.peer: Optional["TcpConn"] = None
        self.connected = Event(machine.engine, name="tcp.connected")
        self.error: Optional[TcpError] = None
        self.in_flight = 0
        self.sent_fin = False
        self.received_fin = False
        self.fin_first = False  # were we the active closer?
        self.finalized = False
        self.bytes_sent = 0
        self.bytes_received = 0
        #: causal-tracing byte-offset markers, created lazily so untraced
        #: runs never allocate them: ``_causal_marks`` holds
        #: (bytes_sent threshold, trace id, send time) for messages this
        #: side shipped; ``_sockq_marks`` holds (stream offset, trace id,
        #: arrival time) for messages fully landed in our receive buffer
        self._causal_marks = None
        self._sockq_marks = None
        machine.tcp_connections.add(self)

    # -- poller source protocol ----------------------------------------
    def readable(self) -> bool:
        return self.recv_buffer.readable()

    @property
    def readable_signal(self):
        return self.recv_buffer.readable_signal

    @property
    def established(self) -> bool:
        return self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    @property
    def open_for_send(self) -> bool:
        return (self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)
                and self.peer is not None)

    # -- sending ----------------------------------------------------------
    def _flow_space(self) -> int:
        if self.peer is None:
            return 0
        return self.peer.recv_buffer.space() - self.in_flight

    def send(self, data: str):
        """Generator: block under flow control, then ship the bytes."""
        if not data:
            return 0
        if not self.open_for_send:
            raise ConnectionResetError_(f"send on {self.state.value} connection")
        fabric = self.machine.fabric
        while self._flow_space() < len(data):
            if not self.open_for_send:
                raise ConnectionResetError_("connection closed while blocked in send")
            if fabric.causal is not None:
                # Flow-controlled: the peer's receive window is full, so
                # the wait is network time, not local queueing.
                fabric.causal.hint_block("network")
            yield Wait(self.peer.recv_buffer.writable_signal)
        self.in_flight += len(data)
        self.bytes_sent += len(data)
        if fabric.causal is not None:
            self._mark_send(fabric.causal, data)
        offset = 0
        while offset < len(data):
            chunk = data[offset:offset + MSS]
            offset += len(chunk)
            fabric.deliver(self.machine.address, self.remote_addr,
                           len(chunk) + HEADER_OVERHEAD,
                           self._segment_arrive, chunk)
        return len(data)

    def try_send(self, data: str) -> bool:
        """Non-blocking send: ships all or nothing."""
        if not self.open_for_send or self._flow_space() < len(data):
            return False
        self.in_flight += len(data)
        self.bytes_sent += len(data)
        fabric = self.machine.fabric
        if fabric.causal is not None:
            self._mark_send(fabric.causal, data)
        offset = 0
        while offset < len(data):
            chunk = data[offset:offset + MSS]
            offset += len(chunk)
            fabric.deliver(self.machine.address, self.remote_addr,
                           len(chunk) + HEADER_OVERHEAD,
                           self._segment_arrive, chunk)
        return True

    def _mark_send(self, causal, data: str) -> None:
        """Tag the just-queued bytes with the message's trace id.

        The marker triggers when the peer's ``bytes_received`` reaches
        the stream offset of this message's last byte — TCP is in-order,
        so "last byte delivered" is when the whole message has crossed.
        """
        tid = causal.sniff(data)
        if tid is None:
            return
        if self._causal_marks is None:
            self._causal_marks = collections.deque()
        self._causal_marks.append((self.bytes_sent, tid, self.engine.now))

    def _segment_arrive(self, chunk: str) -> None:
        self.in_flight -= len(chunk)
        peer = self.peer
        if peer is None or peer.finalized:
            return  # data raced a teardown; receiver is gone
        peer.bytes_received += len(chunk)
        peer.recv_buffer.push(chunk)
        marks = self._causal_marks
        if marks:
            causal = self.machine.fabric.causal
            now = self.engine.now
            while marks and marks[0][0] <= peer.bytes_received:
                offset, tid, sent_at = marks.popleft()
                if causal is None:
                    continue
                causal.note(tid, "network", "fabric", sent_at, now)
                if peer._sockq_marks is None:
                    peer._sockq_marks = collections.deque()
                peer._sockq_marks.append((offset, tid, now))

    # -- receiving ----------------------------------------------------------
    def recv(self, max_bytes: int = 1 << 20):
        """Generator: block until bytes (or EOF); returns '' at EOF."""
        while not self.recv_buffer.readable():
            yield Wait(self.recv_buffer.readable_signal)
        data = self.recv_buffer.read(max_bytes)
        if self._sockq_marks:
            self._drain_sockq_marks()
        return data

    def try_recv(self, max_bytes: int = 1 << 20) -> Optional[str]:
        """Non-blocking read: None when nothing available, '' at EOF."""
        if not self.recv_buffer.readable():
            return None
        data = self.recv_buffer.read(max_bytes)
        if self._sockq_marks:
            self._drain_sockq_marks()
        return data

    def _drain_sockq_marks(self) -> None:
        """Emit socket-queue segments for messages the reader consumed."""
        causal = self.machine.fabric.causal
        marks = self._sockq_marks
        consumed = self.recv_buffer.consumed
        now = self.engine.now
        while marks and marks[0][0] <= consumed:
            __, tid, arrived_at = marks.popleft()
            if causal is not None:
                causal.note(tid, "sockq", self.recv_buffer.name,
                            arrived_at, now)

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Send FIN (idempotent); full teardown when both sides have."""
        if self.sent_fin:
            return
        self.sent_fin = True
        self.fin_first = not self.received_fin
        self.state = (TcpState.CLOSED if self.received_fin
                      else TcpState.FIN_SENT)
        peer = self.peer
        if peer is not None:
            self.machine.fabric.deliver(
                self.machine.address, self.remote_addr, CTRL_SEGMENT_SIZE,
                peer._fin_arrive)
        if self.received_fin or peer is None:
            self._finalize()

    def _fin_arrive(self) -> None:
        if self.received_fin:
            return
        self.received_fin = True
        self.recv_buffer.push_eof()
        if self.sent_fin:
            self.state = TcpState.CLOSED
            self._finalize()
        else:
            self.state = TcpState.CLOSE_WAIT

    def on_last_close(self) -> None:
        """FileDescription hook: all descriptors gone => FIN."""
        self.close()

    def _finalize(self) -> None:
        if self.finalized:
            return
        self.finalized = True
        self.state = TcpState.CLOSED
        self.machine.tcp_connections.discard(self)
        if self.initiated:
            # Ephemeral port: active closers hold it in TIME_WAIT.
            self.machine.tcp_ports.release(self.local_port,
                                           time_wait=self.fin_first)

    def _refuse(self, error: TcpError) -> None:
        self.error = error
        self.state = TcpState.CLOSED
        self.finalized = True
        self.machine.tcp_connections.discard(self)
        if self.initiated:
            self.machine.tcp_ports.release(self.local_port, time_wait=False)
        self.connected.fire(False)

    def __repr__(self) -> str:
        return (f"<TcpConn {self.machine.name}:{self.local_port} -> "
                f"{self.remote_addr}:{self.remote_port} {self.state.value}>")


def connect(machine, dst_addr: str, dst_port: int):
    """Generator: open a connection from ``machine`` to a listener.

    Allocates an ephemeral local port (raising
    :class:`~repro.kernel.sockets.PortExhaustedError` when the pool is
    dry), performs the handshake, and returns an ESTABLISHED
    :class:`TcpConn`.  Raises :class:`ConnectionRefusedError_` when no one
    is listening or the accept backlog is full.
    """
    local_port = machine.tcp_ports.allocate()
    conn = TcpConn(machine, local_port, dst_addr, dst_port, initiated=True)
    machine.fabric.deliver(machine.address, dst_addr, CTRL_SEGMENT_SIZE,
                           _syn_arrive, machine.fabric, conn, dst_addr,
                           dst_port)
    yield Wait(conn.connected)
    if conn.error is not None:
        raise conn.error
    return conn


def _syn_arrive(fabric, client_conn: TcpConn, dst_addr: str,
                dst_port: int) -> None:
    server = fabric.machine(dst_addr)
    listener = server.tcp_listeners.get(dst_port)
    refusal = None
    if listener is None:
        refusal = ConnectionRefusedError_(f"{dst_addr}:{dst_port}: no listener")
    elif len(listener.accept_queue) >= listener.backlog:
        listener.refused += 1
        refusal = ConnectionRefusedError_(f"{dst_addr}:{dst_port}: backlog full")
    if refusal is not None:
        fabric.deliver(dst_addr, client_conn.machine.address,
                       CTRL_SEGMENT_SIZE, client_conn._refuse, refusal)
        return
    server_conn = TcpConn(server, dst_port, client_conn.machine.address,
                          client_conn.local_port, initiated=False)
    server_conn.peer = client_conn
    listener.accept_queue.append(server_conn)
    listener.readable_signal.fire()
    fabric.deliver(dst_addr, client_conn.machine.address, CTRL_SEGMENT_SIZE,
                   _synack_arrive, client_conn, server_conn)


def _synack_arrive(client_conn: TcpConn, server_conn: TcpConn) -> None:
    client_conn.peer = server_conn
    client_conn.state = TcpState.ESTABLISHED
    client_conn.connected.fire(True)
