"""UDP: connectionless, message-based transport.

The two properties the paper leans on (§3.2):

- *message-based*: a receive returns a whole datagram or nothing, so any
  number of worker processes can receive from the same socket without
  synchronizing, and sends never interleave;
- *connectionless / unreliable*: no per-peer state, and overload shows up
  as receive-buffer drops that SIP-level timers must repair.
"""

from typing import Optional, Tuple

from repro.kernel.sockets import DatagramBuffer
from repro.net.packet import Datagram
from repro.sim.events import Signal
from repro.sim.primitives import Wait


class UdpEndpoint:
    """A bound UDP socket.

    Many processes may block in :meth:`recvfrom` concurrently (OpenSER's
    symmetric workers all do); each delivered datagram wakes them all and
    exactly one wins, the rest re-block.
    """

    def __init__(self, machine, port: int, rcvbuf_datagrams: int = 512) -> None:
        if port in machine.udp_binds:
            raise OSError(f"{machine.name}: UDP port {port} already bound")
        self.machine = machine
        self.port = port
        self.buffer = DatagramBuffer(machine.engine, capacity=rcvbuf_datagrams,
                                     name=f"{machine.name}:udp{port}")
        #: wake-one queue so a datagram wakes exactly one blocked receiver
        self._recv_waiters = Signal(machine.engine,
                                    name=f"{machine.name}:udp{port}.waiters")
        machine.udp_binds[port] = self
        self.sent = 0
        self.received = 0

    # -- poller source protocol ----------------------------------------
    def readable(self) -> bool:
        return self.buffer.readable()

    @property
    def readable_signal(self):
        return self.buffer.readable_signal

    # -- operations -------------------------------------------------------
    def sendto(self, payload: str, dst_addr: str, dst_port: int) -> None:
        """Fire-and-forget datagram send (never blocks)."""
        dgram = Datagram(self.machine.address, self.port, dst_addr, dst_port,
                         payload)
        fabric = self.machine.fabric
        causal = fabric.causal
        if causal is not None:
            dgram.trace_id = causal.sniff(payload)
            dgram.sent_at = fabric.engine.now
        fabric.deliver(self.machine.address, dst_addr, dgram.size,
                       self._arrive, fabric, dgram)
        self.sent += 1

    @staticmethod
    def _arrive(fabric, dgram: Datagram) -> None:
        machine = fabric.machine(dgram.dst_addr)
        endpoint = machine.udp_binds.get(dgram.dst_port)
        if endpoint is None:
            return  # ICMP port unreachable, which UDP senders ignore
        if endpoint.buffer.push(dgram):
            if dgram.trace_id is not None:
                causal = fabric.causal
                if causal is not None:
                    dgram.queued_at = fabric.engine.now
                    causal.note(dgram.trace_id, "network", "fabric",
                                dgram.sent_at, dgram.queued_at)
            endpoint._recv_waiters.fire_one()
        elif dgram.trace_id is not None and fabric.causal is not None:
            fabric.causal.count("udp.tagged_drops")

    def recvfrom(self):
        """Generator: block until a datagram arrives; returns it whole.

        Concurrent receivers queue FIFO and each datagram wakes exactly
        one of them (as the kernel does for processes blocked in
        ``recvfrom`` on a shared socket).
        """
        while not self.buffer.queue:
            yield Wait(self._recv_waiters)
        self.received += 1
        dgram = self.buffer.pop()
        if dgram.queued_at is not None:
            self._note_sockq(dgram)
        return dgram

    def try_recvfrom(self) -> Optional[Datagram]:
        if not self.buffer.queue:
            return None
        self.received += 1
        dgram = self.buffer.pop()
        if dgram.queued_at is not None:
            self._note_sockq(dgram)
        return dgram

    def _note_sockq(self, dgram: Datagram) -> None:
        causal = self.machine.fabric.causal
        if causal is not None:
            causal.note(dgram.trace_id, "sockq", f"{self.machine.name}:udp",
                        dgram.queued_at, self.machine.engine.now)

    @property
    def drops(self) -> int:
        return self.buffer.drops

    def close(self) -> None:
        self.machine.udp_binds.pop(self.port, None)

    def __repr__(self) -> str:
        return f"<UdpEndpoint {self.machine.name}:{self.port}>"
