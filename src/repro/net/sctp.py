"""SCTP: message-based, connection-oriented transport (§6).

The paper's discussion argues SCTP removes OpenSER's TCP pain because:

- associations are managed *in the kernel* — the application never passes
  descriptors around or sweeps for idle connections;
- messages are atomic — any worker may receive from the one-to-many
  socket, and sends need no user-level locking.

We model a one-to-many SCTP socket: a single message queue fed by every
association, with associations auto-created on first contact (implicit
association setup, as RFC 4960 one-to-many sockets do).
"""

from typing import Dict, Optional, Tuple

from repro.kernel.sockets import DatagramBuffer
from repro.sim.events import Event, Signal
from repro.sim.primitives import Wait

CTRL_CHUNK_SIZE = 66
MESSAGE_OVERHEAD = 44  # IP + SCTP common header + DATA chunk header


class SctpAssociation:
    """One kernel-managed association on a one-to-many socket."""

    __slots__ = ("endpoint", "remote_addr", "remote_port", "established",
                 "ready", "alive", "messages_sent", "messages_received")

    def __init__(self, endpoint: "SctpEndpoint", remote_addr: str,
                 remote_port: int) -> None:
        self.endpoint = endpoint
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.established = False
        self.ready = Event(endpoint.machine.engine, name="sctp.assoc")
        self.alive = True
        self.messages_sent = 0
        self.messages_received = 0

    @property
    def key(self) -> Tuple[str, int]:
        return (self.remote_addr, self.remote_port)

    def __repr__(self) -> str:
        state = "established" if self.established else "pending"
        return f"<SctpAssociation -> {self.remote_addr}:{self.remote_port} {state}>"


class SctpEndpoint:
    """A bound one-to-many SCTP socket."""

    def __init__(self, machine, port: int, rcvbuf_messages: int = 1024) -> None:
        if port in machine.sctp_binds:
            raise OSError(f"{machine.name}: SCTP port {port} already bound")
        self.machine = machine
        self.port = port
        self.buffer = DatagramBuffer(machine.engine, capacity=rcvbuf_messages,
                                     name=f"{machine.name}:sctp{port}")
        self._recv_waiters = Signal(machine.engine,
                                    name=f"{machine.name}:sctp{port}.waiters")
        self.associations: Dict[Tuple[str, int], SctpAssociation] = {}
        machine.sctp_binds[port] = self
        self.sent = 0
        self.received = 0

    # -- poller source protocol ----------------------------------------
    def readable(self) -> bool:
        return self.buffer.readable()

    @property
    def readable_signal(self):
        return self.buffer.readable_signal

    # -- association management -----------------------------------------
    def association_to(self, remote_addr: str,
                       remote_port: int) -> SctpAssociation:
        """Get or create the association for a peer (implicit setup)."""
        key = (remote_addr, remote_port)
        assoc = self.associations.get(key)
        if assoc is None:
            assoc = SctpAssociation(self, remote_addr, remote_port)
            self.associations[key] = assoc
        return assoc

    def connect(self, remote_addr: str, remote_port: int):
        """Generator: explicitly establish an association (one RTT)."""
        assoc = self.association_to(remote_addr, remote_port)
        if assoc.established:
            return assoc
        fabric = self.machine.fabric
        fabric.deliver(self.machine.address, remote_addr, CTRL_CHUNK_SIZE,
                       self._init_arrive, fabric, assoc, remote_addr,
                       remote_port)
        yield Wait(assoc.ready)
        return assoc

    def _init_arrive(self, fabric, client_assoc: SctpAssociation,
                     remote_addr: str, remote_port: int) -> None:
        server = fabric.machine(remote_addr)
        endpoint = server.sctp_binds.get(remote_port)
        if endpoint is None:
            return  # ABORT; the client's Event never fires (caller times out)
        server_assoc = endpoint.association_to(self.machine.address, self.port)
        server_assoc.established = True
        if not server_assoc.ready.fired:
            server_assoc.ready.fire(True)
        fabric.deliver(remote_addr, self.machine.address, CTRL_CHUNK_SIZE,
                       self._established, client_assoc)

    @staticmethod
    def _established(assoc: SctpAssociation) -> None:
        assoc.established = True
        if not assoc.ready.fired:
            assoc.ready.fire(True)

    # -- messaging ----------------------------------------------------------
    def sendmsg(self, assoc: SctpAssociation, payload: str) -> None:
        """Atomic message send on an established association."""
        if not assoc.established or not assoc.alive:
            raise OSError("sendmsg on unestablished association")
        fabric = self.machine.fabric
        fabric.deliver(self.machine.address, assoc.remote_addr,
                       len(payload) + MESSAGE_OVERHEAD,
                       self._message_arrive, fabric, assoc, payload)
        assoc.messages_sent += 1
        self.sent += 1

    def _message_arrive(self, fabric, from_assoc: SctpAssociation,
                        payload: str) -> None:
        server = fabric.machine(from_assoc.remote_addr)
        endpoint = server.sctp_binds.get(from_assoc.remote_port)
        if endpoint is None:
            return
        peer_assoc = endpoint.association_to(self.machine.address, self.port)
        peer_assoc.established = True  # implicit setup piggybacks on data
        peer_assoc.messages_received += 1
        if endpoint.buffer.push((peer_assoc, payload)):
            endpoint._recv_waiters.fire_one()

    def recvmsg(self):
        """Generator: block for the next (association, payload) message.

        Each message wakes exactly one of the blocked receivers, so
        symmetric workers share the socket without a thundering herd.
        """
        while not self.buffer.queue:
            yield Wait(self._recv_waiters)
        self.received += 1
        return self.buffer.pop()

    def close(self) -> None:
        for assoc in self.associations.values():
            assoc.alive = False
        self.machine.sctp_binds.pop(self.port, None)

    def __repr__(self) -> str:
        return (f"<SctpEndpoint {self.machine.name}:{self.port} "
                f"assocs={len(self.associations)}>")
