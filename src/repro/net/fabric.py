"""The LAN: machines joined by a switch.

Delivery time for a payload of ``size`` bytes from machine A to machine B:

    depart = max(now, A's egress-free time) + size / bandwidth
    arrive = depart + one-way latency (plus optional jitter)

Egress serialization makes a machine's NIC a FIFO resource, so a gigabit
link saturates realistically under the paper's ~100 MB/s message load.
An optional uniform loss rate supports fault-injection tests; the primary
loss mechanism remains receive-buffer overflow at the endpoints.

Two fault-model invariants the delivery path maintains:

- **Loss happens at the switch, after the NIC.**  A dropped packet still
  consumed the sender's egress serialization time (the frame was
  transmitted; the switch discarded it), so lossy runs account sender
  bandwidth exactly like lossless ones.
- **A (src, dst) path never reorders.**  The switch forwards each pair's
  frames down one FIFO path, so even with jitter a later packet may not
  arrive before an earlier one — TCP bytestreams (and SCTP ordered
  streams) rely on this.  Jitter therefore raises a per-pair arrival
  floor instead of drawing independent per-packet delays.

The :mod:`repro.faults` injector drives the window-scoped impairment
knobs (``extra_latency_us``/``extra_jitter_us``/``loss_rate`` and the
``partition``/``heal`` pair) to model bursts, delay spikes and link
partitions without touching the delivery code.
"""

from typing import Callable, Dict, Optional, Set, Tuple

from repro.sim.engine import Engine


class Fabric:
    """A star-topology switched network."""

    def __init__(
        self,
        engine: Engine,
        latency_us: float = 50.0,
        bandwidth_bytes_per_us: float = 125.0,  # 1 Gb/s
        jitter_us: float = 0.0,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        self.engine = engine
        self.latency_us = latency_us
        self.bandwidth = bandwidth_bytes_per_us
        self.jitter_us = jitter_us
        self.loss_rate = loss_rate
        self.rng = rng
        self.machines: Dict[str, object] = {}
        self._egress_free: Dict[str, float] = {}
        #: fault-window impairments (see :mod:`repro.faults.injector`)
        self.extra_latency_us = 0.0
        self.extra_jitter_us = 0.0
        self._partitioned: Set[Tuple[str, str]] = set()
        #: per-(src, dst) monotonic arrival floor (FIFO path)
        self._order_floor: Dict[Tuple[str, str], float] = {}
        #: statistics
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_partitioned = 0
        self.bytes_sent = 0
        #: attached CausalTracer (net endpoints read it off the fabric so
        #: every machine shares one trace-id space); None when disabled
        self.causal = None
        #: µs spent queued behind the sender NIC (egress serialization),
        #: accumulated only while causal tracing is on — a diagnostic
        #: for how much of "network" time is bandwidth vs latency
        self.egress_wait_us = 0.0

    def attach(self, machine) -> None:
        """Join a machine to the LAN (addressed by its name)."""
        if machine.name in self.machines:
            raise ValueError(f"duplicate machine name {machine.name!r}")
        self.machines[machine.name] = machine
        self._egress_free[machine.name] = 0.0
        machine.fabric = self

    def machine(self, addr: str):
        m = self.machines.get(addr)
        if m is None:
            raise KeyError(f"no machine at address {addr!r}")
        return m

    # -- link partitions ---------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Cut both directions between two machines (switch drops frames)."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore a previously partitioned pair (idempotent)."""
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitioned

    def deliver(self, src_addr: str, dst_addr: str, size: int,
                deliver_fn: Callable, *args) -> None:
        """Schedule ``deliver_fn(*args)`` at the destination's arrival time.

        Loss and partitions (if configured) silently drop the delivery,
        exactly as a switch drop would: the sender learns nothing — but
        only *after* the NIC serialized the frame, so egress accounting
        is identical for delivered and dropped packets.
        """
        if dst_addr not in self.machines:
            raise KeyError(f"no machine at address {dst_addr!r}")
        self.packets_sent += 1
        self.bytes_sent += size
        now = self.engine.now
        free = self._egress_free[src_addr]
        if self.causal is not None and free > now:
            self.egress_wait_us += free - now
        depart = max(now, free) + size / self.bandwidth
        self._egress_free[src_addr] = depart
        if (src_addr, dst_addr) in self._partitioned:
            self.packets_lost += 1
            self.packets_partitioned += 1
            return
        if self.loss_rate > 0.0 and self.rng is not None:
            if self.rng.random() < self.loss_rate:
                self.packets_lost += 1
                return
        arrive = depart + self.latency_us + self.extra_latency_us
        jitter = self.jitter_us + self.extra_jitter_us
        if jitter > 0.0 and self.rng is not None:
            arrive += self.rng.uniform(0.0, jitter)
        pair = (src_addr, dst_addr)
        floor = self._order_floor.get(pair, 0.0)
        if arrive < floor:
            arrive = floor
        else:
            self._order_floor[pair] = arrive
        self.engine.schedule_at(arrive, deliver_fn, *args)

    def __repr__(self) -> str:
        return (f"<Fabric machines={sorted(self.machines)} "
                f"latency={self.latency_us}us>")
