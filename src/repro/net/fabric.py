"""The LAN: machines joined by a switch.

Delivery time for a payload of ``size`` bytes from machine A to machine B:

    depart = max(now, A's egress-free time) + size / bandwidth
    arrive = depart + one-way latency (plus optional jitter)

Egress serialization makes a machine's NIC a FIFO resource, so a gigabit
link saturates realistically under the paper's ~100 MB/s message load.
An optional uniform loss rate supports fault-injection tests; the primary
loss mechanism remains receive-buffer overflow at the endpoints.
"""

from typing import Callable, Dict, Optional

from repro.sim.engine import Engine


class Fabric:
    """A star-topology switched network."""

    def __init__(
        self,
        engine: Engine,
        latency_us: float = 50.0,
        bandwidth_bytes_per_us: float = 125.0,  # 1 Gb/s
        jitter_us: float = 0.0,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        self.engine = engine
        self.latency_us = latency_us
        self.bandwidth = bandwidth_bytes_per_us
        self.jitter_us = jitter_us
        self.loss_rate = loss_rate
        self.rng = rng
        self.machines: Dict[str, object] = {}
        self._egress_free: Dict[str, float] = {}
        #: statistics
        self.packets_sent = 0
        self.packets_lost = 0
        self.bytes_sent = 0

    def attach(self, machine) -> None:
        """Join a machine to the LAN (addressed by its name)."""
        if machine.name in self.machines:
            raise ValueError(f"duplicate machine name {machine.name!r}")
        self.machines[machine.name] = machine
        self._egress_free[machine.name] = 0.0
        machine.fabric = self

    def machine(self, addr: str):
        m = self.machines.get(addr)
        if m is None:
            raise KeyError(f"no machine at address {addr!r}")
        return m

    def deliver(self, src_addr: str, dst_addr: str, size: int,
                deliver_fn: Callable, *args) -> None:
        """Schedule ``deliver_fn(*args)`` at the destination's arrival time.

        Loss (if configured) silently drops the delivery, exactly as a
        switch drop would: the sender learns nothing.
        """
        if dst_addr not in self.machines:
            raise KeyError(f"no machine at address {dst_addr!r}")
        self.packets_sent += 1
        self.bytes_sent += size
        if self.loss_rate > 0.0 and self.rng is not None:
            if self.rng.random() < self.loss_rate:
                self.packets_lost += 1
                return
        now = self.engine.now
        depart = max(now, self._egress_free[src_addr]) + size / self.bandwidth
        self._egress_free[src_addr] = depart
        arrive = depart + self.latency_us
        if self.jitter_us > 0.0 and self.rng is not None:
            arrive += self.rng.uniform(0.0, self.jitter_us)
        self.engine.schedule_at(arrive, deliver_fn, *args)

    def __repr__(self) -> str:
        return (f"<Fabric machines={sorted(self.machines)} "
                f"latency={self.latency_us}us>")
