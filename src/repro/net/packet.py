"""Wire units carried by the fabric."""

from typing import Optional


class Datagram:
    """A UDP datagram (also reused as the SCTP message unit)."""

    __slots__ = ("src_addr", "src_port", "dst_addr", "dst_port", "payload",
                 "size", "trace_id", "sent_at", "queued_at")

    def __init__(self, src_addr: str, src_port: int, dst_addr: str,
                 dst_port: int, payload: str,
                 size: Optional[int] = None) -> None:
        self.src_addr = src_addr
        self.src_port = src_port
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.payload = payload
        #: on-wire size: payload plus IP+UDP headers
        self.size = size if size is not None else len(payload) + 28
        #: causal-tracing tags (set only when a CausalTracer is attached)
        self.trace_id: Optional[str] = None
        self.sent_at: Optional[float] = None
        self.queued_at: Optional[float] = None

    @property
    def source(self) -> tuple:
        return (self.src_addr, self.src_port)

    def __repr__(self) -> str:
        return (f"<Datagram {self.src_addr}:{self.src_port} -> "
                f"{self.dst_addr}:{self.dst_port} {self.size}B>")
