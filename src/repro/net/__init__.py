"""Network substrate: a switched gigabit LAN with UDP, TCP and SCTP.

The testbed (§4.1) connects one server and three client machines through
gigabit Ethernet.  :class:`~repro.net.fabric.Fabric` models the LAN (per-
machine egress serialization + switch latency); the transport modules
model the kernel-visible behaviour each protocol contributes to the
paper's story:

- :mod:`~repro.net.udp` — connectionless and message-based: any process
  can receive any datagram; overflow drops force SIP retransmission.
- :mod:`~repro.net.tcp` — connection-oriented bytestream: handshake,
  accept queues, flow control, FIN/TIME_WAIT, and message framing left to
  the application.
- :mod:`~repro.net.sctp` — the §6 alternative: message-based like UDP,
  connection-oriented like TCP, with associations managed by the kernel.
"""

from repro.net.fabric import Fabric
from repro.net.packet import Datagram
from repro.net.udp import UdpEndpoint
from repro.net.tcp import (
    TcpConn,
    TcpListener,
    TcpError,
    ConnectionRefusedError_,
    connect as tcp_connect,
)
from repro.net.sctp import SctpEndpoint, SctpAssociation

__all__ = [
    "Fabric",
    "Datagram",
    "UdpEndpoint",
    "TcpConn",
    "TcpListener",
    "TcpError",
    "ConnectionRefusedError_",
    "tcp_connect",
    "SctpEndpoint",
    "SctpAssociation",
]
