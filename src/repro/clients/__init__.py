"""The benchmark workload substrate (§4.2).

Thousands of SIP phones spread over the three client machines, driven by
a manager that registers every phone (phase 1, unmeasured), then lets the
callers place calls through the proxy and measures completed transactions
per second over a window (phase 2).
"""

from repro.clients.workload import Workload, BenchmarkResult
from repro.clients.phone import Phone
from repro.clients.openloop import OpenLoopDriver
from repro.clients.manager import BenchmarkManager

__all__ = ["Workload", "BenchmarkResult", "Phone", "BenchmarkManager",
           "OpenLoopDriver"]
