"""A simulated SIP phone (UAC + UAS).

Phones run on the client machines with uncontended CPU ("the client
machines ... were never the bottleneck", §4.1) but speak real SIP through
real transports: a caller registers, then loops INVITE→ACK→BYE calls to
its designated callee; a callee answers INVITEs (180 then 200), absorbs
retransmissions, and acknowledges BYEs — all via the RFC 3261 transaction
machines in :mod:`repro.sip.transaction`.

TCP behaviour mirrors the paper's workloads: the phone keeps one outbound
connection to the proxy for everything it sends; with ``ops_per_conn``
set, it opens a *new* connection after that many operations and abandons
the old one without closing it (§4.3: "the clients never closed their
connections"), re-REGISTERing over the new connection so the proxy's
aliases and bindings follow.  Each phone also listens on its advertised
port so the proxy can dial in when no live connection remains.
"""

from typing import Dict, Optional

from repro.obs.histogram import StreamingHistogram
from repro.net.sctp import SctpEndpoint
from repro.net.tcp import TcpError, TcpListener, connect as tcp_connect
from repro.net.udp import UdpEndpoint
from repro.sim.events import Event, Signal
from repro.sim.primitives import Sleep, Wait
from repro.sip.builder import MessageBuilder
from repro.sip.dialogs import Dialog
from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import SipParseError, StreamFramer, parse_message
from repro.sip.transaction import (
    ClientTransaction,
    ServerTransaction,
    TransactionTimers,
)

_SEND_RETRY_US = 1000.0


class Phone:
    """One benchmark phone."""

    def __init__(
        self,
        machine,
        user: str,
        domain: str,
        port: int,
        transport: str,
        proxy_addr: str,
        proxy_port: int,
        rng,
        role: str = "caller",
        peer_user: Optional[str] = None,
        ops_per_conn: Optional[int] = None,
        go_event: Optional[Event] = None,
        timers: Optional[TransactionTimers] = None,
        start_delay_us: float = 0.0,
        call_hold_us: float = 0.0,
        ring_delay_us: float = 0.0,
        think_time_us: float = 0.0,
        open_loop: bool = False,
    ) -> None:
        if role not in ("caller", "callee"):
            raise ValueError(f"unknown role {role!r}")
        if role == "caller" and peer_user is None:
            raise ValueError("a caller needs a peer_user")
        self.machine = machine
        self.engine = machine.engine
        self.user = user
        self.domain = domain
        self.port = port
        self.transport = transport
        self.proxy_addr = proxy_addr
        self.proxy_port = proxy_port
        self.rng = rng
        self.role = role
        self.peer_user = peer_user
        self.ops_per_conn = ops_per_conn
        self.go_event = go_event
        self.timers = timers or TransactionTimers()
        self.start_delay_us = start_delay_us
        self.call_hold_us = call_hold_us
        self.ring_delay_us = ring_delay_us
        self.think_time_us = think_time_us
        self.open_loop = open_loop
        self.reliable = transport in ("tcp", "sctp")
        self.builder = MessageBuilder(user, domain, machine.name, port,
                                      transport, rng)
        #: causal tracer inherited from the machine (None = attribution off)
        self.causal = getattr(machine, "causal", None)
        # -- state -------------------------------------------------------
        self.registered = False
        self.registration_failures = 0
        self.running = True
        self.ops_completed = 0      #: caller: completed transactions
        self.calls_attempted = 0    #: caller: calls started
        self.calls_completed = 0
        self.calls_failed = 0
        self.retransmissions = 0    #: UAC request retransmissions sent
        self.retransmissions_absorbed = 0  #: callee: duplicate INVITEs seen
        #: call-setup times (INVITE sent → 2xx received), µs; bounded
        self.setup_latencies_us = []
        #: BYE round-trip times (request sent → 2xx), µs; bounded.  No
        #: ring/hold delay is involved, so this is pure proxy processing
        #: plus network time.
        self.processing_latencies_us = []
        self._latency_cap = 4096
        #: unbounded streaming counterparts: O(buckets) memory, so runs
        #: past the raw-sample cap still report accurate percentiles
        self.setup_hist = StreamingHistogram()
        self.processing_hist = StreamingHistogram()
        self.handled_ops = 0        #: callee: transactions it served
        self._ops_on_conn = 0
        self._client_txns: Dict[str, ClientTransaction] = {}
        self._uas_invites: Dict[str, ServerTransaction] = {}
        self._reconnect_signal = Signal(self.engine,
                                        name=f"{user}.reconnect")
        self._reconnect_wanted = False
        self.processes = []
        self._call_procs = []
        # -- transport plumbing -------------------------------------------
        self.socket = None
        self.endpoint = None
        self.assoc = None
        self.listener = None
        self.conn = None
        if transport == "udp":
            self.socket = UdpEndpoint(machine, port)
        elif transport == "sctp":
            self.endpoint = SctpEndpoint(machine, port)
        elif transport == "tcp":
            self.listener = TcpListener(machine, port)
        else:
            raise ValueError(f"unknown transport {transport!r}")

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> "Phone":
        spawn = self.machine.spawn_light
        self.processes.append(
            spawn(self._main_body(), f"{self.user}-main").start())
        if self.transport == "udp":
            self.processes.append(
                spawn(self._udp_recv_loop(), f"{self.user}-rx").start())
        elif self.transport == "sctp":
            self.processes.append(
                spawn(self._sctp_recv_loop(), f"{self.user}-rx").start())
        elif self.transport == "tcp":
            self.processes.append(
                spawn(self._accept_loop(), f"{self.user}-acc").start())
            self.processes.append(
                spawn(self._reconnect_loop(), f"{self.user}-rc").start())
        return self

    def stop(self) -> None:
        self.running = False
        for proc in self.processes:
            proc.kill()
        for proc in self._call_procs:
            proc.kill()
        self._call_procs.clear()

    def _main_body(self):
        if self.start_delay_us > 0:
            yield Sleep(self.start_delay_us)
        yield from self._transport_setup()
        yield from self._register()
        if self.role != "caller":
            return
        if self.open_loop:
            # Open-loop callers are passive: the OpenLoopDriver injects
            # calls via start_call() at its own (Poisson) pace.
            return
        if self.go_event is not None:
            yield Wait(self.go_event)
        while self.running:
            yield from self._do_call()
            if self.think_time_us > 0:
                yield Sleep(self.think_time_us)

    def start_call(self) -> None:
        """Launch one call as its own process (open-loop arrival).

        Unlike the closed loop, a new arrival never waits for earlier
        calls to finish — under overload, calls pile up in flight, which
        is exactly the regime the overload figure measures.
        """
        if not self.running:
            return
        if len(self._call_procs) >= 64:
            self._call_procs = [p for p in self._call_procs if p.alive]
        proc = self.machine.spawn_light(
            self._one_call(), f"{self.user}-call{self.calls_attempted}")
        self._call_procs.append(proc.start())

    def _one_call(self):
        yield from self._do_call()

    # ==================================================================
    # transports
    # ==================================================================
    def _transport_setup(self):
        if self.transport == "tcp":
            yield from self._open_conn()
        elif self.transport == "sctp":
            self.assoc = yield from self.endpoint.connect(self.proxy_addr,
                                                          self.proxy_port)
        return None
        yield  # pragma: no cover

    def _open_conn(self):
        """Open a fresh connection to the proxy (abandoning any old one)."""
        try:
            conn = yield from tcp_connect(self.machine, self.proxy_addr,
                                          self.proxy_port)
        except TcpError:
            self.registration_failures += 1
            return
        self.conn = conn
        self._ops_on_conn = 0
        proc = self.machine.spawn_light(self._conn_reader(conn),
                                        f"{self.user}-rdr")
        self.processes.append(proc.start())

    def _conn_reader(self, conn):
        framer = StreamFramer()
        while True:
            data = yield from conn.recv(65536)
            if data == "":
                self._on_conn_dead(conn)
                return
            try:
                texts = framer.feed(data)
            except SipParseError:
                self._on_conn_dead(conn)
                return
            for text in texts:
                self._dispatch(text)

    def _on_conn_dead(self, conn) -> None:
        """The server closed a connection under us: fail anything waiting
        on it and arrange a fresh connection (as real phones do)."""
        if self.conn is not conn:
            return  # an abandoned connection finally being reaped
        for txn in list(self._client_txns.values()):
            txn.abort()
        self._reconnect_wanted = True
        self._reconnect_signal.fire()

    def _accept_loop(self):
        """Accept proxy-initiated connections and read them too."""
        while True:
            conn = yield from self.listener.accept()
            proc = self.machine.spawn_light(self._conn_reader(conn),
                                            f"{self.user}-in-rdr")
            self.processes.append(proc.start())

    def _udp_recv_loop(self):
        while True:
            dgram = yield from self.socket.recvfrom()
            self._dispatch(dgram.payload)

    def _sctp_recv_loop(self):
        while True:
            __, payload = yield from self.endpoint.recvmsg()
            self._dispatch(payload)

    def _send_text(self, text: str) -> None:
        """Non-blocking send toward the proxy (transaction send_fn)."""
        if self.transport == "udp":
            self.socket.sendto(text, self.proxy_addr, self.proxy_port)
        elif self.transport == "sctp":
            if self.assoc is not None and self.assoc.established:
                self.endpoint.sendmsg(self.assoc, text)
        else:
            conn = self.conn
            if conn is None or not conn.open_for_send:
                return
            if not conn.try_send(text):
                # Flow-controlled: retry shortly (phones are not the
                # bottleneck, so a plain timer retry suffices).
                self.engine.schedule(_SEND_RETRY_US, self._retry_send,
                                     conn, text)

    def _retry_send(self, conn, text: str) -> None:
        if conn.open_for_send and not conn.try_send(text):
            self.engine.schedule(_SEND_RETRY_US, self._retry_send, conn, text)

    # ==================================================================
    # registration
    # ==================================================================
    def _register(self, attempts: int = 3):
        for __ in range(attempts):
            request = self.builder.register()
            final = yield from self._run_client_txn(request)
            if final is not None and final.is_success:
                self.registered = True
                return
            self.registration_failures += 1
        return

    # ==================================================================
    # caller side
    # ==================================================================
    def _do_call(self):
        self.calls_attempted += 1
        if self.transport == "tcp" and \
                (self.conn is None or not self.conn.open_for_send):
            # Our connection died (e.g. the overloaded server shed it):
            # re-establish before calling.
            yield Sleep(1000.0)
            yield from self._open_conn()
            yield from self._register(attempts=1)
            if self.conn is None or not self.conn.open_for_send:
                self.calls_failed += 1
                yield Sleep(10_000.0)
                return
        invite = self.builder.invite(self.peer_user)
        invite_sent_at = self.engine.now
        final = yield from self._run_client_txn(invite)
        if final is None or not final.is_success:
            self.calls_failed += 1
            yield Sleep(10_000.0)  # brief backoff after a failed call
            return
        setup_us = self.engine.now - invite_sent_at
        self.setup_hist.add(setup_us)
        if len(self.setup_latencies_us) < self._latency_cap:
            self.setup_latencies_us.append(setup_us)
        self._count_op()
        ack = self.builder.ack_for(invite, final)
        self._send_text(ack.render())
        dialog = Dialog.from_invite_success(invite, final)
        if self.call_hold_us > 0:
            yield Sleep(self.call_hold_us)
        bye = self.builder.bye(dialog)
        bye_sent_at = self.engine.now
        final = yield from self._run_client_txn(bye)
        if final is None or not final.is_success:
            self.calls_failed += 1
            return
        processing_us = self.engine.now - bye_sent_at
        self.processing_hist.add(processing_us)
        if len(self.processing_latencies_us) < self._latency_cap:
            self.processing_latencies_us.append(processing_us)
        self._count_op()
        self.calls_completed += 1
        yield from self._maybe_reconnect()

    def _run_client_txn(self, request: SipRequest):
        """Generator: run one client transaction; returns the final
        response or None on timeout."""
        done = Event(self.engine, name=f"{self.user}.txn")

        def on_response(response: SipResponse) -> None:
            if response.is_final and not done.fired:
                done.fire(response)

        def on_timeout() -> None:
            if not done.fired:
                done.fire(None)

        causal = self.causal
        tid = (f"{request.call_id}/{request.method}"
               if causal is not None else None)
        send_fn = self._send_text
        if causal is not None:
            # Mark every send, retransmissions included, so the journey
            # window clock starts at the *first* send (earliest wins in
            # journey_windows) and duplicate marks witness timer A/E.
            def send_fn(text):
                causal.mark(tid, "uac_send", self.user)
                self._send_text(text)
        txn = ClientTransaction(self.engine, request, send_fn,
                                self.reliable, self.timers,
                                on_response=on_response,
                                on_timeout=on_timeout)
        self._client_txns[txn.branch] = txn
        txn.start()
        final = yield Wait(done)
        if causal is not None and final is not None:
            causal.mark(tid, "uac_final", self.user)
        self._client_txns.pop(txn.branch, None)
        self.retransmissions += txn.retransmissions
        txn.cancel()
        return final

    def _count_op(self) -> None:
        self.ops_completed += 1
        self._ops_on_conn += 1

    def _maybe_reconnect(self):
        if self.transport != "tcp" or self.ops_per_conn is None:
            return
        if self._ops_on_conn < self.ops_per_conn:
            return
        # Open a new connection; the old one is abandoned, never closed
        # (§4.3) — the server's idle management must deal with it.
        yield from self._open_conn()
        yield from self._register(attempts=1)

    # ==================================================================
    # callee side (reactive)
    # ==================================================================
    def _dispatch(self, text: str) -> None:
        try:
            message = parse_message(text)
        except SipParseError:
            return
        if not message.is_request:
            via = message.top_via
            branch = via.branch if via is not None else None
            txn = self._client_txns.get(branch)
            if txn is not None and txn.matches(message):
                txn.handle_response(message)
            return
        method = message.method
        if method == "INVITE":
            self._handle_invite(message)
        elif method == "ACK":
            self._handle_ack(message)
        elif method == "BYE":
            self._handle_bye(message)

    def _handle_invite(self, invite: SipRequest) -> None:
        call_id = invite.call_id
        existing = self._uas_invites.get(call_id)
        if existing is not None:
            self.retransmissions_absorbed += 1
            existing.handle_request_retransmission()
            return
        st = ServerTransaction(self.engine, invite, self._send_text,
                               self.reliable, self.timers)
        self._uas_invites[call_id] = st
        tag = self.builder.new_tag()
        st.respond(self.builder.response_for(invite, 180, to_tag=tag))
        ok = self.builder.response_for(invite, 200, to_tag=tag,
                                       with_contact=True)
        if self.ring_delay_us > 0:
            self.engine.schedule(self.ring_delay_us, st.respond, ok)
        else:
            st.respond(ok)
        self._note_handled_op()

    def _handle_ack(self, ack: SipRequest) -> None:
        st = self._uas_invites.get(ack.call_id)
        if st is not None:
            st.handle_ack()
            # Keep the terminated transaction around to absorb INVITE
            # retransmissions (RFC 3261 timer I), then forget the call.
            self.engine.schedule(self.timers.timeout, self._forget_call,
                                 ack.call_id)

    def _forget_call(self, call_id: str) -> None:
        self._uas_invites.pop(call_id, None)

    def _handle_bye(self, bye: SipRequest) -> None:
        st = ServerTransaction(self.engine, bye, self._send_text,
                               self.reliable, self.timers)
        st.respond(self.builder.response_for(bye, 200))
        self._note_handled_op()

    def _note_handled_op(self) -> None:
        self.handled_ops += 1
        self._ops_on_conn += 1
        if (self.transport == "tcp" and self.ops_per_conn is not None
                and self.role == "callee"
                and self._ops_on_conn >= self.ops_per_conn
                and not self._reconnect_wanted):
            self._reconnect_wanted = True
            self._reconnect_signal.fire()

    def _reconnect_loop(self):
        """Reconnection runs in its own process, because both triggers
        (the callee's ops_per_conn rotation and a server-closed
        connection) come from synchronous dispatch paths."""
        while True:
            if not self._reconnect_wanted:
                yield Wait(self._reconnect_signal)
            self._reconnect_wanted = False
            yield from self._open_conn()
            yield from self._register(attempts=1)

    def __repr__(self) -> str:
        return (f"<Phone {self.user} {self.role}/{self.transport} "
                f"ops={self.ops_completed or self.handled_ops}>")
