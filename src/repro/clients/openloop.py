"""Open-loop Poisson call generation.

The paper's benchmark is *closed-loop*: each caller starts its next call
only when the previous one finishes, so offered load self-limits at
server capacity and overload never happens.  The overload figure needs
the opposite: arrivals at a configured calls/sec rate regardless of how
the server is doing, the way real traffic hits a proxy.  Past capacity,
unanswered INVITEs retransmit (timer A/E), the retransmissions consume
server CPU, and goodput collapses — unless a controller sheds load.

``OpenLoopDriver`` is a zero-simulated-cost event-callback loop (like
:class:`repro.kernel.timerwheel.PeriodicTimer`): arrival scheduling
itself must not compete with the phones for client CPU.  Gaps are drawn
from a dedicated RNG stream, so the arrival pattern is a pure function
of the seed and rate — cells stay bit-identical across runs and across
the parallel runner's process boundary.
"""

class OpenLoopDriver:
    """Inject calls into a caller pool at Poisson-distributed arrivals.

    Each arrival hands one call to the next caller round-robin via
    :meth:`Phone.start_call`, which runs the call in its own process —
    a caller mid-call simply accumulates concurrent calls, it is never
    skipped (that would close the loop again).
    """

    def __init__(self, engine, callers, offered_cps: float, rng) -> None:
        if offered_cps <= 0:
            raise ValueError("offered_cps must be positive")
        if not callers:
            raise ValueError("need at least one caller")
        self.engine = engine
        self.callers = list(callers)
        self.offered_cps = offered_cps
        self.rng = rng
        self.arrivals = 0
        self._next = 0
        self._running = False
        self._handle = None

    def start(self) -> "OpenLoopDriver":
        self._running = True
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule_next(self) -> None:
        gap_us = self.rng.expovariate(self.offered_cps) * 1e6
        self._handle = self.engine.schedule(gap_us, self._arrive)

    def _arrive(self) -> None:
        if not self._running:
            return
        caller = self.callers[self._next % len(self.callers)]
        self._next += 1
        self.arrivals += 1
        caller.start_call()
        self._schedule_next()
