"""The benchmark manager (§4.2).

Orchestrates an experiment exactly as the paper describes: create all
phones, have every phone register (phase 1, excluded from results),
synchronize the callers, then measure completed transactions per second
over a window of the call phase (phase 2).
"""

from typing import List, Optional

from repro.clients.openloop import OpenLoopDriver
from repro.clients.phone import Phone
from repro.clients.workload import BenchmarkResult, Workload, percentiles
from repro.obs.histogram import StreamingHistogram
from repro.sim.events import Event
from repro.sip.transaction import TransactionTimers

CALLER_PORT_BASE = 20000
CALLEE_PORT_BASE = 40000
REGISTER_STAGGER_US = 200_000.0


def _latency_summary(phones, list_attr: str, hist_attr: str):
    """Percentiles+mean across phones, exact when every raw sample was
    retained; from the merged streaming histograms once any phone
    overflowed its per-phone cap (large runs no longer sort everything).
    """
    samples = [s for p in phones for s in getattr(p, list_attr)]
    hists = [getattr(p, hist_attr) for p in phones]
    if sum(h.count for h in hists) > len(samples):
        merged = StreamingHistogram()
        for hist in hists:
            merged.merge(hist)
        return merged.percentiles()
    return percentiles(samples)


class BenchmarkManager:
    """Runs one workload cell against one started proxy."""

    def __init__(self, testbed, proxy, workload: Workload,
                 timers: Optional[TransactionTimers] = None) -> None:
        workload.validate()
        self.testbed = testbed
        self.proxy = proxy
        self.workload = workload
        self.timers = timers or TransactionTimers()
        self.engine = testbed.engine
        self.go_event = Event(self.engine, name="manager.go")
        self.callers: List[Phone] = []
        self.callees: List[Phone] = []
        self.driver: Optional[OpenLoopDriver] = None
        self.measured_window: Optional[tuple] = None
        #: callbacks fired with t0 when the measurement window opens
        #: (e.g. :meth:`repro.faults.FaultInjector.arm`)
        self.on_measure_start: List = []

    # ------------------------------------------------------------------
    def setup_phones(self) -> None:
        """Create and start caller/callee pairs across the client machines."""
        workload = self.workload
        transport = self.proxy.config.transport
        phone_transport = "tcp" if transport == "tcp-threaded" else transport
        rng = self.testbed.rng.stream("phones")
        for index in range(workload.clients):
            stagger = rng.uniform(0.0, REGISTER_STAGGER_US)
            common = dict(
                domain=self.proxy.config.domain,
                transport=phone_transport,
                proxy_addr=self.testbed.server.address,
                proxy_port=self.proxy.config.port,
                ops_per_conn=workload.ops_per_conn,
                timers=self.timers,
                call_hold_us=workload.call_hold_us,
                ring_delay_us=workload.ring_delay_us,
                think_time_us=workload.think_time_us,
                open_loop=workload.mode == "open",
            )
            caller = Phone(
                machine=self.testbed.client_for(index),
                user=f"caller{index}",
                port=CALLER_PORT_BASE + index,
                rng=self.testbed.rng.stream(f"phone-caller{index}"),
                role="caller",
                peer_user=f"callee{index}",
                go_event=self.go_event,
                start_delay_us=stagger,
                **common,
            )
            callee = Phone(
                machine=self.testbed.client_for(index + 1),
                user=f"callee{index}",
                port=CALLEE_PORT_BASE + index,
                rng=self.testbed.rng.stream(f"phone-callee{index}"),
                role="callee",
                start_delay_us=stagger,
                **common,
            )
            self.callers.append(caller.start())
            self.callees.append(callee.start())

    # ------------------------------------------------------------------
    def run(self) -> BenchmarkResult:
        """Execute both phases and return the measured result."""
        if not self.callers:
            self.setup_phones()
        self._registration_phase()
        self.go_event.fire(None)
        engine = self.engine
        if self.workload.mode == "open":
            self.driver = OpenLoopDriver(
                engine, self.callers, self.workload.offered_cps,
                self.testbed.rng.stream("openloop")).start()
        engine.run(until=engine.now + self.workload.warmup_us)
        # -- measured window ------------------------------------------------
        t0 = engine.now
        for hook in self.on_measure_start:
            hook(t0)
        ops0 = self._total_ops()
        completed0 = sum(p.calls_completed for p in self.callers)
        attempted0 = sum(p.calls_attempted for p in self.callers)
        rtx0 = self._total_retransmissions()
        stats0 = self.proxy.stats.snapshot()
        busy0 = self.testbed.server.scheduler.total_busy_us()
        profile0 = (self.testbed.profiler.snapshot()
                    if self.testbed.profiler is not None else {})
        engine.run(until=t0 + self.workload.measure_us)
        duration = engine.now - t0
        #: the measured window in simulated time, for windowing sampled
        #: metric series (e.g. :func:`repro.obs.metrics.series_window_mean`)
        self.measured_window = (t0, engine.now)
        ops = self._total_ops() - ops0
        profile = (self.testbed.profiler.delta(profile0)
                   if self.testbed.profiler is not None else {})
        stats_delta = self.proxy.stats.delta(stats0)
        completed = sum(p.calls_completed for p in self.callers) - completed0
        return BenchmarkResult(
            throughput_ops_s=ops / (duration / 1e6) if duration > 0 else 0.0,
            ops=ops,
            duration_us=duration,
            calls_completed=sum(p.calls_completed for p in self.callers),
            calls_failed=sum(p.calls_failed for p in self.callers),
            registration_failures=sum(
                p.registration_failures
                for p in self.callers + self.callees),
            cpu_utilization=self.testbed.server.cpu_utilization(
                busy0, duration),
            proxy_stats=stats_delta,
            profile=profile,
            setup_latency_us=_latency_summary(
                self.callers, "setup_latencies_us", "setup_hist"),
            processing_latency_us=_latency_summary(
                self.callers, "processing_latencies_us", "processing_hist"),
            proxy_totals=self.proxy.stats.snapshot(),
            open_conns=len(getattr(self.proxy, "conn_table", ())),
            goodput_cps=completed / (duration / 1e6) if duration > 0 else 0.0,
            offered_cps=self.workload.offered_cps,
            calls_attempted=(sum(p.calls_attempted for p in self.callers)
                             - attempted0),
            rejections_503=stats_delta.get("invites_rejected", 0),
            client_retransmissions=self._total_retransmissions() - rtx0,
        )

    def stop(self) -> None:
        if self.driver is not None:
            self.driver.stop()
        for phone in self.callers + self.callees:
            phone.stop()

    # ------------------------------------------------------------------
    def _registration_phase(self) -> None:
        engine = self.engine
        deadline = engine.now + self.workload.register_deadline_us
        phones = self.callers + self.callees
        while engine.now < deadline:
            if all(p.registered for p in phones):
                return
            engine.run(until=min(engine.now + 100_000.0, deadline))
        unregistered = sum(1 for p in phones if not p.registered)
        if unregistered:
            raise RuntimeError(
                f"{unregistered}/{len(phones)} phones failed to register "
                f"within {self.workload.register_deadline_us / 1e6:.1f}s")

    def _total_ops(self) -> int:
        return sum(p.ops_completed for p in self.callers)

    def _total_retransmissions(self) -> int:
        """UAC retransmissions across all phones (callees retransmit
        REGISTERs too, and their 200-OK repeats ride the same counter on
        the server side — here we count client *requests* only)."""
        return sum(p.retransmissions for p in self.callers + self.callees)
