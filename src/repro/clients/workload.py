"""Workload specifications and benchmark results."""

import math
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Workload:
    """One experimental cell.

    ``clients`` counts concurrent *callers* (each caller has a dedicated
    callee, as the §4.2 manager pairs them).  ``ops_per_conn`` is the TCP
    connection-reuse knob from Fig. 3–5: ``None`` means persistent
    connections; 50/500 reconnect after that many operations, abandoning
    (never closing) the old connection, as the paper's clients did.

    ``mode`` selects the load loop: ``"closed"`` is the paper's
    benchmark (each caller starts its next call when the previous one
    finishes, so offered load can never exceed capacity); ``"open"``
    drives Poisson call arrivals at ``offered_cps`` calls/second across
    the caller pool, *independent of completions* — the overload regime,
    where offered load above capacity triggers retransmission-driven
    collapse unless a controller sheds it.
    """

    clients: int = 100
    ops_per_conn: Optional[int] = None
    warmup_us: float = 150_000.0
    measure_us: float = 400_000.0
    register_deadline_us: float = 20_000_000.0
    call_hold_us: float = 0.0      #: time between 200-OK and BYE
    ring_delay_us: float = 0.0     #: callee's 180→200 delay
    think_time_us: float = 0.0     #: caller pause between calls
    mode: str = "closed"           #: "closed" (paper) or "open" (overload)
    offered_cps: float = 0.0       #: open-loop Poisson arrival rate, calls/s

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError("need at least one client pair")
        if self.ops_per_conn is not None and self.ops_per_conn < 1:
            raise ValueError("ops_per_conn must be positive")
        if self.measure_us <= 0:
            raise ValueError("measurement window must be positive")
        for name in ("warmup_us", "call_hold_us", "ring_delay_us",
                     "think_time_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.register_deadline_us <= 0:
            raise ValueError("register_deadline_us must be positive")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"unknown workload mode {self.mode!r}; "
                             "expected 'closed' or 'open'")
        if self.mode == "open" and self.offered_cps <= 0:
            raise ValueError("open-loop mode needs offered_cps > 0")
        if self.mode == "closed" and self.offered_cps:
            raise ValueError("offered_cps only applies to mode='open'")


@dataclass
class BenchmarkResult:
    """What one run of one cell produced.

    Every field is JSON-serializable, so results survive the disk cache
    and the parallel runner's process boundary unchanged
    (:mod:`repro.analysis.runner`).  Server-side state a benchmark wants
    to assert on must therefore live in the summary fields below
    (``proxy_totals``, ``open_conns``), not on live objects.
    """

    throughput_ops_s: float
    ops: int
    duration_us: float
    calls_completed: int
    calls_failed: int
    registration_failures: int
    cpu_utilization: float
    proxy_stats: Dict[str, int] = field(default_factory=dict)
    profile: Dict[str, float] = field(default_factory=dict)
    #: call-setup latency (INVITE → 2xx) percentiles+mean, µs:
    #: {"p50": ..., "p95": ..., "p99": ..., "p99.9": ..., "mean": ...}
    setup_latency_us: Dict[str, float] = field(default_factory=dict)
    #: request-processing latency (BYE → 2xx; no ring delay) — same shape
    processing_latency_us: Dict[str, float] = field(default_factory=dict)
    #: cumulative proxy counters at the end of the run (not windowed)
    proxy_totals: Dict[str, float] = field(default_factory=dict)
    #: connection-table population at the end of the run (0 for UDP)
    open_conns: int = 0
    #: serialized :meth:`repro.obs.MetricSampler.to_dict` series (empty
    #: unless the cell sampled metrics); plain JSON, so it survives the
    #: runner's process boundary and the disk cache
    metrics: Dict = field(default_factory=dict)
    #: calls *successfully completed* per second inside the measurement
    #: window — the overload figure's y-axis.  Unlike
    #: ``throughput_ops_s`` (which counts proxy operations), goodput
    #: gives no credit for work spent on calls that later failed.
    goodput_cps: float = 0.0
    #: open-loop offered rate this cell was driven at (0 = closed loop)
    offered_cps: float = 0.0
    #: calls started inside the measurement window
    calls_attempted: int = 0
    #: INVITEs the proxy shed with 503 inside the measurement window
    rejections_503: int = 0
    #: UAC-side request retransmissions inside the measurement window —
    #: the amplification term that drives congestion collapse over UDP
    client_retransmissions: int = 0
    #: fault-injection record (empty unless the cell ran with a fault
    #: plan, deadlock detector or watchdog): {"plan": ..., "injected":
    #: [...], "deadlocks": [...], "restarts": [...]} — plain JSON
    faults: Dict = field(default_factory=dict)
    #: per-transport latency attribution (empty unless the cell ran with
    #: causal tracing): :func:`repro.obs.aggregate_journeys` output —
    #: journey counts, latency percentiles and the critical-path share
    #: of each wait state {network, sockq, runq, lock, ipc, cpu, other}
    attribution: Dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (f"<BenchmarkResult {self.throughput_ops_s:.0f} ops/s "
                f"({self.ops} ops / {self.duration_us / 1e6:.2f}s, "
                f"util={self.cpu_utilization:.2f})>")


def percentiles(samples, points=(50, 95, 99, 99.9)) -> Dict[str, float]:
    """Nearest-rank percentiles plus ``mean`` (empty dict if no samples).

    Keys render compactly (``p99.9``, not ``p99.90``); the shape matches
    :meth:`repro.obs.StreamingHistogram.percentiles` so exact and
    streaming summaries are interchangeable downstream.
    """
    if not samples:
        return {}
    ordered = sorted(samples)
    out = {}
    for point in points:
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(point / 100.0 * len(ordered)) - 1))
        out[f"p{point:g}"] = ordered[rank]
    out["mean"] = sum(ordered) / len(ordered)
    return out
