"""Command-line entry point: run experimental cells and figures.

Examples::

    python -m repro --series udp --clients 100
    python -m repro --series tcp-50 --clients 500 --fd-cache --idle pq
    python -m repro --series tcp-persistent --nice 0 --profile
    python -m repro --series tcp-50 --clients 100 500 1000 --jobs 4
    python -m repro --series tcp-50 --trace trace.json
    python -m repro --series tcp-50 --metrics cell.jsonl --sample-us 5000
    python -m repro fig-overload
    python -m repro fig-overload --overload-series udp \\
        --controllers none local-occupancy --load-factors 0.5 2.0 \\
        --clients 16 --json overload.json
    python -m repro fig-faults
    python -m repro fig-faults --smoke --json faults.json
    python -m repro fig-attr --transport tcp --fixes none fdcache
    python -m repro fig-attr --smoke --json attr.json
    python -m repro fig-attr --call-id call-7-uac42 --journey-trace j.json

Cells are deterministic, so results are cached on disk
(``benchmarks/results/.cache/``; see ``--no-cache``/``--clear-cache``).
Passing several ``--clients`` values runs one cell per value, fanned
across ``--jobs`` worker processes.

``fig-overload`` runs the overload figure: open-loop Poisson load from
0.5×–3× measured capacity, with and without overload control, printing
goodput and 503-rate per cell (``--json`` also writes the full grid).

``fig-faults`` runs the fault-resilience figure: a worker crash is
injected mid-measurement and goodput is compared before/during/after
the fault with the supervisor watchdog off and on (``--smoke`` runs the
small CI configuration).

``fig-attr`` runs the causal latency-attribution figure: every message
is trace-id tagged and each transaction's critical path is decomposed
into network / socket-queue / run-queue / lock / IPC / CPU time, per
fix (the paper's Table 3 IPC claim, measured on the latency path).
Causal cells run serially and bypass the cache; ``--call-id`` prints a
per-segment waterfall and ``--journey-trace`` writes the segments as
Perfetto-viewable Chrome trace JSON.

``--trace FILE`` records the full message lifecycle (parse, transaction
match, fd-passing IPC, sends) plus kernel events into a Chrome
trace-event JSON viewable at https://ui.perfetto.dev; traced runs
execute serially and bypass the result cache.  ``--metrics FILE`` writes
the sampled time series (run-queue depth, fd-cache hit rate, CPU shares,
...) as JSONL, one line per sample.
"""

import argparse
import sys

from repro.analysis.cache import ResultCache, default_cache_dir
from repro.analysis.experiments import SERIES_DEF, ExperimentSpec
from repro.analysis.runner import CellOutcome, default_jobs, run_cells
from repro.overload import VALID_CONTROLLERS
from repro.profiling.report import ProfileReport


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run one cell of the ISPASS 2008 SIP-proxy study.")
    parser.add_argument("command", nargs="?", default="cell",
                        choices=("cell", "fig-overload", "fig-faults",
                                 "fig-attr"),
                        help="what to run: a single cell (default), the "
                             "overload figure, the fault-resilience "
                             "figure, or the latency-attribution figure")
    parser.add_argument("--series", default="udp",
                        choices=sorted(SERIES_DEF),
                        help="workload series (transport + connection reuse)")
    parser.add_argument("--clients", type=int, default=[100], nargs="+",
                        help="concurrent caller/callee pairs (several values "
                             "run one cell each)")
    parser.add_argument("--fd-cache", action="store_true",
                        help="enable the Fig. 4 descriptor cache")
    parser.add_argument("--idle", default="scan", choices=("scan", "pq"),
                        help="idle-connection strategy (Fig. 5: pq)")
    parser.add_argument("--nice", type=int, default=-20,
                        help="TCP supervisor nice level (§4.3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: paper's 24/32)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--measure-us", type=float, default=None,
                        help="measurement window, µs of simulated time")
    parser.add_argument("--profile", action="store_true",
                        help="print the simulated OProfile top functions")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(open in Perfetto); runs serially, uncached")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write sampled metric time series as JSONL "
                             "(implies --sample-us default)")
    parser.add_argument("--sample-us", type=float, default=None,
                        metavar="US",
                        help="metric sampling interval in simulated µs "
                             "(default 10000 when sampling is on)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for multi-cell runs "
                             "(default: all cores; 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete every cached result, then run")
    overload = parser.add_argument_group("fig-overload options")
    overload.add_argument("--overload-series", nargs="+", metavar="SERIES",
                          default=None, choices=sorted(SERIES_DEF),
                          help="series to sweep (default: udp tcp-persistent)")
    overload.add_argument("--controllers", nargs="+", metavar="NAME",
                          default=None, choices=VALID_CONTROLLERS,
                          help="overload controllers to compare "
                               "(default: none local-occupancy)")
    overload.add_argument("--load-factors", nargs="+", type=float,
                          metavar="X", default=None,
                          help="offered load as multiples of measured "
                               "capacity (default: 0.5 1 1.5 2 3)")
    overload.add_argument("--json", metavar="FILE", default=None,
                          help="also write the figure data as JSON")
    faults = parser.add_argument_group("fig-faults options")
    faults.add_argument("--fault-series", nargs="+", metavar="SERIES",
                        default=None, choices=sorted(SERIES_DEF),
                        help="series to inject faults into "
                             "(default: tcp-persistent)")
    faults.add_argument("--load-factor", type=float, default=None,
                        metavar="X",
                        help="offered load as a fraction of measured "
                             "capacity (default: 0.7)")
    faults.add_argument("--fault-at-us", type=float, default=None,
                        metavar="US",
                        help="fault offset into the measurement window "
                             "(default: 300000)")
    faults.add_argument("--smoke", action="store_true",
                        help="small, fast figure configuration for CI "
                             "smoke runs (fig-faults: 16 clients; "
                             "fig-attr: short windows, 24 clients)")
    attr = parser.add_argument_group("fig-attr options")
    attr.add_argument("--transport", default="tcp", choices=("tcp", "udp"),
                      help="transport to attribute (tcp uses the churn "
                           "series tcp-50, where fd-passing IPC shows up)")
    attr.add_argument("--fixes", nargs="+", metavar="FIX", default=None,
                      help="fixes to compare, space- or comma-separated "
                           "from {none, fdcache} (default: both)")
    attr.add_argument("--call-id", metavar="ID", default=None,
                      help="print a per-segment waterfall for journeys "
                           "whose trace id contains ID")
    attr.add_argument("--journey-trace", metavar="FILE", default=None,
                      help="write each cell's causal segments as Chrome "
                           "trace JSON (per-fix suffix when comparing)")
    return parser


def _print_cell(spec: ExperimentSpec, result, cached: bool,
                profile: bool) -> None:
    cache_note = " [cached]" if cached else ""
    print(f"series:       {spec.series} "
          f"({spec.transport()}, ops/conn={spec.ops_per_conn()}){cache_note}")
    print(f"clients:      {spec.clients}")
    print(f"throughput:   {result.throughput_ops_s:,.0f} transactions/s "
          f"({result.ops} ops in {result.duration_us / 1e6:.2f}s)")
    print(f"cpu:          {result.cpu_utilization * 100:.0f}% of 4 cores")
    print(f"calls:        {result.calls_completed} completed, "
          f"{result.calls_failed} failed")
    if result.offered_cps:
        print(f"goodput:      {result.goodput_cps:,.0f} calls/s of "
              f"{result.offered_cps:,.0f} offered "
              f"({result.rejections_503} shed with 503, "
              f"{result.client_retransmissions} client retransmissions)")
    for title, latency in (("setup lat:", result.setup_latency_us),
                           ("proc lat:", result.processing_latency_us)):
        if latency:
            keys = ("p50", "p95", "p99", "p99.9", "mean")
            summary = "  ".join(f"{key}={latency[key]:,.0f}µs"
                                for key in keys if key in latency)
            print(f"{title:<13} {summary}")
    interesting = {name: value for name, value in result.proxy_stats.items()
                   if value and name in (
                       "fd_requests", "fd_cache_hits", "retransmissions_sent",
                       "retransmissions_absorbed", "accepts",
                       "conns_closed_idle", "accept_failures")}
    if interesting:
        print(f"server:       {interesting}")
    if result.metrics.get("samples"):
        from repro.obs import TimelineReport
        print()
        print(TimelineReport(result.metrics,
                             f"{spec.series}/{spec.clients} timeline")
              .render())
    if profile:
        print()
        print(ProfileReport(result.profile, f"{spec.series} profile")
              .render(12))


def _trace_path(base: str, spec: ExperimentSpec, multiple: bool) -> str:
    """Per-cell output file: suffix the client count for multi-cell runs."""
    if not multiple:
        return base
    stem, dot, ext = base.rpartition(".")
    if not dot:
        return f"{base}-{spec.clients}"
    return f"{stem}-{spec.clients}.{ext}"


def _run_traced(specs, trace_file: str):
    """Serial, uncached execution path for traced cells (the live tracer
    cannot cross the runner's process/cache boundary)."""
    from repro.analysis.experiments import run_cell
    from repro.obs import write_chrome_trace

    outcomes = []
    for spec in specs:
        result = run_cell(spec)
        path = _trace_path(trace_file, spec, multiple=len(specs) > 1)
        count = write_chrome_trace(
            path, result.tracer,
            extra={"series": spec.series, "clients": spec.clients,
                   "seed": spec.seed})
        dropped = result.tracer.dropped
        drop_note = f" ({dropped} dropped)" if dropped else ""
        print(f"trace:        {path} ({count} events{drop_note})")
        outcomes.append(CellOutcome(spec, result, elapsed_s=0.0,
                                    cached=False))
    return outcomes


def _run_fig_overload(args, cache) -> int:
    import json

    from repro.analysis.overload import (
        DEFAULT_CONTROLLERS,
        DEFAULT_LOAD_FACTORS,
        DEFAULT_SERIES,
        render_overload_figure,
        run_overload_figure,
    )

    jobs = args.jobs if args.jobs is not None else default_jobs()
    data = run_overload_figure(
        series=tuple(args.overload_series or DEFAULT_SERIES),
        controllers=tuple(args.controllers or DEFAULT_CONTROLLERS),
        load_factors=tuple(args.load_factors or DEFAULT_LOAD_FACTORS),
        clients=args.clients[0],
        seed=args.seed,
        workers=args.workers,
        sample_us=args.sample_us,
        jobs=jobs,
        cache=cache,
    )
    print(render_overload_figure(data))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
        print(f"json:         {args.json}")
    return 0


def _run_fig_faults(args, cache) -> int:
    import json

    from repro.analysis.faults import (
        DEFAULT_FAULT_AT_US,
        DEFAULT_LOAD_FACTOR,
        DEFAULT_SERIES,
        render_faults_figure,
        run_faults_figure,
    )

    clients = 16 if args.smoke else args.clients[0]
    jobs = args.jobs if args.jobs is not None else default_jobs()
    data = run_faults_figure(
        series=tuple(args.fault_series or DEFAULT_SERIES),
        clients=clients,
        seed=args.seed,
        workers=args.workers,
        load_factor=(args.load_factor if args.load_factor is not None
                     else DEFAULT_LOAD_FACTOR),
        fault_at_us=(args.fault_at_us if args.fault_at_us is not None
                     else DEFAULT_FAULT_AT_US),
        jobs=jobs,
        cache=cache,
    )
    print(render_faults_figure(data))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
        print(f"json:         {args.json}")
    return 0


def _run_fig_attr(args) -> int:
    import json

    from repro.analysis.attribution import render_attr_figure, run_attr_figure
    from repro.obs import render_waterfall, write_journey_trace

    fixes = tuple(fix for arg in (args.fixes or ["none,fdcache"])
                  for fix in arg.split(",") if fix)
    clients = 24 if args.smoke else args.clients[0]

    def on_cell(fix, result):
        # Live-result hooks: the causal segment buffer never makes it
        # into the JSON payload, so waterfalls and trace exports happen
        # here, while the cell is still in memory.
        if args.call_id:
            print(f"-- waterfall: fix={fix}, call-id ~ {args.call_id} --")
            print(render_waterfall(result.causal, args.call_id))
            print(flush=True)
        if args.journey_trace:
            path = args.journey_trace
            if len(fixes) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}-{fix}.{ext}" if dot else f"{path}-{fix}"
            count = write_journey_trace(
                path, result.causal,
                extra={"transport": args.transport, "fix": fix,
                       "seed": args.seed})
            print(f"journey trace: {path} ({count} events)", flush=True)

    data = run_attr_figure(
        transport=args.transport,
        fixes=fixes,
        clients=clients,
        workers=args.workers,
        seed=args.seed,
        smoke=args.smoke,
        progress=lambda message: print(message, flush=True),
        on_cell=on_cell,
    )
    print(render_attr_figure(data))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
        print(f"json:         {args.json}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    cache = None if args.no_cache else ResultCache()
    if args.clear_cache:
        removed = ResultCache().clear()
        print(f"cache:        cleared {removed} cached cells "
              f"({default_cache_dir()})")
    if args.command == "fig-overload":
        return _run_fig_overload(args, cache)
    if args.command == "fig-faults":
        return _run_fig_faults(args, cache)
    if args.command == "fig-attr":
        return _run_fig_attr(args)  # causal cells are serial, uncached
    sample_us = args.sample_us
    if sample_us is None and args.metrics:
        from repro.obs.metrics import DEFAULT_INTERVAL_US
        sample_us = DEFAULT_INTERVAL_US
    specs = [ExperimentSpec(
        series=args.series,
        clients=clients,
        fd_cache=args.fd_cache,
        idle_strategy=args.idle,
        supervisor_nice=args.nice,
        workers=args.workers,
        seed=args.seed,
        measure_us=args.measure_us,
        profile=args.profile,
        sample_us=sample_us,
        trace=args.trace is not None,
    ) for clients in args.clients]
    if args.trace:
        outcomes = _run_traced(specs, args.trace)
    else:
        jobs = args.jobs if args.jobs is not None else default_jobs()
        outcomes = run_cells(specs, jobs=jobs, cache=cache)
    if args.metrics:
        from repro.obs import write_metrics_jsonl
        lines = write_metrics_jsonl(
            args.metrics,
            [(f"{o.spec.series}/{o.spec.clients}", o.result.metrics)
             for o in outcomes])
        print(f"metrics:      {args.metrics} ({lines} lines)")
    for index, outcome in enumerate(outcomes):
        if index:
            print()
        _print_cell(outcome.spec, outcome.result, outcome.cached,
                    args.profile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
