"""Command-line entry point: run one experimental cell.

Examples::

    python -m repro --series udp --clients 100
    python -m repro --series tcp-50 --clients 500 --fd-cache --idle pq
    python -m repro --series tcp-persistent --nice 0 --profile
"""

import argparse
import sys

from repro.analysis.experiments import SERIES_DEF, ExperimentSpec, run_cell
from repro.profiling.report import ProfileReport


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run one cell of the ISPASS 2008 SIP-proxy study.")
    parser.add_argument("--series", default="udp",
                        choices=sorted(SERIES_DEF),
                        help="workload series (transport + connection reuse)")
    parser.add_argument("--clients", type=int, default=100,
                        help="concurrent caller/callee pairs")
    parser.add_argument("--fd-cache", action="store_true",
                        help="enable the Fig. 4 descriptor cache")
    parser.add_argument("--idle", default="scan", choices=("scan", "pq"),
                        help="idle-connection strategy (Fig. 5: pq)")
    parser.add_argument("--nice", type=int, default=-20,
                        help="TCP supervisor nice level (§4.3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: paper's 24/32)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--measure-us", type=float, default=None,
                        help="measurement window, µs of simulated time")
    parser.add_argument("--profile", action="store_true",
                        help="print the simulated OProfile top functions")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    spec = ExperimentSpec(
        series=args.series,
        clients=args.clients,
        fd_cache=args.fd_cache,
        idle_strategy=args.idle,
        supervisor_nice=args.nice,
        workers=args.workers,
        seed=args.seed,
        measure_us=args.measure_us,
        profile=args.profile,
    )
    result = run_cell(spec)
    print(f"series:       {args.series} "
          f"({spec.transport()}, ops/conn={spec.ops_per_conn()})")
    print(f"clients:      {args.clients}")
    print(f"throughput:   {result.throughput_ops_s:,.0f} transactions/s "
          f"({result.ops} ops in {result.duration_us / 1e6:.2f}s)")
    print(f"cpu:          {result.cpu_utilization * 100:.0f}% of 4 cores")
    print(f"calls:        {result.calls_completed} completed, "
          f"{result.calls_failed} failed")
    interesting = {name: value for name, value in result.proxy_stats.items()
                   if value and name in (
                       "fd_requests", "fd_cache_hits", "retransmissions_sent",
                       "retransmissions_absorbed", "accepts",
                       "conns_closed_idle", "accept_failures")}
    if interesting:
        print(f"server:       {interesting}")
    if args.profile:
        print()
        print(ProfileReport(result.profile, f"{args.series} profile")
              .render(12))
    return 0


if __name__ == "__main__":
    sys.exit(main())
