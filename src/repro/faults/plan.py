"""The FaultPlan DSL: deterministic, timed fault schedules.

A :class:`FaultPlan` is an ordered list of fault events, each pinned to
an offset **relative to the start of the measurement window** (the
injector arms at t0, so warmup and registration are never perturbed and
the same plan hits the same simulated instants for every seed).  Events
come in two shapes:

- **windowed** — applied at ``start_us`` and reverted at
  ``start_us + duration_us`` (:class:`LossBurst`, :class:`LatencyWindow`,
  :class:`Partition`, :class:`WorkerHang`, :class:`IpcStall`);
- **one-shot** — applied once (:class:`WorkerCrash`; recovery, if any,
  is the watchdog's job, not the plan's).

Plans serialize to plain JSON (``to_dict``/``from_dict``) so they ride
on :class:`~repro.analysis.experiments.ExperimentSpec` through the
result cache and the parallel runner unchanged.  Determinism: the plan
contains no randomness of its own; stochastic faults (a loss *rate*)
draw from the fabric's seeded rng stream, so the same seed and plan
reproduce the same packet-level outcome.
"""

import dataclasses
from dataclasses import dataclass
from typing import Dict, List


class FaultPlanError(ValueError):
    """An invalid plan (bad times, unknown kinds, overlapping windows)."""


_EVENT_TYPES: Dict[str, type] = {}


def _register(cls):
    _EVENT_TYPES[cls.kind] = cls
    return cls


@dataclass
class _Event:
    """Shared shape: when the fault starts, relative to measure start."""

    start_us: float = 0.0

    #: subclasses set these
    kind = "?"
    windowed = False

    @property
    def end_us(self) -> float:
        return self.start_us + getattr(self, "duration_us", 0.0)

    def validate(self) -> None:
        if self.start_us < 0:
            raise FaultPlanError(f"{self.kind}: start_us must be >= 0")
        if self.windowed and getattr(self, "duration_us") <= 0:
            raise FaultPlanError(f"{self.kind}: duration_us must be > 0")

    def to_dict(self) -> Dict:
        payload = dataclasses.asdict(self)
        payload["kind"] = self.kind
        return payload


@_register
@dataclass
class LossBurst(_Event):
    """A window of uniform packet loss at the switch (all paths)."""

    duration_us: float = 0.0
    loss_rate: float = 1.0
    kind = "loss-burst"
    windowed = True

    def validate(self) -> None:
        super().validate()
        if not 0.0 < self.loss_rate <= 1.0:
            raise FaultPlanError("loss-burst: loss_rate must be in (0, 1]")


@_register
@dataclass
class LatencyWindow(_Event):
    """A window of added one-way latency and/or jitter (all paths)."""

    duration_us: float = 0.0
    extra_latency_us: float = 0.0
    extra_jitter_us: float = 0.0
    kind = "latency-window"
    windowed = True

    def validate(self) -> None:
        super().validate()
        if self.extra_latency_us < 0 or self.extra_jitter_us < 0:
            raise FaultPlanError("latency-window: impairments must be >= 0")
        if self.extra_latency_us == 0 and self.extra_jitter_us == 0:
            raise FaultPlanError("latency-window: no impairment configured")


@_register
@dataclass
class Partition(_Event):
    """A window during which the switch drops both directions of a pair."""

    duration_us: float = 0.0
    a: str = "server"
    b: str = "client1"
    kind = "partition"
    windowed = True

    def validate(self) -> None:
        super().validate()
        if self.a == self.b:
            raise FaultPlanError("partition: endpoints must differ")


@_register
@dataclass
class WorkerCrash(_Event):
    """Kill one worker process outright (one-shot; SIGKILL-style)."""

    worker: int = 0
    kind = "worker-crash"
    windowed = False

    def validate(self) -> None:
        super().validate()
        if self.worker < 0:
            raise FaultPlanError("worker-crash: worker must be >= 0")


@_register
@dataclass
class WorkerHang(_Event):
    """Suspend one worker for a window (SIGSTOP-style: it keeps whatever
    locks and buffer slots it holds, but never gets the CPU)."""

    duration_us: float = 0.0
    worker: int = 0
    kind = "worker-hang"
    windowed = True

    def validate(self) -> None:
        super().validate()
        if self.worker < 0:
            raise FaultPlanError("worker-hang: worker must be >= 0")


@_register
@dataclass
class IpcStall(_Event):
    """Freeze one supervisor<->worker channel for a window: senders see a
    full buffer and receivers an empty one, like a wedged socket."""

    duration_us: float = 0.0
    channel: str = "assign"  #: "assign" or "req"
    worker: int = 0
    kind = "ipc-stall"
    windowed = True

    def validate(self) -> None:
        super().validate()
        if self.channel not in ("assign", "req"):
            raise FaultPlanError(
                f"ipc-stall: unknown channel {self.channel!r}")
        if self.worker < 0:
            raise FaultPlanError("ipc-stall: worker must be >= 0")


#: windowed kinds whose effect stacks on one shared knob, so overlapping
#: windows of the same kind would make revert order-dependent
_EXCLUSIVE_KINDS = ("loss-burst", "latency-window")


class FaultPlan:
    """An ordered, validated schedule of fault events."""

    def __init__(self, events: List[_Event]) -> None:
        self.events = sorted(events, key=lambda e: (e.start_us, e.kind))
        self.validate()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(self) -> None:
        for event in self.events:
            if not isinstance(event, _Event):
                raise FaultPlanError(f"not a fault event: {event!r}")
            event.validate()
        # Same-kind windows on a shared knob must not overlap (the
        # injector saves/restores the base value per window).
        for kind in _EXCLUSIVE_KINDS:
            windows = [e for e in self.events if e.kind == kind]
            for first, second in zip(windows, windows[1:]):
                if second.start_us < first.end_us:
                    raise FaultPlanError(
                        f"overlapping {kind} windows at "
                        f"{first.start_us} and {second.start_us}")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        events = []
        for entry in payload.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = _EVENT_TYPES.get(kind)
            if event_cls is None:
                raise FaultPlanError(f"unknown fault kind {kind!r}")
            fields = {f.name for f in dataclasses.fields(event_cls)}
            unknown = set(entry) - fields
            if unknown:
                raise FaultPlanError(
                    f"{kind}: unknown fields {sorted(unknown)}")
            events.append(event_cls(**entry))
        return cls(events)

    def __repr__(self) -> str:
        kinds = [event.kind for event in self.events]
        return f"<FaultPlan {kinds}>"
