"""Fault injection and resilience: plans, detection, recovery.

- :mod:`~repro.faults.plan` — the deterministic FaultPlan DSL (loss
  bursts, latency windows, partitions, worker crash/hang, IPC stalls);
- :mod:`~repro.faults.injector` — binds a plan to a live testbed at the
  start of the measurement window;
- :mod:`~repro.faults.deadlock` — periodic wait-for-graph scans that
  catch the §6 supervisor↔worker cycle the moment it forms;
- :mod:`~repro.faults.watchdog` — detects crashed/hung/deadlocked
  workers and drives the architecture's restart path.
"""

from repro.faults.deadlock import DeadlockDetector
from repro.faults.injector import FaultInjector
from repro.faults.plan import (FaultPlan, FaultPlanError, IpcStall,
                               LatencyWindow, LossBurst, Partition,
                               WorkerCrash, WorkerHang)
from repro.faults.watchdog import Watchdog

__all__ = [
    "DeadlockDetector",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "IpcStall",
    "LatencyWindow",
    "LossBurst",
    "Partition",
    "Watchdog",
    "WorkerCrash",
    "WorkerHang",
]
