"""Wait-for-graph deadlock detection over the IPC endpoints.

The §6 deadlock is a two-node cycle: the supervisor blocks sending a new
connection to a worker whose assign buffer is full, while that worker
blocks awaiting an fd response only the supervisor can send.  Every
:class:`~repro.kernel.ipc.IpcEndpoint` already timestamps its blocking
states (``blocked_sending_since`` / ``blocked_receiving_since``, kept
accurate by the non-blocking paths too); the detector turns those into a
directed *wait-for graph* — an edge ``owner -> peer`` means "owner is
blocked on an endpoint only peer can unblock" — and scans it on a
periodic timer (plain engine callbacks: zero simulated cost, so a
detected run is bit-identical to an undetected one).

A strongly connected component of two or more owners is a deadlock: no
member can run until another member does.  Transient backpressure never
forms one — a worker merely slow to drain its assign buffer has the
supervisor edge ``supervisor -> worker-i`` but no edge back, because the
worker is runnable (its blocking recv on the fd channel, if any, has a
live supervisor behind it only when the supervisor itself is blocked).

Detection is deterministic: scans run at fixed simulated instants, so
the same seed produces the same detection timestamp.  A cycle is
reported once when it forms; if it dissolves (e.g. the watchdog restarts
a member) and later re-forms, it is reported again.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.kernel.timerwheel import PeriodicTimer

#: default scan period (µs of simulated time)
DEFAULT_PERIOD_US = 25_000.0


def _sccs(edges: Dict[str, Set[str]]) -> List[frozenset]:
    """Tarjan's strongly-connected components, iteratively.

    Returns only *deadlocked* components: more than one node, or a node
    with a self-edge (an owner blocked on something only it can clear).
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    out: List[frozenset] = []

    for root in edges:
        if root in index:
            continue
        # Each frame: (node, iterator over successors)
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1 or \
                        node in edges.get(node, ()):
                    out.append(frozenset(component))
    return out


class DeadlockDetector:
    """Periodic wait-for-graph scans over registered IPC endpoints."""

    def __init__(self, engine, period_us: float = DEFAULT_PERIOD_US,
                 min_blocked_us: float = 0.0, tracer=None) -> None:
        self.engine = engine
        self.period_us = period_us
        #: ignore endpoints blocked for less than this (0 = any blocked
        #: endpoint counts; the cycle requirement already filters
        #: transient backpressure)
        self.min_blocked_us = min_blocked_us
        self.tracer = tracer
        #: (endpoint, owner, peer): ``owner`` blocks on ``endpoint``;
        #: only ``peer`` can unblock it
        self._watched: List[Tuple[object, str, str]] = []
        #: JSON-ready detection records, in detection order
        self.detections: List[Dict] = []
        #: cycles present as of the last scan
        self.active: Set[frozenset] = set()
        self.scans = 0
        self._timer = PeriodicTimer(engine, period_us, self.scan)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def watch(self, endpoint, owner: str, peer: str) -> None:
        """Track one endpoint: ``owner`` blocked there waits on ``peer``."""
        self._watched.append((endpoint, owner, peer))

    def watch_proxy(self, proxy) -> "DeadlockDetector":
        """Register every endpoint the proxy declares via
        ``ipc_topology()`` (a no-op for supervisor-less architectures)."""
        for endpoint, owner, peer in proxy.ipc_topology():
            self.watch(endpoint, owner, peer)
        return self

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def start(self) -> "DeadlockDetector":
        self._timer.start()
        return self

    def stop(self) -> None:
        self._timer.stop()

    def scan(self) -> List[Dict]:
        """One wait-for-graph walk; returns the *newly formed* cycles."""
        self.scans += 1
        now = self.engine.now
        edges: Dict[str, Set[str]] = {}
        #: most recent block timestamp per owner (the cycle formed no
        #: earlier than its youngest edge)
        since: Dict[str, float] = {}
        for endpoint, owner, peer in self._watched:
            for stamp in (endpoint.blocked_sending_since,
                          endpoint.blocked_receiving_since):
                if stamp is None or now - stamp < self.min_blocked_us:
                    continue
                edges.setdefault(owner, set()).add(peer)
                since[owner] = max(since.get(owner, stamp), stamp)
        current = set(_sccs(edges))
        new = []
        for members in sorted(current - self.active,
                              key=lambda m: sorted(m)):
            formed = max(since[m] for m in members)
            record = {"t_us": now, "members": sorted(members),
                      "blocked_us": now - formed}
            self.detections.append(record)
            new.append(record)
            if self.tracer is not None:
                self.tracer.instant("deadlock_detected", cat="faults",
                                    who="deadlock-detector",
                                    members=",".join(record["members"]))
        # Dissolved cycles leave the active set, so a re-formed cycle
        # (post-restart relapse) is reported as a fresh detection.
        self.active = current
        return new

    # ------------------------------------------------------------------
    def gauge_probes(self) -> Dict[str, object]:
        """Sampler probes (see :mod:`repro.obs.metrics`)."""
        return {
            "deadlock_cycles": lambda: float(len(self.active)),
            "deadlocks_detected": lambda: float(len(self.detections)),
        }

    def __repr__(self) -> str:
        return (f"<DeadlockDetector endpoints={len(self._watched)} "
                f"active={len(self.active)} total={len(self.detections)}>")
