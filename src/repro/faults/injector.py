"""Binds a :class:`~repro.faults.plan.FaultPlan` to a live testbed.

The injector is armed once, at the start of the measurement window; it
then schedules plain engine callbacks (zero simulated cost) that flip
the fault hooks exposed by the fabric, the scheduler, the IPC channels
and the proxy:

======================  ================================================
event                   mechanism
======================  ================================================
loss-burst              ``fabric.loss_rate`` (save/restore)
latency-window          ``fabric.extra_latency_us`` / ``extra_jitter_us``
partition               ``fabric.partition`` / ``fabric.heal``
worker-crash            ``proxy.crash_worker`` (kills the process)
worker-hang             ``scheduler.suspend`` / ``scheduler.resume``
ipc-stall               ``IpcChannel.stall`` / ``unstall``
======================  ================================================

Every apply/revert is appended to :attr:`FaultInjector.log` (plain JSON)
and, when a tracer is attached, emitted as an instant event so faults
line up with proxy spans in the Chrome trace.
"""

from typing import Dict, List, Optional

from repro.faults.plan import (FaultPlan, FaultPlanError, IpcStall,
                               LatencyWindow, LossBurst, Partition,
                               WorkerCrash, WorkerHang)


class FaultInjector:
    """Schedules one plan's events against one testbed + proxy."""

    def __init__(self, testbed, proxy, plan: FaultPlan, tracer=None) -> None:
        self.engine = testbed.engine
        self.fabric = testbed.fabric
        self.proxy = proxy
        self.plan = plan
        self.tracer = tracer
        #: JSON-ready record of every apply/revert, in simulated order
        self.log: List[Dict] = []
        self.armed_at: Optional[float] = None
        #: per-event saved knob values for exact window restore
        self._saved: Dict[int, Dict] = {}

    # ------------------------------------------------------------------
    def arm(self, t0_us: Optional[float] = None) -> "FaultInjector":
        """Schedule the whole plan relative to ``t0_us`` (default now)."""
        if self.armed_at is not None:
            raise RuntimeError("injector already armed")
        t0 = self.engine.now if t0_us is None else t0_us
        self.armed_at = t0
        for event in self.plan:
            self.engine.schedule_at(t0 + event.start_us, self._apply, event)
            if event.windowed:
                self.engine.schedule_at(t0 + event.end_us,
                                        self._revert, event)
        return self

    # ------------------------------------------------------------------
    def _record(self, action: str, event) -> None:
        entry = {"t_us": self.engine.now, "action": action}
        entry.update(event.to_dict())
        self.log.append(entry)
        if self.tracer is not None:
            self.tracer.instant(f"fault_{action}", cat="faults",
                                who="injector", kind=event.kind)

    def _apply(self, event) -> None:
        fabric = self.fabric
        if isinstance(event, LossBurst):
            self._saved[id(event)] = {"loss_rate": fabric.loss_rate}
            fabric.loss_rate = event.loss_rate
        elif isinstance(event, LatencyWindow):
            self._saved[id(event)] = {
                "extra_latency_us": fabric.extra_latency_us,
                "extra_jitter_us": fabric.extra_jitter_us,
            }
            fabric.extra_latency_us += event.extra_latency_us
            fabric.extra_jitter_us += event.extra_jitter_us
        elif isinstance(event, Partition):
            fabric.partition(event.a, event.b)
        elif isinstance(event, WorkerCrash):
            self.proxy.crash_worker(event.worker)
        elif isinstance(event, WorkerHang):
            proc = self._worker_proc(event.worker)
            self._saved[id(event)] = {"proc": proc}
            self.proxy.machine.scheduler.suspend(proc)
        elif isinstance(event, IpcStall):
            self._channel(event).stall()
        else:  # pragma: no cover - plan validation rejects these
            raise FaultPlanError(f"uninjectable event {event!r}")
        self._record("apply", event)

    def _revert(self, event) -> None:
        fabric = self.fabric
        if isinstance(event, LossBurst):
            fabric.loss_rate = self._saved.pop(id(event))["loss_rate"]
        elif isinstance(event, LatencyWindow):
            saved = self._saved.pop(id(event))
            fabric.extra_latency_us = saved["extra_latency_us"]
            fabric.extra_jitter_us = saved["extra_jitter_us"]
        elif isinstance(event, Partition):
            fabric.heal(event.a, event.b)
        elif isinstance(event, WorkerHang):
            # Resume the process suspended at apply time.  If the
            # watchdog restarted (killed) it meanwhile, resume() clears
            # the flag but never reschedules a dead process.
            proc = self._saved.pop(id(event))["proc"]
            self.proxy.machine.scheduler.resume(proc)
        elif isinstance(event, IpcStall):
            self._channel(event).unstall()
        self._record("revert", event)

    # ------------------------------------------------------------------
    def _worker_proc(self, index: int):
        procs = dict(self.proxy.worker_processes())
        proc = procs.get(index)
        if proc is None:
            raise FaultPlanError(
                f"{type(self.proxy).__name__} has no worker {index} "
                "(worker faults need a process-per-worker architecture)")
        return proc

    def _channel(self, event: IpcStall):
        chans = getattr(self.proxy,
                        "assign_chans" if event.channel == "assign"
                        else "req_chans", None)
        if chans is None:
            raise FaultPlanError(
                f"{type(self.proxy).__name__} has no "
                f"{event.channel!r} IPC channels")
        if not 0 <= event.worker < len(chans):
            raise FaultPlanError(f"ipc-stall: no worker {event.worker}")
        return chans[event.worker]

    def __repr__(self) -> str:
        state = (f"armed@{self.armed_at:.0f}us"
                 if self.armed_at is not None else "unarmed")
        return f"<FaultInjector {len(self.plan)} events {state}>"
