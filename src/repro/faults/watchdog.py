"""The supervisor watchdog: detect dead/hung workers and restart them.

Three triggers, checked every period:

- **crash** — the worker process is no longer alive;
- **deadlock** — a :class:`~repro.faults.deadlock.DeadlockDetector`
  reports an active cycle involving the worker (restarting the worker
  drains its channels, which wakes the blocked supervisor — the §6
  recovery path);
- **hang** — the worker's heartbeat (stamped at the top of its event
  loop) is older than ``hang_timeout_us`` *and* the architecture reports
  pending work for it.  The work-pending gate keeps an idle worker —
  legitimately silent for seconds — from tripping the timeout.

Recovery itself is the architecture's job
(``BaseProxyServer.restart_worker``): kill what is left of the process,
drain its channels, close its descriptor table, invalidate its fd-cache,
re-dispatch the connections it owned, spawn a replacement.  The watchdog
only decides *when*, and records every restart in :attr:`restarts`.

Like the detector, ticks are plain engine callbacks with zero simulated
cost — enabling the watchdog never perturbs a fault-free run.
"""

from typing import Dict, List, Optional

from repro.kernel.timerwheel import PeriodicTimer

#: default check period (µs of simulated time)
DEFAULT_PERIOD_US = 50_000.0

#: default heartbeat age treated as a hang (µs of simulated time); far
#: beyond any healthy fd-request round trip, well inside a measurement
#: window
DEFAULT_HANG_TIMEOUT_US = 300_000.0


class Watchdog:
    """Periodic worker-liveness checks with automatic restart."""

    def __init__(self, proxy, period_us: float = DEFAULT_PERIOD_US,
                 hang_timeout_us: float = DEFAULT_HANG_TIMEOUT_US,
                 detector=None, tracer=None) -> None:
        if not getattr(proxy, "supports_restart", False):
            raise ValueError(
                f"{type(proxy).__name__} does not support worker restart")
        self.proxy = proxy
        self.engine = proxy.engine
        self.period_us = period_us
        self.hang_timeout_us = hang_timeout_us
        self.detector = detector
        self.tracer = tracer
        #: JSON-ready restart records, in simulated order
        self.restarts: List[Dict] = []
        self.checks = 0
        self._timer = PeriodicTimer(self.engine, period_us, self._tick)

    # ------------------------------------------------------------------
    def start(self) -> "Watchdog":
        # Baseline the heartbeats so a worker that has not run yet (the
        # benchmark may start the watchdog before traffic) is not
        # instantly "hung".
        now = self.engine.now
        heartbeats = self.proxy.worker_heartbeat_us
        for index in range(len(heartbeats)):
            heartbeats[index] = max(heartbeats[index], now)
        self._timer.start()
        return self

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def _deadlocked_workers(self) -> set:
        """Worker indices appearing in currently active wait-for cycles."""
        if self.detector is None:
            return set()
        indices = set()
        for members in self.detector.active:
            for member in members:
                if member.startswith("worker-"):
                    indices.add(int(member.split("-", 1)[1]))
        return indices

    def _tick(self) -> None:
        self.checks += 1
        now = self.engine.now
        deadlocked = self._deadlocked_workers()
        heartbeats = self.proxy.worker_heartbeat_us
        for index, proc in self.proxy.worker_processes():
            if not proc.alive:
                self._restart(index, "crash")
            elif index in deadlocked:
                self._restart(index, "deadlock")
            elif (now - heartbeats[index] >= self.hang_timeout_us
                  and self.proxy.worker_work_pending(index)):
                self._restart(index, "hang")

    def _restart(self, index: int, reason: str) -> None:
        info = self.proxy.restart_worker(index) or {}
        # Give the replacement a full hang timeout before it can be
        # flagged again (its own loop re-stamps from the first wake-up).
        self.proxy.worker_heartbeat_us[index] = self.engine.now
        record = {"t_us": self.engine.now, "worker": index,
                  "reason": reason}
        record.update(info)
        self.restarts.append(record)
        if self.tracer is not None:
            self.tracer.instant("worker_restart", cat="faults",
                                who="watchdog", worker=index, reason=reason)

    # ------------------------------------------------------------------
    def gauge_probes(self) -> Dict[str, object]:
        """Sampler probes (see :mod:`repro.obs.metrics`)."""
        return {"workers_restarted": lambda: float(len(self.restarts))}

    def __repr__(self) -> str:
        return (f"<Watchdog period={self.period_us}us "
                f"restarts={len(self.restarts)}>")
