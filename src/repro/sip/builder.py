"""Construction of well-formed SIP messages.

A :class:`MessageBuilder` carries one user agent's identity (URI, contact,
Via parameters) and mints requests with fresh branches, tags, and Call-IDs
from a deterministic RNG stream.
"""

from typing import Optional

from repro.sip.dialogs import Dialog
from repro.sip.headers import Address, CSeq, Via
from repro.sip.message import SipRequest, SipResponse
from repro.sip.uri import SipUri

BRANCH_MAGIC = "z9hG4bK"

#: a representative SDP session description (sizes the INVITE like real traffic)
SDP_TEMPLATE = (
    "v=0\r\n"
    "o={user} 2890844526 2890844526 IN IP4 {host}\r\n"
    "s=Session\r\n"
    "c=IN IP4 {host}\r\n"
    "t=0 0\r\n"
    "m=audio 49172 RTP/AVP 0\r\n"
    "a=rtpmap:0 PCMU/8000\r\n"
)


class MessageBuilder:
    """Builds requests and responses for one user agent."""

    def __init__(self, user: str, domain: str, host: str, port: int,
                 transport: str, rng) -> None:
        self.user = user
        self.domain = domain
        self.host = host
        self.port = port
        self.transport = transport.upper()
        self.rng = rng
        self._seq = 0

    # -- identity helpers ---------------------------------------------------
    @property
    def aor_uri(self) -> SipUri:
        return SipUri(self.user, self.domain)

    @property
    def contact_uri(self) -> SipUri:
        return SipUri(self.user, self.host, self.port,
                      {"transport": self.transport.lower()})

    def new_branch(self) -> str:
        return BRANCH_MAGIC + f"{self.rng.getrandbits(48):012x}"

    def new_tag(self) -> str:
        return f"{self.rng.getrandbits(32):08x}"

    def new_call_id(self) -> str:
        return f"{self.rng.getrandbits(48):012x}@{self.host}"

    def _via(self, branch: str) -> str:
        return Via(self.transport, self.host, self.port,
                   {"branch": branch}).render()

    # -- requests -----------------------------------------------------------
    def register(self, registrar_domain: Optional[str] = None,
                 expires: int = 3600) -> SipRequest:
        """A REGISTER binding this agent's contact to its AOR."""
        domain = registrar_domain or self.domain
        request = SipRequest("REGISTER", SipUri(None, domain))
        from_addr = Address(self.aor_uri, params={"tag": self.new_tag()})
        request.add("Via", self._via(self.new_branch()))
        request.add("Max-Forwards", "70")
        request.add("From", from_addr.render())
        request.add("To", Address(self.aor_uri).render())
        request.add("Call-ID", self.new_call_id())
        request.add("CSeq", CSeq(self._next_seq(), "REGISTER").render())
        request.add("Contact", Address(self.contact_uri).render())
        request.add("Expires", str(expires))
        request.add("Content-Length", "0")
        return request

    def invite(self, callee_user: str) -> SipRequest:
        """An INVITE to ``callee_user`` in our domain, with an SDP offer."""
        callee_uri = SipUri(callee_user, self.domain)
        body = SDP_TEMPLATE.format(user=self.user, host=self.host)
        request = SipRequest("INVITE", callee_uri, body=body)
        request.add("Via", self._via(self.new_branch()))
        request.add("Max-Forwards", "70")
        request.add("From",
                    Address(self.aor_uri,
                            params={"tag": self.new_tag()}).render())
        request.add("To", Address(callee_uri).render())
        request.add("Call-ID", self.new_call_id())
        request.add("CSeq", CSeq(self._next_seq(), "INVITE").render())
        request.add("Contact", Address(self.contact_uri).render())
        request.add("Content-Type", "application/sdp")
        request.add("Content-Length", str(len(body)))
        return request

    def ack_for(self, invite: SipRequest, response: SipResponse) -> SipRequest:
        """The ACK acknowledging a 2xx to our INVITE (new branch, per RFC)."""
        target = response.contact.uri if response.contact else invite.uri
        ack = SipRequest("ACK", target)
        ack.add("Via", self._via(self.new_branch()))
        ack.add("Max-Forwards", "70")
        ack.add("From", invite.get("From"))
        ack.add("To", response.get("To"))
        ack.add("Call-ID", invite.call_id)
        ack.add("CSeq", CSeq(invite.cseq.number, "ACK").render())
        ack.add("Content-Length", "0")
        return ack

    def bye(self, dialog: Dialog) -> SipRequest:
        """A BYE terminating an established dialog."""
        request = SipRequest("BYE", dialog.remote_target)
        request.add("Via", self._via(self.new_branch()))
        request.add("Max-Forwards", "70")
        request.add("From",
                    Address(SipUri(dialog.local_user, self.domain),
                            params={"tag": dialog.local_tag}).render())
        request.add("To",
                    Address(SipUri(dialog.remote_user, self.domain),
                            params={"tag": dialog.remote_tag}).render())
        request.add("Call-ID", dialog.call_id)
        request.add("CSeq", CSeq(dialog.next_cseq(), "BYE").render())
        request.add("Content-Length", "0")
        return request

    # -- responses ----------------------------------------------------------
    def response_for(self, request: SipRequest, status: int,
                     to_tag: Optional[str] = None,
                     with_contact: bool = False) -> SipResponse:
        """Build a response echoing the request's routing headers."""
        response = SipResponse(status)
        for value in request.get_all("Via"):
            response.add("Via", value)
        response.add("From", request.get("From"))
        to_value = request.get("To")
        if to_tag is not None and ";tag=" not in to_value:
            to_value = Address.parse(to_value).with_tag(to_tag).render()
        response.add("To", to_value)
        response.add("Call-ID", request.call_id)
        response.add("CSeq", request.get("CSeq"))
        if with_contact:
            response.add("Contact", Address(self.contact_uri).render())
        response.add("Content-Length", "0")
        return response

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def __repr__(self) -> str:
        return f"<MessageBuilder {self.user}@{self.domain} via {self.host}:{self.port}>"
