"""Structured header values: Via, CSeq, and name-addr headers."""

from typing import Dict, Optional

from repro.sip.uri import SipUri


class Via:
    """A Via header value: ``SIP/2.0/UDP host:port;branch=z9hG4bK...``."""

    __slots__ = ("transport", "host", "port", "params")

    def __init__(self, transport: str, host: str, port: int,
                 params: Optional[Dict[str, str]] = None) -> None:
        self.transport = transport.upper()
        self.host = host
        self.port = port
        self.params = params or {}

    @classmethod
    def parse(cls, text: str) -> "Via":
        text = text.strip()
        parts = text.split(";")
        head = parts[0].strip()
        params: Dict[str, str] = {}
        for piece in parts[1:]:
            piece = piece.strip()
            if not piece:
                continue
            if "=" in piece:
                key, value = piece.split("=", 1)
                params[key] = value
            else:
                params[piece] = ""
        try:
            proto, sent_by = head.rsplit(" ", 1)
        except ValueError:
            raise ValueError(f"bad Via: {text!r}") from None
        proto_parts = proto.split("/")
        if len(proto_parts) != 3 or proto_parts[0] != "SIP":
            raise ValueError(f"bad Via protocol: {text!r}")
        transport = proto_parts[2]
        if ":" in sent_by:
            host, port_text = sent_by.split(":", 1)
            port = int(port_text)
        else:
            host, port = sent_by, 5060
        return cls(transport, host, port, params)

    @property
    def branch(self) -> Optional[str]:
        return self.params.get("branch")

    def render(self) -> str:
        out = f"SIP/2.0/{self.transport} {self.host}:{self.port}"
        for key, value in self.params.items():
            out += f";{key}={value}" if value else f";{key}"
        return out

    def __repr__(self) -> str:
        return f"Via({self.render()!r})"


class CSeq:
    """A CSeq header value: ``<sequence> <METHOD>``."""

    __slots__ = ("number", "method")

    def __init__(self, number: int, method: str) -> None:
        self.number = number
        self.method = method.upper()

    @classmethod
    def parse(cls, text: str) -> "CSeq":
        parts = text.split()
        if len(parts) != 2:
            raise ValueError(f"bad CSeq: {text!r}")
        try:
            number = int(parts[0])
        except ValueError:
            raise ValueError(f"bad CSeq number: {text!r}") from None
        return cls(number, parts[1])

    def render(self) -> str:
        return f"{self.number} {self.method}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSeq):
            return NotImplemented
        return (self.number, self.method) == (other.number, other.method)

    def __hash__(self) -> int:
        return hash((self.number, self.method))

    def __repr__(self) -> str:
        return f"CSeq({self.render()!r})"


class Address:
    """A name-addr header value (From/To/Contact):
    ``"Display" <sip:user@host>;tag=...``."""

    __slots__ = ("display", "uri", "params")

    def __init__(self, uri: SipUri, display: Optional[str] = None,
                 params: Optional[Dict[str, str]] = None) -> None:
        self.uri = uri
        self.display = display
        self.params = params or {}

    @classmethod
    def parse(cls, text: str) -> "Address":
        text = text.strip()
        display: Optional[str] = None
        params: Dict[str, str] = {}
        if "<" in text:
            pre, rest = text.split("<", 1)
            pre = pre.strip()
            if pre:
                display = pre.strip('"')
            if ">" not in rest:
                raise ValueError(f"unterminated name-addr: {text!r}")
            uri_text, after = rest.split(">", 1)
            for piece in after.split(";"):
                piece = piece.strip()
                if not piece:
                    continue
                if "=" in piece:
                    key, value = piece.split("=", 1)
                    params[key] = value
                else:
                    params[piece] = ""
        else:
            # addr-spec form: params belong to the header, not the URI
            if ";" in text:
                uri_text, param_text = text.split(";", 1)
                for piece in param_text.split(";"):
                    if not piece:
                        continue
                    if "=" in piece:
                        key, value = piece.split("=", 1)
                        params[key] = value
                    else:
                        params[piece] = ""
            else:
                uri_text = text
        uri = SipUri.parse(uri_text.strip())
        return cls(uri, display, params)

    @property
    def tag(self) -> Optional[str]:
        return self.params.get("tag")

    def with_tag(self, tag: str) -> "Address":
        params = dict(self.params)
        params["tag"] = tag
        return Address(self.uri, self.display, params)

    def render(self) -> str:
        out = ""
        if self.display:
            out += f'"{self.display}" '
        out += f"<{self.uri.render()}>"
        for key, value in self.params.items():
            out += f";{key}={value}" if value else f";{key}"
        return out

    def __repr__(self) -> str:
        return f"Address({self.render()!r})"
