"""UAC/UAS transaction state machines with RFC 3261 timers.

The benchmark phones use these to behave like real SIP endpoints: over
UDP they retransmit requests (timer A/E, exponential backoff from T1) and
final responses (timer G) and give up after 64×T1 (timers B/F/H); over
reliable transports the retransmission timers stay quiet, exactly as the
RFC prescribes.

The *proxy* keeps its transaction state in
:mod:`repro.proxy.txn_table` instead — its retransmissions must run inside
a scheduled timer process and charge simulated CPU.
"""

import enum
from typing import Callable, Optional

from repro.kernel.timerwheel import Timer
from repro.sip.message import SipRequest, SipResponse


class TransactionTimers:
    """RFC 3261 timer values in microseconds."""

    def __init__(self, t1_us: float = 500_000.0, t2_us: float = 4_000_000.0,
                 t4_us: float = 5_000_000.0) -> None:
        self.t1 = t1_us
        self.t2 = t2_us
        self.t4 = t4_us

    @property
    def timeout(self) -> float:
        """Timer B/F/H: transaction gives up after 64×T1."""
        return 64.0 * self.t1


class TxnState(enum.Enum):
    CALLING = "calling"          # request sent, nothing back
    PROCEEDING = "proceeding"    # provisional received/sent
    COMPLETED = "completed"      # final response seen/sent
    TERMINATED = "terminated"


class ClientTransaction:
    """UAC transaction: send a request, absorb the response pattern.

    ``send_fn(text)`` must be non-blocking (datagram send or buffered
    stream write).  Callbacks:

    - ``on_response(response)`` for every matching response;
    - ``on_timeout()`` if no final response within 64×T1.
    """

    def __init__(self, engine, request: SipRequest,
                 send_fn: Callable[[str], None], reliable: bool,
                 timers: Optional[TransactionTimers] = None,
                 on_response: Optional[Callable] = None,
                 on_timeout: Optional[Callable] = None) -> None:
        self.engine = engine
        self.request = request
        self.send_fn = send_fn
        self.reliable = reliable
        self.timers = timers or TransactionTimers()
        self.on_response = on_response
        self.on_timeout = on_timeout
        self.state = TxnState.CALLING
        self.branch = request.top_via.branch if request.top_via else None
        self.retransmissions = 0
        self._interval = self.timers.t1
        self._retransmit_timer = Timer(engine, self._retransmit)
        self._timeout_timer = Timer(engine, self._timed_out)
        self.final_response: Optional[SipResponse] = None

    def start(self) -> None:
        self.send_fn(self.request.render())
        if not self.reliable:
            self._retransmit_timer.start(self._interval)
        self._timeout_timer.start(self.timers.timeout)

    def matches(self, response: SipResponse) -> bool:
        via = response.top_via
        if via is None or via.branch != self.branch:
            return False
        cseq = response.cseq
        return cseq is not None and cseq.method == self.request.method

    def handle_response(self, response: SipResponse) -> None:
        if self.state is TxnState.TERMINATED:
            return
        if response.is_provisional:
            self.state = TxnState.PROCEEDING
            if self.request.method == "INVITE":
                # Timer A stops on a 1xx (RFC 3261 §17.1.1.2): the server
                # transaction now owns reliability.
                self._retransmit_timer.cancel()
            else:
                # Timer E keeps firing in Proceeding for non-INVITE, at
                # the T2 ceiling (§17.1.2.2) — over UDP an overloaded
                # server keeps seeing duplicates until it answers.
                self._interval = self.timers.t2
        else:
            self.final_response = response
            self.state = TxnState.COMPLETED
            self._retransmit_timer.cancel()
            self._timeout_timer.cancel()
            self.state = TxnState.TERMINATED
        if self.on_response is not None:
            self.on_response(response)

    def cancel(self) -> None:
        self.state = TxnState.TERMINATED
        self._retransmit_timer.cancel()
        self._timeout_timer.cancel()

    def abort(self) -> None:
        """Fail the transaction immediately (transport error, RFC 3261
        §8.1.3.1: treat as a 503/timeout)."""
        self._timed_out()

    def _retransmit(self) -> None:
        if self.state is not TxnState.CALLING and not (
                self.state is TxnState.PROCEEDING
                and self.request.method != "INVITE"):
            return
        self.retransmissions += 1
        self.send_fn(self.request.render())
        self._interval = min(self._interval * 2.0, self.timers.t2)
        self._retransmit_timer.start(self._interval)

    def _timed_out(self) -> None:
        if self.state in (TxnState.COMPLETED, TxnState.TERMINATED):
            return
        self.state = TxnState.TERMINATED
        self._retransmit_timer.cancel()
        if self.on_timeout is not None:
            self.on_timeout()

    def __repr__(self) -> str:
        return (f"<ClientTransaction {self.request.method} "
                f"{self.state.value} rtx={self.retransmissions}>")


class ServerTransaction:
    """UAS transaction: absorb request retransmissions, repeat the final
    response until acknowledged (INVITE) or until timer J/H expires."""

    def __init__(self, engine, request: SipRequest,
                 send_fn: Callable[[str], None], reliable: bool,
                 timers: Optional[TransactionTimers] = None) -> None:
        self.engine = engine
        self.request = request
        self.send_fn = send_fn
        self.reliable = reliable
        self.timers = timers or TransactionTimers()
        self.key = request.transaction_key()
        self.state = TxnState.PROCEEDING
        self.last_response: Optional[SipResponse] = None
        self.retransmissions = 0
        self.request_retransmissions_absorbed = 0
        self._interval = self.timers.t1
        self._retransmit_timer = Timer(engine, self._retransmit)
        self._give_up_timer = Timer(engine, self._give_up)

    def respond(self, response: SipResponse) -> None:
        """Send a response; final responses arm the retransmit machinery."""
        self.last_response = response
        self.send_fn(response.render())
        if response.is_final:
            self.state = TxnState.COMPLETED
            if self.request.method == "INVITE":
                if not self.reliable:
                    self._retransmit_timer.start(self._interval)
                self._give_up_timer.start(self.timers.timeout)
            else:
                # Non-INVITE: linger briefly to absorb retransmissions.
                self._give_up_timer.start(
                    self.timers.t4 if not self.reliable else 0.0)

    def handle_request_retransmission(self) -> None:
        """The same request arrived again: replay our last response."""
        self.request_retransmissions_absorbed += 1
        if self.last_response is not None:
            self.send_fn(self.last_response.render())

    def handle_ack(self) -> None:
        """ACK confirms our 2xx: stop retransmitting."""
        self.state = TxnState.TERMINATED
        self._retransmit_timer.cancel()
        self._give_up_timer.cancel()

    @property
    def terminated(self) -> bool:
        return self.state is TxnState.TERMINATED

    def _retransmit(self) -> None:
        if self.state is not TxnState.COMPLETED:
            return
        self.retransmissions += 1
        self.send_fn(self.last_response.render())
        self._interval = min(self._interval * 2.0, self.timers.t2)
        self._retransmit_timer.start(self._interval)

    def _give_up(self) -> None:
        self.state = TxnState.TERMINATED
        self._retransmit_timer.cancel()

    def __repr__(self) -> str:
        return (f"<ServerTransaction {self.request.method} "
                f"{self.state.value}>")
