"""SIP protocol stack (RFC 3261-lite).

Real textual SIP messages flow through the simulation: phones build them,
transports carry their bytes, and the proxy parses, routes and forwards
them.  Only the *time cost* of this work comes from the calibrated cost
model; the work itself is functional.

- :mod:`~repro.sip.message` / :mod:`~repro.sip.parser` — message model,
  parser, serializer, and TCP stream framing on ``Content-Length``.
- :mod:`~repro.sip.uri` / :mod:`~repro.sip.headers` — ``sip:`` URIs and
  structured Via / CSeq / address headers.
- :mod:`~repro.sip.builder` — request/response construction helpers.
- :mod:`~repro.sip.transaction` — UAC/UAS transaction state machines with
  RFC 3261 timers (used by the benchmark phones).
- :mod:`~repro.sip.location` — registrar bindings and the location service.
- :mod:`~repro.sip.dialogs` — per-call dialog state helpers.
"""

from repro.sip.message import SipMessage, SipRequest, SipResponse
from repro.sip.parser import SipParseError, StreamFramer, parse_message
from repro.sip.uri import SipUri
from repro.sip.headers import Address, CSeq, Via
from repro.sip.builder import MessageBuilder
from repro.sip.location import Binding, LocationService
from repro.sip.transaction import (
    ClientTransaction,
    ServerTransaction,
    TransactionTimers,
)
from repro.sip.dialogs import Dialog

__all__ = [
    "SipMessage",
    "SipRequest",
    "SipResponse",
    "SipParseError",
    "StreamFramer",
    "parse_message",
    "SipUri",
    "Address",
    "CSeq",
    "Via",
    "MessageBuilder",
    "Binding",
    "LocationService",
    "ClientTransaction",
    "ServerTransaction",
    "TransactionTimers",
    "Dialog",
]
