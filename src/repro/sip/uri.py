"""``sip:`` URI parsing and rendering."""

from typing import Dict, Optional


class SipUri:
    """A SIP uniform resource identifier: ``sip:user@host:port;params``."""

    __slots__ = ("user", "host", "port", "params")

    def __init__(self, user: Optional[str], host: str,
                 port: Optional[int] = None,
                 params: Optional[Dict[str, str]] = None) -> None:
        self.user = user
        self.host = host
        self.port = port
        self.params = params or {}

    @classmethod
    def parse(cls, text: str) -> "SipUri":
        """Parse a URI; raises ValueError on malformed input."""
        text = text.strip()
        if not text.startswith("sip:"):
            raise ValueError(f"not a sip: URI: {text!r}")
        rest = text[4:]
        params: Dict[str, str] = {}
        if ";" in rest:
            rest, param_text = rest.split(";", 1)
            for piece in param_text.split(";"):
                if not piece:
                    continue
                if "=" in piece:
                    key, value = piece.split("=", 1)
                    params[key] = value
                else:
                    params[piece] = ""
        user: Optional[str] = None
        if "@" in rest:
            user, rest = rest.split("@", 1)
            if not user:
                raise ValueError(f"empty user part: {text!r}")
        port: Optional[int] = None
        if ":" in rest:
            rest, port_text = rest.split(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(f"bad port in URI: {text!r}") from None
        if not rest:
            raise ValueError(f"empty host: {text!r}")
        return cls(user, rest, port, params)

    @property
    def aor(self) -> str:
        """The address-of-record key used by the location service."""
        if self.user is None:
            return self.host
        return f"{self.user}@{self.host}"

    def render(self) -> str:
        out = "sip:"
        if self.user is not None:
            out += f"{self.user}@"
        out += self.host
        if self.port is not None:
            out += f":{self.port}"
        for key, value in self.params.items():
            out += f";{key}={value}" if value else f";{key}"
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, SipUri):
            return NotImplemented
        return (self.user, self.host, self.port, self.params) == \
            (other.user, other.host, other.port, other.params)

    def __hash__(self) -> int:
        return hash((self.user, self.host, self.port))

    def __repr__(self) -> str:
        return f"SipUri({self.render()!r})"
