"""SIP message model: requests and responses with ordered headers."""

from typing import List, Optional, Tuple

from repro.sip.headers import Address, CSeq, Via
from repro.sip.uri import SipUri

SIP_VERSION = "SIP/2.0"

#: compact form → canonical header name (RFC 3261 §7.3.3)
COMPACT_FORMS = {
    "v": "Via",
    "f": "From",
    "t": "To",
    "i": "Call-ID",
    "m": "Contact",
    "l": "Content-Length",
    "c": "Content-Type",
    "k": "Supported",
    "s": "Subject",
    "e": "Content-Encoding",
}

REASON_PHRASES = {
    100: "Trying",
    180: "Ringing",
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    480: "Temporarily Unavailable",
    481: "Call/Transaction Does Not Exist",
    482: "Loop Detected",
    483: "Too Many Hops",
    486: "Busy Here",
    500: "Server Internal Error",
    503: "Service Unavailable",
}


class SipMessage:
    """Common behaviour of requests and responses."""

    def __init__(self, headers: Optional[List[Tuple[str, str]]] = None,
                 body: str = "") -> None:
        #: ordered (name, value) pairs, names in canonical capitalization
        self.headers: List[Tuple[str, str]] = list(headers or [])
        self.body = body

    # -- generic header access -------------------------------------------
    def get(self, name: str) -> Optional[str]:
        """First value of header ``name`` (case-insensitive), or None."""
        lname = name.lower()
        for hname, value in self.headers:
            if hname.lower() == lname:
                return value
        return None

    def get_all(self, name: str) -> List[str]:
        lname = name.lower()
        return [value for hname, value in self.headers
                if hname.lower() == lname]

    def add(self, name: str, value: str) -> None:
        self.headers.append((name, value))

    def add_first(self, name: str, value: str) -> None:
        self.headers.insert(0, (name, value))

    def set(self, name: str, value: str) -> None:
        """Replace the first occurrence (or append)."""
        lname = name.lower()
        for i, (hname, __) in enumerate(self.headers):
            if hname.lower() == lname:
                self.headers[i] = (hname, value)
                return
        self.add(name, value)

    def remove_first(self, name: str) -> Optional[str]:
        lname = name.lower()
        for i, (hname, value) in enumerate(self.headers):
            if hname.lower() == lname:
                del self.headers[i]
                return value
        return None

    # -- structured accessors ----------------------------------------------
    @property
    def vias(self) -> List[Via]:
        return [Via.parse(value) for value in self.get_all("Via")]

    @property
    def top_via(self) -> Optional[Via]:
        value = self.get("Via")
        return Via.parse(value) if value is not None else None

    @property
    def call_id(self) -> Optional[str]:
        return self.get("Call-ID")

    @property
    def cseq(self) -> Optional[CSeq]:
        value = self.get("CSeq")
        return CSeq.parse(value) if value is not None else None

    @property
    def from_addr(self) -> Optional[Address]:
        value = self.get("From")
        return Address.parse(value) if value is not None else None

    @property
    def to_addr(self) -> Optional[Address]:
        value = self.get("To")
        return Address.parse(value) if value is not None else None

    @property
    def contact(self) -> Optional[Address]:
        value = self.get("Contact")
        return Address.parse(value) if value is not None else None

    @property
    def content_length(self) -> int:
        value = self.get("Content-Length")
        return int(value) if value is not None else 0

    @property
    def max_forwards(self) -> Optional[int]:
        value = self.get("Max-Forwards")
        return int(value) if value is not None else None

    def transaction_key(self) -> Tuple:
        """RFC 3261 §17.2.3-style matching key: top Via branch + CSeq
        method (so ACK matches its INVITE's transaction)."""
        via = self.top_via
        branch = via.branch if via is not None else None
        cseq = self.cseq
        method = cseq.method if cseq is not None else None
        if method == "ACK":
            method = "INVITE"
        return (branch, method)

    # -- serialization -------------------------------------------------------
    def start_line(self) -> str:
        raise NotImplementedError

    def render(self) -> str:
        """Serialize to wire text (CRLF line endings)."""
        lines = [self.start_line()]
        wrote_content_length = False
        for name, value in self.headers:
            if name.lower() == "content-length":
                wrote_content_length = True
                value = str(len(self.body))
            lines.append(f"{name}: {value}")
        if not wrote_content_length:
            lines.append(f"Content-Length: {len(self.body)}")
        return "\r\n".join(lines) + "\r\n\r\n" + self.body

    @property
    def wire_size(self) -> int:
        return len(self.render())


class SipRequest(SipMessage):
    """A SIP request: ``METHOD sip:uri SIP/2.0``."""

    def __init__(self, method: str, uri: SipUri,
                 headers: Optional[List[Tuple[str, str]]] = None,
                 body: str = "") -> None:
        super().__init__(headers, body)
        self.method = method.upper()
        self.uri = uri

    @property
    def is_request(self) -> bool:
        return True

    def start_line(self) -> str:
        return f"{self.method} {self.uri.render()} {SIP_VERSION}"

    def __repr__(self) -> str:
        return f"<SipRequest {self.method} {self.uri.render()}>"


class SipResponse(SipMessage):
    """A SIP response: ``SIP/2.0 200 OK``."""

    def __init__(self, status: int, reason: Optional[str] = None,
                 headers: Optional[List[Tuple[str, str]]] = None,
                 body: str = "") -> None:
        super().__init__(headers, body)
        self.status = status
        self.reason = reason if reason is not None else \
            REASON_PHRASES.get(status, "Unknown")

    @property
    def is_request(self) -> bool:
        return False

    @property
    def is_provisional(self) -> bool:
        return 100 <= self.status < 200

    @property
    def is_final(self) -> bool:
        return self.status >= 200

    @property
    def is_success(self) -> bool:
        return 200 <= self.status < 300

    def start_line(self) -> str:
        return f"{SIP_VERSION} {self.status} {self.reason}"

    def __repr__(self) -> str:
        return f"<SipResponse {self.status} {self.reason}>"
