"""Registrar bindings and the location service.

The proxy routes requests by looking up the callee's address-of-record
here (§2).  For TCP, a binding also remembers the *connection* the phone
registered over, because the proxy must deliver requests to the phone on
an existing connection rather than dialing out.
"""

from typing import Dict, Optional

from repro.sip.uri import SipUri


class Binding:
    """One registered contact for an address-of-record."""

    __slots__ = ("aor", "contact", "addr", "port", "transport", "conn",
                 "assoc", "registered_at", "expires_us")

    def __init__(self, aor: str, contact: SipUri, addr: str, port: int,
                 transport: str, conn=None, assoc=None,
                 registered_at: float = 0.0,
                 expires_us: float = 3_600_000_000.0) -> None:
        self.aor = aor
        self.contact = contact
        self.addr = addr
        self.port = port
        self.transport = transport.upper()
        #: TCP connection the phone registered over (server-side object)
        self.conn = conn
        #: SCTP association, for the §6 architecture
        self.assoc = assoc
        self.registered_at = registered_at
        self.expires_us = expires_us

    def expired(self, now: float) -> bool:
        return now > self.registered_at + self.expires_us

    def __repr__(self) -> str:
        return (f"<Binding {self.aor} -> {self.addr}:{self.port} "
                f"({self.transport})>")


class LocationService:
    """The usrloc table: AOR → binding.

    OpenSER backs this with MySQL; the (calibrated) lookup cost is charged
    by the proxy's cost model, not here.
    """

    def __init__(self) -> None:
        self._bindings: Dict[str, Binding] = {}
        self.lookups = 0
        self.misses = 0

    def register(self, binding: Binding) -> None:
        """Install or refresh a binding (latest registration wins)."""
        self._bindings[binding.aor] = binding

    def unregister(self, aor: str) -> None:
        self._bindings.pop(aor, None)

    def lookup(self, aor: str, now: Optional[float] = None) -> Optional[Binding]:
        self.lookups += 1
        binding = self._bindings.get(aor)
        if binding is None:
            self.misses += 1
            return None
        if now is not None and binding.expired(now):
            self.misses += 1
            return None
        return binding

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        return f"<LocationService bindings={len(self._bindings)}>"
