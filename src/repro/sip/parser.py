"""SIP wire-format parsing and TCP stream framing.

``parse_message`` handles one complete message (as UDP delivers it).
``StreamFramer`` does what a TCP receiver must do itself (§3.1): find the
header/body boundary, read ``Content-Length``, and cut complete messages
out of an unbounded byte stream — the reason only one OpenSER worker may
read a given connection.
"""

from typing import List, Optional, Tuple, Union

from repro.sip.message import (
    COMPACT_FORMS,
    SIP_VERSION,
    SipMessage,
    SipRequest,
    SipResponse,
)
from repro.sip.uri import SipUri

MAX_MESSAGE_BYTES = 65536


class SipParseError(ValueError):
    """Malformed SIP on the wire."""


#: headers whose canonical capitalization is irregular (RFC 3261 §20)
_IRREGULAR_NAMES = {
    "call-id": "Call-ID",
    "cseq": "CSeq",
    "www-authenticate": "WWW-Authenticate",
    "mime-version": "MIME-Version",
    "sip-etag": "SIP-ETag",
    "sip-if-match": "SIP-If-Match",
}


def _canonical(name: str) -> str:
    name = name.strip()
    lower = name.lower()
    if lower in COMPACT_FORMS:
        return COMPACT_FORMS[lower]
    if lower in _IRREGULAR_NAMES:
        return _IRREGULAR_NAMES[lower]
    return "-".join(part.capitalize() if part.islower() or part.isupper()
                    else part
                    for part in name.split("-"))


def _parse_headers(lines: List[str]) -> List[Tuple[str, str]]:
    headers: List[Tuple[str, str]] = []
    for line in lines:
        if not line:
            continue
        if line[0] in " \t":
            # folded continuation line (deprecated but legal)
            if not headers:
                raise SipParseError(f"continuation without header: {line!r}")
            name, value = headers[-1]
            headers[-1] = (name, value + " " + line.strip())
            continue
        if ":" not in line:
            raise SipParseError(f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        if not name.strip():
            raise SipParseError(f"empty header name: {line!r}")
        headers.append((_canonical(name), value.strip()))
    return headers


def parse_message(text: str) -> Union[SipRequest, SipResponse]:
    """Parse one complete SIP message from wire text."""
    if not text:
        raise SipParseError("empty message")
    if "\r\n\r\n" in text:
        head, body = text.split("\r\n\r\n", 1)
    else:
        head, body = text.rstrip("\r\n"), ""
    lines = head.split("\r\n")
    start = lines[0]
    headers = _parse_headers(lines[1:])
    message: Union[SipRequest, SipResponse]
    if start.startswith(SIP_VERSION + " "):
        parts = start.split(" ", 2)
        if len(parts) < 3:
            raise SipParseError(f"malformed status line: {start!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise SipParseError(f"bad status code: {start!r}") from None
        if not 100 <= status <= 699:
            raise SipParseError(f"status code out of range: {status}")
        message = SipResponse(status, parts[2], headers, body)
    else:
        parts = start.split(" ")
        if len(parts) != 3 or parts[2] != SIP_VERSION:
            raise SipParseError(f"malformed request line: {start!r}")
        try:
            uri = SipUri.parse(parts[1])
        except ValueError as exc:
            raise SipParseError(str(exc)) from None
        message = SipRequest(parts[0], uri, headers, body)
    declared = message.get("Content-Length")
    if declared is not None:
        try:
            declared_len = int(declared)
        except ValueError:
            raise SipParseError(f"bad Content-Length: {declared!r}") from None
        if declared_len != len(body):
            raise SipParseError(
                f"Content-Length {declared_len} != body {len(body)}")
    return message


class StreamFramer:
    """Incremental framer for SIP over a bytestream.

    Feed it raw chunks; it returns the complete message texts found so
    far.  State persists across feeds, exactly as a worker's per-connection
    read buffer does.
    """

    def __init__(self, max_message_bytes: int = MAX_MESSAGE_BYTES) -> None:
        self._buffer = ""
        self.max_message_bytes = max_message_bytes
        self.messages_framed = 0

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: str) -> List[str]:
        """Append ``data`` and extract every complete message."""
        self._buffer += data
        out: List[str] = []
        while True:
            message = self._try_extract()
            if message is None:
                break
            out.append(message)
            self.messages_framed += 1
        if len(self._buffer) > self.max_message_bytes:
            raise SipParseError(
                f"oversized message: {len(self._buffer)} buffered bytes "
                "without a complete frame")
        return out

    def _try_extract(self) -> Optional[str]:
        boundary = self._buffer.find("\r\n\r\n")
        if boundary < 0:
            return None
        head = self._buffer[:boundary]
        body_start = boundary + 4
        content_length = 0
        for line in head.split("\r\n")[1:]:
            name, __, value = line.partition(":")
            if name.strip().lower() in ("content-length", "l"):
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise SipParseError(
                        f"bad Content-Length while framing: {value!r}"
                    ) from None
                break
        end = body_start + content_length
        if len(self._buffer) < end:
            return None
        message = self._buffer[:end]
        self._buffer = self._buffer[end:]
        return message
