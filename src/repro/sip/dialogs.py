"""Dialog state: what a phone remembers about an established call."""

from typing import Optional

from repro.sip.message import SipRequest, SipResponse
from repro.sip.uri import SipUri


class Dialog:
    """A confirmed dialog (RFC 3261 §12), as seen from one side."""

    __slots__ = ("call_id", "local_user", "remote_user", "local_tag",
                 "remote_tag", "remote_target", "_cseq")

    def __init__(self, call_id: str, local_user: str, remote_user: str,
                 local_tag: str, remote_tag: str, remote_target: SipUri,
                 cseq: int = 1) -> None:
        self.call_id = call_id
        self.local_user = local_user
        self.remote_user = remote_user
        self.local_tag = local_tag
        self.remote_tag = remote_tag
        self.remote_target = remote_target
        self._cseq = cseq

    @classmethod
    def from_invite_success(cls, invite: SipRequest,
                            response: SipResponse) -> "Dialog":
        """Caller-side dialog from our INVITE and its 2xx response."""
        from_addr = invite.from_addr
        to_addr = response.to_addr
        target = response.contact.uri if response.contact else invite.uri
        return cls(
            call_id=invite.call_id,
            local_user=from_addr.uri.user,
            remote_user=to_addr.uri.user,
            local_tag=from_addr.tag or "",
            remote_tag=to_addr.tag or "",
            remote_target=target,
            cseq=invite.cseq.number,
        )

    @classmethod
    def from_uas_invite(cls, invite: SipRequest, local_tag: str) -> "Dialog":
        """Callee-side dialog from a received INVITE and the tag we minted."""
        from_addr = invite.from_addr
        to_addr = invite.to_addr
        target = invite.contact.uri if invite.contact else \
            SipUri(from_addr.uri.user, from_addr.uri.host)
        return cls(
            call_id=invite.call_id,
            local_user=to_addr.uri.user,
            remote_user=from_addr.uri.user,
            local_tag=local_tag,
            remote_tag=from_addr.tag or "",
            remote_target=target,
        )

    def next_cseq(self) -> int:
        self._cseq += 1
        return self._cseq

    @property
    def key(self) -> tuple:
        """Dialog id: Call-ID plus both tags (order-insensitive)."""
        return (self.call_id, frozenset((self.local_tag, self.remote_tag)))

    def __repr__(self) -> str:
        return (f"<Dialog {self.local_user}<->{self.remote_user} "
                f"call={self.call_id[:10]}...>")
