"""Baseline idle-connection management: scan everything (§5.2).

OpenSER's supervisor "examined every TCP connection object in the shared
hash table while holding a lock" on each sweep, and "even the worker
processes examined every connection they owned".  Under the 50 ops/conn
churn workload, the population of lingering connections makes this sweep
— and the lock hold time — blow up, which the paper's profile shows as a
~3× increase in the idle-close function plus a storm of ``sched_yield``
in the kernel profile.
"""

from typing import List

from repro.proxy.conn_table import ConnRecord, ConnTable
from repro.sim.primitives import Compute


class ScanIdleStrategy:
    """Examine every connection object on every pass."""

    name = "scan"

    def __init__(self, costs, timeout_us: float) -> None:
        self.costs = costs
        self.timeout_us = timeout_us
        #: optional span tracer (set by the owning server when tracing)
        self.tracer = None

    # -- activity hooks (free for the scan strategy) -----------------------
    def on_activity(self, record: ConnRecord, now: float):
        record.last_activity = now
        return
        yield  # pragma: no cover - generator form kept for API symmetry

    def on_insert(self, record: ConnRecord, now: float):
        record.last_activity = now
        return
        yield  # pragma: no cover

    def on_release(self, record: ConnRecord, now: float):
        record.released = True
        record.released_at = now
        return
        yield  # pragma: no cover

    # -- sweeps -----------------------------------------------------------
    def supervisor_pass(self, table: ConnTable, now: float, who: str,
                        stats=None, single_phase: bool = False):
        """Generator: sweep the whole shared table under its lock; returns
        records whose *supervisor* grace period expired (destroy these) —
        i.e. released by the worker and idle for another timeout.

        ``single_phase=True`` (the threaded architecture) expires directly
        on inactivity: with shared descriptors there is no worker-return
        step to wait for.
        """
        span = (self.tracer.begin("idle_sweep", cat="proxy", who=who,
                                  strategy=self.name)
                if self.tracer is not None else None)
        yield from table.lock.acquire(who)
        try:
            population = len(table)
            if population:
                yield Compute(self.costs.idle_scan_entry_us * population,
                              "tcpconn_timeout")
            if stats is not None:
                stats.idle_scan_entries_examined += population
                stats.idle_scans += 1
            expired: List[ConnRecord] = []
            # Iterating the live dict is safe: the sweep holds the table
            # lock and the simulator interleaves only at yields.
            for record in table._by_id.values():
                if record.closed:
                    continue
                if single_phase:
                    if now - record.last_activity >= self.timeout_us:
                        expired.append(record)
                elif record.released and \
                        now - record.released_at >= self.timeout_us:
                    expired.append(record)
            if span is not None:
                self.tracer.end(span.set(examined=population,
                                         expired=len(expired)))
            return expired
        finally:
            table.lock.release()

    def worker_pass(self, owned: List[ConnRecord], now: float, who: str,
                    stats=None, worker_index: int = 0):
        """Generator: a worker sweeps the connections it owns; returns the
        idle ones it should close and return to the supervisor."""
        span = (self.tracer.begin("idle_sweep", cat="proxy", who=who,
                                  strategy=self.name)
                if self.tracer is not None and owned else None)
        if owned:
            yield Compute(self.costs.idle_scan_entry_us * len(owned),
                          "tcp_receive_timeout")
        if stats is not None:
            stats.idle_scan_entries_examined += len(owned)
        expired = [record for record in owned
                   if not record.closed and not record.released
                   and now - record.last_activity >= self.timeout_us]
        if span is not None:
            self.tracer.end(span.set(examined=len(owned),
                                     expired=len(expired)))
        return expired
