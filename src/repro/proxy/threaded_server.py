"""The §6 alternative: a multi-threaded TCP architecture.

All workers share one address space and one descriptor table, so
"the threads would be able to use any file descriptor in the server
without any expensive transfer operations" — no supervisor IPC, no fd
passing, no two-step teardown.  What remains is locking: transaction
state (as before) and per-connection send atomicity, so that two threads
cannot interleave bytes on one stream.

Threads are modeled as kernel-scheduled processes sharing the acceptor
thread's descriptor table and the in-memory connection structures, which
is exactly the sharing the paper says a threaded design would get for
free.
"""

from typing import Dict, List, Optional

from repro.kernel.fdtable import EmfileError, FileDescription
from repro.kernel.locks import SpinLock
from repro.kernel.poller import Poller, TickSource
from repro.kernel.sockets import PortExhaustedError
from repro.net.tcp import TcpError, TcpListener, connect as tcp_connect
from repro.proxy.base import BaseProxyServer
from repro.proxy.conn_table import ConnRecord, ConnTable
from repro.proxy.idle_pq import PqIdleStrategy
from repro.proxy.idle_scan import ScanIdleStrategy
from repro.proxy.routing import SendAction, ToBinding, ToSource, ToVia
from repro.sim.events import Signal
from repro.sim.primitives import Compute, Wait
from repro.sip.parser import SipParseError, StreamFramer


class _SharedConn:
    """Per-connection state visible to every thread."""

    __slots__ = ("record", "fd", "framer", "send_lock")

    def __init__(self, record: ConnRecord, fd: int) -> None:
        self.record = record
        self.fd = fd
        self.framer = StreamFramer()
        self.send_lock = SpinLock(f"conn-{record.conn_id}-send")


class ThreadedTcpProxyServer(BaseProxyServer):
    """A threaded, shared-everything TCP proxy."""

    def __init__(self, machine, config, costs=None) -> None:
        super().__init__(machine, config, costs)
        self.listener = TcpListener(machine, config.port,
                                    backlog=config.accept_backlog)
        self.conn_table = ConnTable(self.costs)
        if config.idle_strategy == "pq":
            self.idle = PqIdleStrategy(self.costs, config.idle_timeout_us,
                                       config.workers)
        else:
            self.idle = ScanIdleStrategy(self.costs, config.idle_timeout_us)
        #: shared conn state, keyed by the kernel connection object
        self.conns: Dict[object, _SharedConn] = {}
        #: per-thread inboxes of newly accepted connections
        self._inboxes: List[List[_SharedConn]] = [
            [] for __ in range(config.workers)]
        self._inbox_signals: List[Signal] = [
            Signal(machine.engine, name=f"thr-inbox-{i}")
            for i in range(config.workers)
        ]
        self._acceptor_proc = None
        self._thread_procs: List = []
        self._assign_rr = 0

    def _spawn_processes(self) -> None:
        self._acceptor_proc = self.machine.spawn(
            self._acceptor_body(), "tcp-acceptor",
            nice=self.config.worker_nice)
        self.processes.append(self._acceptor_proc)
        for index in range(self.config.workers):
            proc = self.machine.spawn(
                self._thread_body(index), f"tcp-thread-{index}",
                nice=self.config.worker_nice)
            self._thread_procs.append(proc)
            self.processes.append(proc)
        self.processes.append(self.machine.spawn(
            self._timer_body(), "timer-proc", nice=self.config.worker_nice))

    def worker_processes(self):
        """Crash/hang injection targets; threads share one address space
        and descriptor table, so there is no safe restart path
        (``supports_restart`` stays False)."""
        return list(enumerate(self._thread_procs))

    @property
    def fdtable(self):
        """The single shared descriptor table (the acceptor's)."""
        return self._acceptor_proc.fdtable

    # ==================================================================
    # acceptor thread: accepts and sweeps idle connections
    # ==================================================================
    def _acceptor_body(self):
        who = "tcp-acceptor"
        engine = self.engine
        poller = Poller(engine, name="acceptor-poller")
        poller.add(self.listener)
        tick = TickSource(engine, self.config.worker_idle_tick_us,
                          name="acceptor-tick")
        poller.add(tick)
        while True:
            yield from poller.wait()
            yield Compute(self.costs.poll_syscall_us, "accept_loop")
            while True:
                conn = self.listener.try_accept()
                if conn is None:
                    break
                yield from self._handle_accept(conn, who)
            if tick.pending:
                tick.consume()
                expired = yield from self.idle.supervisor_pass(
                    self.conn_table, engine.now, who, self.stats,
                    single_phase=True)
                for record in expired:
                    yield from self._close_conn(record, who)

    def _handle_accept(self, conn, who: str):
        yield Compute(self.costs.accept_us, "tcp_accept")
        desc = FileDescription(conn, "tcp-conn")
        try:
            fd = self.fdtable.install(desc)
        except EmfileError:
            self.stats.accept_failures += 1
            conn.close()
            return
        self.stats.accepts += 1
        self.stats.conns_created += 1
        thread = self._assign_rr % self.config.workers
        self._assign_rr += 1
        record = yield from self.conn_table.insert(conn, desc, thread,
                                                   self.engine.now, who)
        record.sup_fd = fd
        yield from self.idle.on_insert(record, self.engine.now)
        shared = _SharedConn(record, fd)
        self.conns[conn] = shared
        # Hand to the owning thread: shared memory, not IPC.
        yield Compute(0.5, "queue_push")
        self._inboxes[thread].append(shared)
        self._inbox_signals[thread].fire()

    def _close_conn(self, record: ConnRecord, who: str):
        """Single-phase teardown: one close, no worker round trip."""
        if self.controller is not None:
            self.controller.forget_source(record)
        shared = self.conns.pop(record.conn, None)
        yield Compute(self.costs.fd_close_us, "tcp_close")
        if shared is not None and shared.fd in self.fdtable:
            self.fdtable.close(shared.fd)
        yield from self.conn_table.remove(record, who)
        self.stats.conns_closed_idle += 1

    # ==================================================================
    # worker threads
    # ==================================================================
    def _thread_body(self, index: int):
        who = f"tcp-thread-{index}"
        engine = self.engine
        poller = Poller(engine, name=f"{who}-poller")
        inbox = self._inboxes[index]
        inbox_signal = self._inbox_signals[index]
        poller.add(_InboxSource(inbox, inbox_signal))
        tick = TickSource(engine, self.config.worker_idle_tick_us,
                          name=f"{who}-tick")
        poller.add(tick)
        mine: Dict[object, _SharedConn] = {}
        while True:
            ready = yield from poller.wait()
            yield Compute(self.costs.poll_syscall_us +
                          self.costs.poll_per_fd_us * len(poller.sources),
                          "epoll_wait")
            for source in ready:
                if source is tick:
                    tick.consume()
                    for conn, shared in list(mine.items()):
                        if shared.record.closed:
                            poller.remove(conn)
                            del mine[conn]
                elif isinstance(source, _InboxSource):
                    while inbox:
                        shared = inbox.pop(0)
                        yield Compute(0.5, "queue_pop")
                        mine[shared.record.conn] = shared
                        poller.add(shared.record.conn)
                else:
                    shared = mine.get(source)
                    if shared is None or shared.record.closed:
                        poller.remove(source)
                        mine.pop(source, None)
                        continue
                    yield from self._thread_read(index, who, shared)

    def _thread_read(self, index: int, who: str, shared: _SharedConn):
        data = shared.record.conn.try_recv(65536)
        if data is None:
            return
        yield Compute(self.costs.tcp_recv_us, "tcp_read")
        if data == "":
            yield from self._close_conn(shared.record, who)
            return
        try:
            texts = shared.framer.feed(data)
        except SipParseError:
            self.stats.parse_errors += 1
            yield from self._close_conn(shared.record, who)
            return
        for text in texts:
            yield Compute(self.costs.tcp_frame_us, "tcp_read_headers")
            yield from self.idle.on_activity(shared.record, self.engine.now)
            actions = yield from self.core.process(text,
                                                   source=shared.record,
                                                   who=who)
            contact = self.core.take_register_contact()
            if contact is not None:
                yield from self.conn_table.set_alias(shared.record, contact,
                                                     who)
            for action in actions:
                yield from self._thread_send(index, who, action)

    def _thread_send(self, index: int, who: str, action: SendAction):
        record = yield from self._resolve_target(index, who, action)
        if record is None or record.closed:
            self.stats.send_failures += 1
            return
        shared = self.conns.get(record.conn)
        if shared is None:
            self.stats.send_failures += 1
            return
        # Per-connection lock: atomic use of the stream, no fd transfer.
        yield from shared.send_lock.acquire(who)
        try:
            yield Compute(self.costs.tcp_send_us, "tcp_send")
            sent = record.conn.try_send(action.text)
            if not sent:
                try:
                    yield from record.conn.send(action.text)
                    sent = True
                except TcpError:
                    sent = False
        finally:
            shared.send_lock.release()
        if sent:
            self.stats.messages_sent += 1
            yield from self.idle.on_activity(record, self.engine.now)
        else:
            self.stats.send_failures += 1

    def _resolve_target(self, index: int, who: str, action: SendAction):
        target = action.target
        if isinstance(target, ToSource):
            return target.source
        if isinstance(target, ToBinding):
            binding = target.binding
            record = binding.conn
            if isinstance(record, ConnRecord) and not record.closed:
                return record
            alias = (binding.addr, binding.port)
            record = yield from self.conn_table.lookup_alias(alias, who)
            if record is not None:
                binding.conn = record
                return record
            return (yield from self._connect_out(index, who, binding))
        if isinstance(target, ToVia):
            return (yield from self.conn_table.lookup_alias(
                (target.addr, target.port), who))
        raise TypeError(f"unroutable target {target!r}")

    def _connect_out(self, index: int, who: str, binding):
        yield Compute(self.costs.connect_us, "tcpconn_connect")
        try:
            conn = yield from tcp_connect(self.machine, binding.addr,
                                          binding.port)
        except (PortExhaustedError, TcpError):
            return None
        desc = FileDescription(conn, "tcp-conn")
        try:
            fd = self.fdtable.install(desc)
        except EmfileError:
            conn.close()
            return None
        self.stats.outbound_connects += 1
        self.stats.conns_created += 1
        record = yield from self.conn_table.insert(conn, desc, index,
                                                   self.engine.now, who)
        record.sup_fd = fd
        yield from self.idle.on_insert(record, self.engine.now)
        yield from self.conn_table.set_alias(
            record, (binding.addr, binding.port), who)
        shared = _SharedConn(record, fd)
        self.conns[conn] = shared
        self._inboxes[index].append(shared)
        self._inbox_signals[index].fire()
        binding.conn = record
        return record

    def _timer_send(self, action: SendAction):
        self.stats.send_failures += 1
        return
        yield  # pragma: no cover


class _InboxSource:
    """Poller source over a thread's new-connection inbox."""

    __slots__ = ("inbox", "readable_signal")

    def __init__(self, inbox: List, signal: Signal) -> None:
        self.inbox = inbox
        self.readable_signal = signal

    def readable(self) -> bool:
        return bool(self.inbox)
