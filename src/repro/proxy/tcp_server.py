"""The Fig. 1 architecture: TCP supervisor + connection-owning workers.

The supervisor accepts every connection, keeps a descriptor copy for each,
hands ownership to a worker over IPC, answers workers' descriptor
requests, and tears down idle connections.  Workers read (only) the
connections they own, frame SIP messages out of the bytestream, process
them, and — to forward on a connection they do not own — request a
descriptor from the supervisor, *blocking* until it answers (§3.1).

The two §5 fixes are switchable via :class:`~repro.proxy.config.ProxyConfig`:

- ``fd_cache=True`` — workers keep received descriptors (Fig. 4);
- ``idle_strategy="pq"`` — timeout-ordered sweeps (Fig. 5).
"""

from typing import Dict, List, Optional

from repro.kernel.fdtable import EmfileError, FileDescription
from repro.kernel.ipc import FdPayload, IpcChannel, IpcMessage, receive_fd
from repro.kernel.poller import Poller, TickSource
from repro.kernel.sockets import PortExhaustedError
from repro.net.tcp import TcpError, TcpListener, connect as tcp_connect
from repro.proxy.base import BaseProxyServer
from repro.proxy.conn_table import ConnRecord, ConnTable
from repro.proxy.fd_cache import FdCache
from repro.proxy.idle_pq import PqIdleStrategy
from repro.proxy.idle_scan import ScanIdleStrategy
from repro.proxy.routing import SendAction, ToBinding, ToSource, ToVia
from repro.sim.primitives import Compute
from repro.sip.parser import SipParseError, StreamFramer


class _OwnedConn:
    """A worker's view of a connection it owns."""

    __slots__ = ("record", "fd", "framer")

    def __init__(self, record: ConnRecord, fd: int) -> None:
        self.record = record
        self.fd = fd
        self.framer = StreamFramer()


class TcpProxyServer(BaseProxyServer):
    """OpenSER over TCP."""

    def __init__(self, machine, config, costs=None) -> None:
        super().__init__(machine, config, costs)
        self.listener = TcpListener(machine, config.port,
                                    backlog=config.accept_backlog)
        self.conn_table = ConnTable(self.costs)
        if config.idle_strategy == "pq":
            self.idle = PqIdleStrategy(self.costs, config.idle_timeout_us,
                                       config.workers)
        else:
            self.idle = ScanIdleStrategy(self.costs, config.idle_timeout_us)
        engine = machine.engine
        #: supervisor -> worker: connection assignments (with fd)
        self.assign_chans = [
            IpcChannel(engine, capacity=config.ipc_capacity,
                       name=f"assign-{i}")
            for i in range(config.workers)
        ]
        #: worker <-> supervisor: fd requests/responses, releases
        self.req_chans = [
            IpcChannel(engine, capacity=config.ipc_capacity, name=f"req-{i}")
            for i in range(config.workers)
        ]
        self.fd_caches: List[Optional[FdCache]] = [None] * config.workers
        self._worker_procs: List = []
        self._sup_proc = None
        self._assign_rr = 0
        self.supports_restart = True
        tracer = self.tracer
        if tracer is not None:
            for chan in self.assign_chans + self.req_chans:
                chan.tracer = tracer
            self.conn_table.lock.tracer = tracer
            self.idle.tracer = tracer
            idle_lock = getattr(self.idle, "lock", None)
            if idle_lock is not None:
                idle_lock.tracer = tracer
        if self.causal is not None:
            # Blocked IPC sends/receives hint their wait reason so a
            # worker stalled in the §3.1 fd round trip attributes the
            # stall to the message it is processing.
            for chan in self.assign_chans + self.req_chans:
                chan.causal = self.causal

    def queue_fill(self) -> float:
        """IPC backlog fill — TCP's analogue of a full receive buffer:
        the supervisor has accepted/assigned work faster than workers
        drain it."""
        chans = self.assign_chans + self.req_chans
        pending = sum(chan.pending_total() for chan in chans)
        return pending / (self.config.ipc_capacity * len(chans))

    # -- fault-injection / watchdog surface -----------------------------
    def worker_processes(self):
        return list(enumerate(self._worker_procs))

    def worker_work_pending(self, index: int) -> bool:
        if (self.assign_chans[index].pending_total() +
                self.req_chans[index].pending_total()) > 0:
            return True
        # A hung worker's starvation shows up on the connections it owns
        # (phones keep writing), not on its IPC queues.
        return any(record.conn.readable()
                   for record in self.conn_table.all_records()
                   if record.owner == index and not record.closed
                   and not record.released)

    def ipc_topology(self):
        """The §6 wait-for edges: the supervisor blocked on a channel
        waits on that channel's worker, and vice versa."""
        topo = []
        for index in range(self.config.workers):
            worker = f"worker-{index}"
            topo.append((self.assign_chans[index].a, "supervisor", worker))
            topo.append((self.assign_chans[index].b, worker, "supervisor"))
            topo.append((self.req_chans[index].a, worker, "supervisor"))
            topo.append((self.req_chans[index].b, "supervisor", worker))
        return topo

    def restart_worker(self, index: int):
        """Replace worker ``index``: reap the process, drop its in-flight
        IPC, close its descriptors, invalidate its fd-cache, re-dispatch
        the connections it owned, spawn a successor.

        Draining the assign channel fires its writable signal, which
        un-wedges a supervisor blocked in the §6 deadlock."""
        engine = self.engine
        who = f"tcp-worker-{index}"
        old = self._worker_procs[index]
        old.kill()
        # kill() closes the generator, so finally-blocks normally release
        # any held spinlock; a worker suspended *inside* acquire/release
        # cannot run its cleanup, so force-break the lock like a robust
        # futex would.
        for lock in (self.conn_table.lock, self.txn_table.lock,
                     self.timer_list.lock, getattr(self.idle, "lock", None)):
            if lock is not None and lock.held and lock.owner == who:
                lock.release()
        # In-flight messages reference descriptors and a dead peer;
        # drain both channels (dropping queue fd references) before the
        # successor attaches.
        self.assign_chans[index].drain()
        self.req_chans[index].drain()
        if self.causal is not None:
            # The dead worker never ran its ctx_end; without this the
            # successor (same process name) would inherit a stale trace id.
            self.causal.ctx_end(f"{self.machine.name}/{who}")
        # Close everything the dead worker held: its owned-connection
        # fds and its fd-cache entries must not pin sockets open.  The
        # supervisor's copies keep live connections alive.
        if old.fdtable is not None:
            old.fdtable.close_all()
        self.fd_caches[index] = None
        proc = self.machine.spawn(self._worker_body(index), who,
                                  nice=self.config.worker_nice)
        self._worker_procs[index] = proc
        self.processes[self.processes.index(old)] = proc
        proc.start()
        # Re-dispatch the connections the dead worker owned so their
        # phones see service again instead of a silent socket.
        redispatched = shed = 0
        endpoint = self.assign_chans[index].a
        for record in self.conn_table.all_records():
            if record.owner != index or record.closed or record.released:
                continue
            if record.desc.closed or record.sup_fd is None or \
                    not endpoint.try_send(IpcMessage(
                        "assign", payload=record, fd=FdPayload(record.desc))):
                # Unrecoverable (or buffer full): surrender the record to
                # the supervisor's idle teardown.
                record.released = True
                record.released_at = engine.now
                shed += 1
            else:
                redispatched += 1
        self.stats.workers_restarted += 1
        self.stats.conns_redispatched += redispatched
        self.stats.conns_shed_on_restart += shed
        return {"redispatched": redispatched, "shed": shed}

    def _spawn_processes(self) -> None:
        self._sup_proc = self.machine.spawn(
            self._supervisor_body(), "tcp-supervisor",
            nice=self.config.supervisor_nice)
        self.processes.append(self._sup_proc)
        for index in range(self.config.workers):
            proc = self.machine.spawn(self._worker_body(index),
                                      f"tcp-worker-{index}",
                                      nice=self.config.worker_nice)
            self._worker_procs.append(proc)
            self.processes.append(proc)
        self.processes.append(self.machine.spawn(
            self._timer_body(), "timer-proc", nice=self.config.worker_nice))

    # ==================================================================
    # supervisor
    # ==================================================================
    def _supervisor_body(self):
        who = "tcp-supervisor"
        engine = self.engine
        poller = Poller(engine, name="sup-poller")
        poller.add(self.listener)
        for chan in self.req_chans:
            poller.add(chan.b)
        # Periodic wake-up so idle sweeps run even with no traffic.
        tick = TickSource(engine, 500_000.0, name="sup-tick")
        poller.add(tick)
        last_scan = engine.now
        while True:
            ready = yield from poller.wait()
            yield Compute(self.costs.poll_syscall_us +
                          self.costs.poll_per_fd_us * len(poller.sources),
                          "tcp_main_loop")
            for source in ready:
                if source is tick:
                    tick.consume()
                elif source is self.listener:
                    while True:
                        conn = self.listener.try_accept()
                        if conn is None:
                            break
                        yield from self._handle_accept(conn, who)
                else:
                    while True:
                        msg = source.try_recv()
                        if msg is None:
                            break
                        yield Compute(self.costs.ipc_recv_us, "ipc_recv")
                        yield from self._handle_worker_msg(source, msg, who)
            if engine.now - last_scan >= self.config.supervisor_scan_interval_us:
                last_scan = engine.now
                expired = yield from self.idle.supervisor_pass(
                    self.conn_table, engine.now, who, self.stats)
                for record in expired:
                    yield from self._destroy_record(record, who)

    def _handle_accept(self, conn, who: str):
        yield Compute(self.costs.accept_us, "tcp_accept")
        fdtable = self._sup_proc.fdtable
        desc = FileDescription(conn, "tcp-conn")
        try:
            sup_fd = fdtable.install(desc)
        except EmfileError:
            self.stats.accept_failures += 1
            conn.close()
            return
        self.stats.accepts += 1
        self.stats.conns_created += 1
        worker = self._assign_rr % self.config.workers
        self._assign_rr += 1
        if self.tracer is not None:
            self.tracer.instant("tcp_accept", cat="proxy",
                                who=f"{self.machine.name}/{who}",
                                worker=worker)
        record = yield from self.conn_table.insert(conn, desc, worker,
                                                   self.engine.now, who)
        record.sup_fd = sup_fd
        yield from self.idle.on_insert(record, self.engine.now)
        yield Compute(self.costs.fd_dup_us + self.costs.ipc_send_us,
                      "send_fd")
        msg = IpcMessage("assign", payload=record, fd=FdPayload(desc))
        endpoint = self.assign_chans[worker].a
        if self.config.supervisor_blocking_send:
            yield from endpoint.send(msg)
        elif not endpoint.try_send(msg):
            # Assignment buffer full: shed the connection.  (try_send took
            # no queue reference, so only the supervisor's fd is closed.)
            self.stats.send_failures += 1
            fdtable.close(sup_fd)
            yield from self.conn_table.remove(record, who)

    def _handle_worker_msg(self, endpoint, msg: IpcMessage, who: str):
        if msg.kind == "fd-req":
            record: ConnRecord = msg.payload
            self.stats.fd_requests += 1
            tracer = self.tracer
            span = (tracer.begin("tcpconn_send_fd", cat="ipc",
                                 who=f"{self.machine.name}/{who}",
                                 conn=record.conn_id)
                    if tracer is not None else None)
            yield Compute(self.costs.fd_request_cost(len(self.conn_table)) +
                          self.costs.fd_dup_us, "tcpconn_send_fd")
            if record.closed or record.desc.closed:
                reply = IpcMessage("fd-gone", payload=record)
            else:
                reply = IpcMessage("fd-resp", payload=record,
                                   fd=FdPayload(record.desc))
            yield Compute(self.costs.ipc_send_us, "ipc_send")
            if not endpoint.try_send(reply):
                yield from endpoint.send(reply)
            if span is not None:
                tracer.end(span.set(gone=reply.kind == "fd-gone"))
        elif msg.kind == "release":
            record = msg.payload
            self.stats.conns_released_by_worker += 1
            yield from self.idle.on_release(record, self.engine.now)
        elif msg.kind == "new-outbound":
            record = msg.payload
            yield Compute(self.costs.fd_install_us, "receive_fd")
            fdtable = self._sup_proc.fdtable
            try:
                record.sup_fd = receive_fd(msg, fdtable)
            except EmfileError:
                msg.fd.description.decref()
                record.sup_fd = None
        else:
            raise ValueError(f"unknown supervisor message {msg.kind!r}")

    def _destroy_record(self, record: ConnRecord, who: str):
        fdtable = self._sup_proc.fdtable
        if self.controller is not None:
            # A dead upstream must not keep holding overload-window slots.
            self.controller.forget_source(record)
        yield Compute(self.costs.fd_close_us, "tcp_close")
        if record.sup_fd is not None and record.sup_fd in fdtable:
            fdtable.close(record.sup_fd)
        record.sup_fd = None
        yield from self.conn_table.remove(record, who)
        self.stats.conns_closed_idle += 1

    # ==================================================================
    # workers
    # ==================================================================
    def _worker_body(self, index: int):
        who = f"tcp-worker-{index}"
        engine = self.engine
        proc = self._worker_procs[index]
        fdtable = proc.fdtable
        cache = FdCache(fdtable, who) if self.config.fd_cache else None
        if cache is not None and self.tracer is not None:
            cache.tracer = self.tracer
        if cache is not None and self.causal is not None:
            cache.causal = self.causal
        self.fd_caches[index] = cache
        assign_ep = self.assign_chans[index].b
        req_ep = self.req_chans[index].a
        poller = Poller(engine, name=f"{who}-poller")
        poller.causal = self.causal
        poller.add(assign_ep)
        tick = TickSource(engine, self.config.worker_idle_tick_us,
                          name=f"{who}-tick")
        poller.add(tick)
        owned: Dict[object, _OwnedConn] = {}
        ctx = _WorkerCtx(index, who, fdtable, cache, req_ep, poller, owned,
                         proc_name=f"{self.machine.name}/{who}")
        heartbeats = self.worker_heartbeat_us
        while True:
            heartbeats[index] = engine.now
            ready = yield from poller.wait()
            heartbeats[index] = engine.now
            yield Compute(self.costs.poll_syscall_us +
                          self.costs.poll_per_fd_us * len(poller.sources),
                          "epoll_wait")
            for source in ready:
                if source is tick:
                    tick.consume()
                elif source is assign_ep:
                    while True:
                        msg = assign_ep.try_recv()
                        if msg is None:
                            break
                        yield from self._worker_take_conn(ctx, msg)
                else:
                    oc = owned.get(source)
                    if oc is None:
                        poller.remove(source)
                        continue
                    yield from self._worker_read(ctx, oc)
            # §5.2: "even the worker processes examined every connection
            # they owned" — OpenSER's receive loop checks timeouts every
            # iteration, so the examination cost scales with both the
            # owned population and the loop rate.  (The tick source only
            # guarantees a wake-up when the connections have gone quiet.)
            yield from self._worker_idle_pass(ctx)

    def _worker_take_conn(self, ctx: "_WorkerCtx", msg: IpcMessage):
        yield Compute(self.costs.ipc_recv_us + self.costs.fd_install_us,
                      "receive_fd")
        record: ConnRecord = msg.payload
        try:
            fd = receive_fd(msg, ctx.fdtable)
        except EmfileError:
            msg.fd.description.decref()
            yield Compute(self.costs.ipc_send_us, "ipc_send")
            yield from ctx.req_ep.send(IpcMessage("release", payload=record))
            return
        ctx.owned[record.conn] = _OwnedConn(record, fd)
        ctx.poller.add(record.conn)

    def _worker_read(self, ctx: "_WorkerCtx", oc: _OwnedConn):
        data = oc.record.conn.try_recv(65536)
        if data is None:
            return
        yield Compute(self.costs.tcp_recv_us, "tcp_read")
        if data == "":
            # Peer closed: drop our side.
            yield from self._worker_drop_conn(ctx, oc.record)
            return
        try:
            texts = oc.framer.feed(data)
        except SipParseError:
            self.stats.parse_errors += 1
            yield from self._worker_drop_conn(ctx, oc.record)
            return
        causal = self.causal
        for text in texts:
            if causal is not None:
                # Everything the worker does until this message is fully
                # handled — framing, core processing, the fd round trip,
                # the sends — attributes to its trace id.
                causal.ctx_begin(ctx.proc_name, causal.sniff(text))
            try:
                yield Compute(self.costs.tcp_frame_us, "tcp_read_headers")
                yield from self.idle.on_activity(oc.record, self.engine.now)
                actions = yield from self.core.process(text, source=oc.record,
                                                       who=ctx.who)
                contact = self.core.take_register_contact()
                if contact is not None:
                    yield from self.conn_table.set_alias(oc.record, contact,
                                                         ctx.who)
                for action in actions:
                    yield from self._worker_send(ctx, action)
            finally:
                if causal is not None:
                    causal.ctx_end(ctx.proc_name)

    # -- sending ----------------------------------------------------------
    def _worker_send(self, ctx: "_WorkerCtx", action: SendAction):
        record = yield from self._resolve_target(ctx, action)
        if record is None or record.closed:
            self.stats.send_failures += 1
            return
        yield from self._send_on_record(ctx, record, action.text)

    def _resolve_target(self, ctx: "_WorkerCtx", action: SendAction):
        target = action.target
        if isinstance(target, ToSource):
            return target.source
        if isinstance(target, ToBinding):
            binding = target.binding
            record = binding.conn
            if isinstance(record, ConnRecord) and not record.closed and \
                    not record.released:
                return record
            alias = (binding.addr, binding.port)
            record = yield from self.conn_table.lookup_alias(alias, ctx.who)
            if record is not None:
                binding.conn = record
                return record
            record = yield from self._connect_out(ctx, binding)
            return record
        if isinstance(target, ToVia):
            return (yield from self.conn_table.lookup_alias(
                (target.addr, target.port), ctx.who))
        raise TypeError(f"unroutable target {target!r}")

    def _connect_out(self, ctx: "_WorkerCtx", binding):
        """Generator: no live connection to the phone — dial out (consumes
        a server ephemeral port; the §4.3 starvation ingredient)."""
        yield Compute(self.costs.connect_us, "tcpconn_connect")
        try:
            conn = yield from tcp_connect(self.machine, binding.addr,
                                          binding.port)
        except (PortExhaustedError, TcpError):
            return None
        desc = FileDescription(conn, "tcp-conn")
        try:
            fd = ctx.fdtable.install(desc)
        except EmfileError:
            conn.close()
            return None
        self.stats.outbound_connects += 1
        self.stats.conns_created += 1
        record = yield from self.conn_table.insert(conn, desc, ctx.index,
                                                   self.engine.now, ctx.who)
        yield from self.idle.on_insert(record, self.engine.now)
        yield from self.conn_table.set_alias(
            record, (binding.addr, binding.port), ctx.who)
        ctx.owned[conn] = _OwnedConn(record, fd)
        ctx.poller.add(conn)
        # The supervisor keeps a copy of every socket in the server (§3.1).
        yield Compute(self.costs.fd_dup_us + self.costs.ipc_send_us,
                      "send_fd")
        yield from ctx.req_ep.send(IpcMessage("new-outbound", payload=record,
                                              fd=FdPayload(desc)))
        binding.conn = record
        return record

    def _send_on_record(self, ctx: "_WorkerCtx", record: ConnRecord,
                        text: str):
        tracer = self.tracer
        span = (tracer.begin("worker_send", cat="proxy",
                             who=f"{self.machine.name}/{ctx.who}",
                             conn=record.conn_id)
                if tracer is not None else None)
        oc = ctx.owned.get(record.conn)
        close_after = False
        fd: Optional[int] = None
        if oc is not None:
            fd = oc.fd  # we own it; our reader fd works for writing too
            if span is not None:
                span.set(fd_via="owned")
        else:
            if ctx.cache is not None:
                yield Compute(self.costs.fd_cache_probe_us, "fd_cache_lookup")
                fd = ctx.cache.probe(record)
                if fd is not None:
                    self.stats.fd_cache_hits += 1
                else:
                    self.stats.fd_cache_misses += 1
                if span is not None:
                    tracer.instant(
                        "fd_cache_hit" if fd is not None else "fd_cache_miss",
                        cat="proxy", who=f"{self.machine.name}/{ctx.who}",
                        conn=record.conn_id)
            if fd is None:
                if span is not None:
                    span.set(fd_via="supervisor")
                fd = yield from self._request_fd(ctx, record)
                if fd is None:
                    self.stats.send_failures += 1
                    if span is not None:
                        tracer.end(span.set(outcome="fd_gone"))
                    return
                if ctx.cache is not None:
                    ctx.cache.store(record, fd)
                else:
                    close_after = True
            elif span is not None:
                span.set(fd_via="cache")
        yield Compute(self.costs.tcp_send_us, "tcp_send")
        sent = record.conn.try_send(text)
        if not sent:
            try:
                yield from record.conn.send(text)
                sent = True
            except TcpError:
                sent = False
        if sent:
            self.stats.messages_sent += 1
            yield from self.idle.on_activity(record, self.engine.now)
        else:
            self.stats.send_failures += 1
        if close_after and fd in ctx.fdtable:
            # The baseline behaviour the fd cache exists to fix (§5.1):
            # immediately close the descriptor we just fetched.
            yield Compute(self.costs.fd_close_us, "tcp_close_fd")
            ctx.fdtable.close(fd)
        if span is not None:
            tracer.end(span.set(outcome="sent" if sent else "failed"))

    def _request_fd(self, ctx: "_WorkerCtx", record: ConnRecord):
        """Generator: the §3.1 IPC round trip — the worker blocks."""
        tracer = self.tracer
        span = (tracer.begin("fd_request_rtt", cat="ipc",
                             who=f"{self.machine.name}/{ctx.who}",
                             conn=record.conn_id)
                if tracer is not None else None)
        yield Compute(self.costs.ipc_send_us, "ipc_send_fd_request")
        yield from ctx.req_ep.send(IpcMessage("fd-req", payload=record))
        reply = yield from ctx.req_ep.recv()
        yield Compute(self.costs.ipc_recv_us, "ipc_recv")
        if span is not None:
            tracer.end(span.set(gone=reply.kind != "fd-resp"))
        if reply.kind != "fd-resp" or reply.fd is None:
            return None
        yield Compute(self.costs.fd_install_us, "receive_fd")
        try:
            return receive_fd(reply, ctx.fdtable)
        except EmfileError:
            reply.fd.description.decref()
            return None

    # -- idle management ------------------------------------------------
    def _worker_idle_pass(self, ctx: "_WorkerCtx"):
        records = [oc.record for oc in ctx.owned.values()]
        expired = yield from self.idle.worker_pass(
            records, self.engine.now, ctx.who, self.stats,
            worker_index=ctx.index)
        for record in expired:
            yield from self._worker_drop_conn(ctx, record)
        if ctx.cache is not None:
            evicted = ctx.cache.evict_dead()
            if evicted:
                yield Compute(self.costs.fd_close_us * evicted,
                              "tcp_close_fd")

    def _worker_drop_conn(self, ctx: "_WorkerCtx", record: ConnRecord):
        """Close our fds for a connection and return it to the supervisor
        (the first half of the §3.1 two-step teardown)."""
        oc = ctx.owned.pop(record.conn, None)
        if oc is None:
            return
        ctx.poller.remove(record.conn)
        yield Compute(self.costs.fd_close_us, "tcp_close_fd")
        if oc.fd in ctx.fdtable:
            ctx.fdtable.close(oc.fd)
        if ctx.cache is not None:
            ctx.cache.evict_record(record)
        yield Compute(self.costs.ipc_send_us, "ipc_send")
        yield from ctx.req_ep.send(IpcMessage("release", payload=record))

    # -- timer process -----------------------------------------------------
    def _timer_send(self, action: SendAction):
        # TCP is reliable: the timer list only ever carries GC entries, so
        # no retransmission should reach here (§3.1: "superfluous").
        self.stats.send_failures += 1
        return
        yield  # pragma: no cover - keep generator shape


class _WorkerCtx:
    """Bundles one worker's mutable state for the helper generators."""

    __slots__ = ("index", "who", "fdtable", "cache", "req_ep", "poller",
                 "owned", "proc_name")

    def __init__(self, index, who, fdtable, cache, req_ep, poller,
                 owned, proc_name=None) -> None:
        self.index = index
        self.who = who
        self.fdtable = fdtable
        self.cache = cache
        self.req_ep = req_ep
        self.poller = poller
        self.owned = owned
        #: full scheduler process name (the causal context key)
        self.proc_name = proc_name if proc_name is not None else who
