"""The §5.3 fix: timeout-ordered priority queues for idle connections.

Connections are kept sorted by their timeout deadline, so a sweep only
touches connections that have actually expired (plus ones whose deadline
moved, which are lazily re-queued).  The supervisor's queue lives in
shared memory — workers update a connection's position when they send or
receive on it — and each worker additionally keeps a local queue of the
connections it owns.

Implementation: a lazy heap.  Activity does not eagerly re-heapify;
instead the sweep pops entries whose *queued* deadline expired, re-pushes
any whose true deadline moved forward, and returns the genuinely idle
ones.  The paper's point survives intact: sweep cost is proportional to
expired-or-moved entries, not to the total connection population — but
each queue update is synchronized work, which is why the PQ "has
negligible effect" on the workloads with little connection churn (§5.3).
"""

import heapq
from typing import List, Tuple

from repro.kernel.locks import SpinLock
from repro.proxy.conn_table import ConnRecord, ConnTable
from repro.sim.primitives import Compute


class _LazyHeap:
    """A deadline heap with lazy deletion/move."""

    __slots__ = ("entries", "_seq")

    def __init__(self) -> None:
        self.entries: List[Tuple[float, int, ConnRecord]] = []
        self._seq = 0

    def push(self, deadline: float, record: ConnRecord) -> None:
        self._seq += 1
        heapq.heappush(self.entries, (deadline, self._seq, record))

    def __len__(self) -> int:
        return len(self.entries)


class PqIdleStrategy:
    """Priority-queue idle management (supervisor + per-worker queues)."""

    name = "pq"

    def __init__(self, costs, timeout_us: float, n_workers: int) -> None:
        self.costs = costs
        self.timeout_us = timeout_us
        #: optional span tracer (set by the owning server when tracing)
        self.tracer = None
        #: shared (shm) queue holding every connection in the server
        self.shared = _LazyHeap()
        #: guards the shared queue (workers update it on every message)
        self.lock = SpinLock("idle_pq")
        #: one local queue per worker, holding only owned connections
        self.worker_heaps = [_LazyHeap() for __ in range(n_workers)]

    # -- activity hooks -----------------------------------------------------
    def on_activity(self, record: ConnRecord, now: float):
        """Generator: a message moved this connection's deadline; update
        the shared queue's ordering (synchronized — §5.3)."""
        record.last_activity = now
        yield from self.lock.acquire("pq-update")
        try:
            yield Compute(self.costs.idle_pq_op_us, "pq_update")
            # Lazy move: the stale entry is discarded at sweep time.
            record.pq_hint = now + self.timeout_us
        finally:
            self.lock.release()

    def on_insert(self, record: ConnRecord, now: float):
        record.last_activity = now
        yield from self.lock.acquire("pq-insert")
        try:
            yield Compute(self.costs.idle_pq_op_us, "pq_insert")
            record.pq_hint = now + self.timeout_us
            self.shared.push(record.pq_hint, record)
        finally:
            self.lock.release()
        owner = record.owner
        if owner is not None:
            self.worker_heaps[owner].push(record.pq_hint, record)

    def on_release(self, record: ConnRecord, now: float):
        record.released = True
        record.released_at = now
        yield from self.lock.acquire("pq-release")
        try:
            yield Compute(self.costs.idle_pq_op_us, "pq_update")
            record.pq_hint = now + self.timeout_us
            self.shared.push(record.pq_hint, record)
        finally:
            self.lock.release()

    # -- sweeps -----------------------------------------------------------
    def supervisor_pass(self, table: ConnTable, now: float, who: str,
                        stats=None, single_phase: bool = False):
        """Generator: pop only expired queue entries; re-push moved ones.

        ``single_phase=True`` (threaded architecture): expire directly on
        inactivity instead of waiting for a worker release.
        """
        span = (self.tracer.begin("idle_sweep", cat="proxy", who=who,
                                  strategy=self.name)
                if self.tracer is not None else None)
        yield from self.lock.acquire(who)
        try:
            expired: List[ConnRecord] = []
            seen = set()
            ops = 0
            heap = self.shared.entries
            while heap and heap[0][0] <= now:
                __, __, record = heapq.heappop(heap)
                ops += 1
                if record.closed or id(record) in seen:
                    continue
                seen.add(id(record))
                deadline = (record.last_activity + self.timeout_us
                            if single_phase
                            else record.idle_deadline(self.timeout_us))
                if deadline > now:
                    # Deadline moved (activity, or awaiting worker release):
                    # reinsert, as §5.3 describes.
                    self.shared.push(deadline, record)
                    ops += 1
                    continue
                if record.released or single_phase:
                    expired.append(record)
                else:
                    # Idle but not yet returned by its worker: the
                    # supervisor must wait; requeue one timeout out.
                    self.shared.push(now + self.timeout_us, record)
                    ops += 1
            if ops:
                yield Compute(self.costs.idle_pq_op_us * ops, "pq_sweep")
            if stats is not None:
                stats.pq_operations += ops
                stats.idle_scans += 1
            if span is not None:
                self.tracer.end(span.set(examined=ops,
                                         expired=len(expired)))
            return expired
        finally:
            self.lock.release()

    def worker_pass(self, owned: List[ConnRecord], now: float, who: str,
                    stats=None, worker_index: int = 0):
        """Generator: pop expired entries from this worker's local queue."""
        heap = self.worker_heaps[worker_index]
        if not heap.entries or heap.entries[0][0] > now:
            return []  # O(1) peek: nothing can have expired
        owned_set = set(id(record) for record in owned)
        expired: List[ConnRecord] = []
        seen = set()
        ops = 0
        while heap.entries and heap.entries[0][0] <= now:
            __, __, record = heapq.heappop(heap.entries)
            ops += 1
            if record.closed or record.released or \
                    id(record) not in owned_set or id(record) in seen:
                continue
            seen.add(id(record))
            deadline = record.last_activity + self.timeout_us
            if deadline > now:
                heap.push(deadline, record)
                ops += 1
                continue
            expired.append(record)
        if ops:
            yield Compute(self.costs.idle_pq_op_us * ops, "pq_worker_sweep")
            if self.tracer is not None:
                self.tracer.instant("idle_sweep", cat="proxy", who=who,
                                    strategy=self.name, examined=ops,
                                    expired=len(expired))
        if stats is not None:
            stats.pq_operations += ops
        return expired
