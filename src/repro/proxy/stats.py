"""Proxy-side accounting.

The paper reports *client-measured* throughput (the manager aggregates
phone reports); these counters are the server-side view used for
cross-checking, profiles, and the §4.3 diagnostics (idle cores, EMFILE,
port exhaustion).
"""

from typing import Dict, Optional


class ProxyStats:
    """Counters for one proxy instance."""

    def __init__(self) -> None:
        # message flow
        self.messages_received = 0
        self.messages_sent = 0
        self.parse_errors = 0
        self.routing_failures = 0
        # transactions (server view)
        self.transactions_created = 0
        self.transactions_completed = 0
        self.invite_completed = 0
        self.bye_completed = 0
        self.retransmissions_sent = 0
        self.retransmissions_absorbed = 0
        self.transactions_timed_out = 0
        # overload control
        self.invites_rejected = 0
        # registration
        self.registrations = 0
        # TCP architecture specifics
        self.accepts = 0
        self.accept_failures = 0
        self.outbound_connects = 0
        self.fd_requests = 0
        self.fd_cache_hits = 0
        self.fd_cache_misses = 0
        self.conns_created = 0
        self.conns_closed_idle = 0
        self.conns_released_by_worker = 0
        self.idle_scan_entries_examined = 0
        self.idle_scans = 0
        self.pq_operations = 0
        self.send_failures = 0
        # fault recovery (watchdog restarts)
        self.workers_restarted = 0
        self.conns_redispatched = 0
        self.conns_shed_on_restart = 0

    def snapshot(self) -> Dict[str, float]:
        """A copy of all numeric counters (for windowed measurements).

        Every int *and* float field is captured; bools are excluded (a
        plain ``isinstance(value, int)`` filter would count them and
        silently drop float-valued counters).
        """
        return {name: value for name, value in vars(self).items()
                if isinstance(value, (int, float))
                and not isinstance(value, bool)}

    def delta(self, earlier: Dict[str, float]) -> Dict[str, float]:
        """Counter increases since an earlier :meth:`snapshot`."""
        current = self.snapshot()
        return {name: current[name] - earlier.get(name, 0)
                for name in current}

    @property
    def fd_cache_hit_rate(self) -> Optional[float]:
        total = self.fd_cache_hits + self.fd_cache_misses
        if total == 0:
            return None
        return self.fd_cache_hits / total

    def __repr__(self) -> str:
        return (f"<ProxyStats rx={self.messages_received} "
                f"tx={self.messages_sent} "
                f"completed={self.transactions_completed}>")
