"""The paper's subject: an OpenSER-style stateful SIP proxy.

Four interchangeable architectures over one transport-independent core:

- :mod:`~repro.proxy.udp_server` — Fig. 2: symmetric worker processes, a
  shared transaction table, and a retransmission timer process.
- :mod:`~repro.proxy.tcp_server` — Fig. 1: a connection-managing
  supervisor plus workers that own connections, request descriptors over
  IPC, and sweep for idle connections.  Hosts the two §5 fixes: the
  per-worker fd cache and priority-queue idle management.
- :mod:`~repro.proxy.threaded_server` — §6: every worker shares one
  address space/descriptor table, so connections need locks, not IPC.
- :mod:`~repro.proxy.sctp_server` — §6: UDP-style symmetric workers over
  kernel-managed associations.

All CPU costs come from :class:`~repro.proxy.costs.CostModel`.
"""

from repro.proxy.config import ProxyConfig
from repro.proxy.costs import CostModel
from repro.proxy.stats import ProxyStats
from repro.proxy.server import build_proxy

__all__ = ["ProxyConfig", "CostModel", "ProxyStats", "build_proxy"]
