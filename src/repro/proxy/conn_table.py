"""The shared TCP connection hash table (§3.1).

Each accepted (or dialed-out) connection gets a :class:`ConnRecord` in a
shared, spinlock-guarded table.  Records are additionally indexed by
*alias* — the peer's advertised SIP address ``(host, port)`` — which is
how the proxy finds an existing connection to a phone when forwarding
(OpenSER's ``tcpconn`` aliases).  A phone that reconnects (the
non-persistent workloads) re-aliases to its new connection; the old one
lingers until the idle machinery closes it, which is precisely the load
the §5.2/§5.3 experiments measure.
"""

from typing import Dict, List, Optional, Tuple

from repro.kernel.locks import SpinLock
from repro.sim.primitives import Compute


class ConnRecord:
    """Shared-memory state for one TCP connection."""

    __slots__ = (
        "conn_id", "conn", "desc", "owner", "alias", "last_activity",
        "released", "released_at", "closed", "created_at", "pq_hint",
        "sup_fd",
    )

    def __init__(self, conn_id: int, conn, desc, owner: Optional[int],
                 created_at: float) -> None:
        self.conn_id = conn_id
        #: the supervisor's fd number for this socket (its "copy")
        self.sup_fd: Optional[int] = None
        #: the kernel TCP connection object (server side)
        self.conn = conn
        #: the supervisor's FileDescription for the socket
        self.desc = desc
        #: index of the worker that owns (reads) this connection
        self.owner = owner
        #: the peer's advertised (host, port), set on first SIP message
        self.alias: Optional[Tuple[str, int]] = None
        self.last_activity = created_at
        #: worker has closed its fds and returned the conn (§3.1 teardown)
        self.released = False
        self.released_at = 0.0
        #: supervisor has destroyed the record
        self.closed = False
        self.created_at = created_at
        #: lazily-tracked deadline for the priority-queue strategy
        self.pq_hint = 0.0

    def idle_deadline(self, timeout_us: float) -> float:
        if self.released:
            return self.released_at + timeout_us
        return self.last_activity + timeout_us

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "released" if self.released else f"owner={self.owner}")
        return f"<ConnRecord #{self.conn_id} {state} alias={self.alias}>"


class ConnTable:
    """Shared hash table of connection records."""

    def __init__(self, costs, lock: Optional[SpinLock] = None) -> None:
        self.costs = costs
        self.lock = lock or SpinLock("tcp_conn_hash")
        self._by_id: Dict[int, ConnRecord] = {}
        self._by_alias: Dict[Tuple[str, int], ConnRecord] = {}
        self._next_id = 1
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def all_records(self) -> List[ConnRecord]:
        """Direct view for the idle strategies (they hold the lock)."""
        return list(self._by_id.values())

    # -- generators charging CPU under the shared lock ---------------------
    def insert(self, conn, desc, owner: Optional[int], now: float,
               who: str = "?"):
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.conn_create_us, "tcpconn_new")
            record = ConnRecord(self._next_id, conn, desc, owner, now)
            self._next_id += 1
            self._by_id[record.conn_id] = record
            if len(self._by_id) > self.peak_size:
                self.peak_size = len(self._by_id)
            return record
        finally:
            self.lock.release()

    def lookup_alias(self, alias: Tuple[str, int], who: str = "?"):
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.conn_hash_lookup_us, "tcpconn_get")
            record = self._by_alias.get(alias)
            if record is not None and (record.closed or record.released):
                return None
            return record
        finally:
            self.lock.release()

    def set_alias(self, record: ConnRecord, alias: Tuple[str, int],
                  who: str = "?"):
        """Point ``alias`` at ``record`` (a reconnecting phone re-aliases)."""
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.conn_hash_lookup_us, "tcpconn_add_alias")
            old = record.alias
            if old is not None and self._by_alias.get(old) is record:
                del self._by_alias[old]
            record.alias = alias
            self._by_alias[alias] = record
        finally:
            self.lock.release()

    def remove(self, record: ConnRecord, who: str = "?"):
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.conn_destroy_us, "tcpconn_destroy")
            record.closed = True
            self._by_id.pop(record.conn_id, None)
            if record.alias is not None and \
                    self._by_alias.get(record.alias) is record:
                del self._by_alias[record.alias]
        finally:
            self.lock.release()
