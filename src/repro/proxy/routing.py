"""Send actions produced by the proxy core.

The core is transport-independent: it decides *what* to send *where* in
SIP terms, and the architecture modules (UDP/TCP/SCTP/threaded servers)
translate targets into sockets, connections and descriptors.
"""

from typing import Optional

from repro.sip.location import Binding


class Target:
    """Where a message should go."""

    __slots__ = ()


class ToSource(Target):
    """Back to wherever the triggering message arrived from."""

    __slots__ = ("source",)

    def __init__(self, source) -> None:
        self.source = source

    def __repr__(self) -> str:
        return f"ToSource({self.source!r})"


class ToBinding(Target):
    """To a registered contact (request forwarding)."""

    __slots__ = ("binding",)

    def __init__(self, binding: Binding) -> None:
        self.binding = binding

    def __repr__(self) -> str:
        return f"ToBinding({self.binding!r})"


class ToVia(Target):
    """To a Via header's sent-by address (stateless response forwarding,
    RFC 3261 §16.11)."""

    __slots__ = ("addr", "port")

    def __init__(self, addr: str, port: int) -> None:
        self.addr = addr
        self.port = port

    def __repr__(self) -> str:
        return f"ToVia({self.addr}:{self.port})"


class SendAction:
    """One message the worker must transmit."""

    __slots__ = ("text", "target", "kind")

    def __init__(self, text: str, target: Target, kind: str) -> None:
        self.text = text
        self.target = target
        #: "reply" | "forward_request" | "forward_response" | "retransmit"
        self.kind = kind

    @property
    def size(self) -> int:
        return len(self.text)

    def __repr__(self) -> str:
        return f"<SendAction {self.kind} {len(self.text)}B -> {self.target!r}>"
