"""Proxy configuration (the knobs §4.3 discusses, and the §5 fixes)."""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.overload import VALID_CONTROLLERS

VALID_TRANSPORTS = ("udp", "tcp", "sctp", "tcp-threaded")
VALID_IDLE_STRATEGIES = ("scan", "pq")


@dataclass
class ProxyConfig:
    """Configuration of one proxy instance.

    Defaults mirror the paper's tuned setup (§4.3): supervisor at nice
    −20, idle timeout reduced from OpenSER's 120 s default to 10 s, and
    the worker counts the authors selected (24 for UDP, 32 for TCP) are
    chosen by the experiment driver.
    """

    transport: str = "udp"
    workers: int = 24
    port: int = 5060
    domain: str = "example.com"
    stateful: bool = True

    # -- the §5 fixes ---------------------------------------------------
    fd_cache: bool = False          #: Fig. 4: per-worker conn→fd cache
    idle_strategy: str = "scan"     #: Fig. 5: "scan" (baseline) or "pq"

    # -- §4.3 configuration issues ---------------------------------------
    supervisor_nice: int = -20
    worker_nice: int = 0
    idle_timeout_us: float = 10_000_000.0    #: 10 s (OpenSER default: 120 s)

    # -- plumbing sizes ----------------------------------------------------
    ipc_capacity: int = 256          #: supervisor<->worker channel, messages
    udp_rcvbuf_datagrams: int = 384
    tcp_rcvbuf_bytes: int = 65536
    accept_backlog: int = 1024
    shm_buckets: int = 16384         #: transaction hash table buckets

    # -- timer process -------------------------------------------------------
    timer_tick_us: float = 100_000.0         #: retransmission scan period
    sip_t1_us: float = 500_000.0             #: RFC 3261 T1
    sip_t2_us: float = 4_000_000.0

    # -- idle management cadence ----------------------------------------------
    #: workers check their owned connections this often
    worker_idle_tick_us: float = 1_000_000.0
    #: minimum gap between supervisor sweeps.  OpenSER swept from its main
    #: loop; under load that loop turns over far faster than connections
    #: can possibly expire, and its effective sweep cadence is bounded by
    #: timestamp granularity.  50 Hz models that bound; 0 sweeps every
    #: batch (the pathological reading of the code).
    supervisor_scan_interval_us: float = 10_000.0

    # -- failure-mode switches (§6) -----------------------------------------
    #: blocking sends from the supervisor to workers: faithful to OpenSER
    #: and deadlock-prone when ipc_capacity is small
    supervisor_blocking_send: bool = True

    # -- overload control -----------------------------------------------------
    #: admission policy past saturation: "none" (collapse baseline),
    #: "local-occupancy" (occupancy-triggered 503 shedding) or "window"
    #: (per-upstream feedback window) — see :mod:`repro.overload`
    overload_controller: str = "none"
    #: controller tuning knobs, passed through to its constructor
    overload_params: Dict = field(default_factory=dict)

    def validate(self) -> None:
        if self.transport not in VALID_TRANSPORTS:
            raise ValueError(f"unknown transport {self.transport!r}; "
                             f"expected one of {VALID_TRANSPORTS}")
        if self.idle_strategy not in VALID_IDLE_STRATEGIES:
            raise ValueError(f"unknown idle strategy {self.idle_strategy!r}")
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if not -20 <= self.supervisor_nice <= 19:
            raise ValueError("supervisor_nice out of range")
        if self.idle_timeout_us <= 0:
            raise ValueError("idle_timeout_us must be positive")
        if self.overload_controller not in VALID_CONTROLLERS:
            raise ValueError(
                f"unknown overload controller {self.overload_controller!r}; "
                f"expected one of {VALID_CONTROLLERS}")
        if self.overload_controller == "window" and not self.stateful:
            raise ValueError("the window controller tracks in-flight INVITE "
                             "transactions and needs a stateful proxy")

    @property
    def reliable_transport(self) -> bool:
        """Does the transport relieve SIP of retransmission duty?"""
        return self.transport in ("tcp", "tcp-threaded", "sctp")
