"""The §6 SCTP architecture: UDP-style symmetry over a connection-
oriented transport.

SCTP's kernel-managed associations let the proxy keep OpenSER's simple
symmetric-worker design — no supervisor, no descriptor passing, no
user-level idle sweeps — while retaining reliable delivery (so the timer
process carries no retransmission load, only GC).
"""

from repro.net.sctp import SctpEndpoint
from repro.proxy.base import BaseProxyServer
from repro.proxy.routing import SendAction, ToBinding, ToSource, ToVia
from repro.sim.primitives import Compute


class SctpProxyServer(BaseProxyServer):
    """OpenSER over SCTP (one-to-many socket)."""

    def __init__(self, machine, config, costs=None) -> None:
        super().__init__(machine, config, costs)
        self.endpoint = SctpEndpoint(machine, config.port,
                                     rcvbuf_messages=config.udp_rcvbuf_datagrams)

    def _spawn_processes(self) -> None:
        for index in range(self.config.workers):
            self.processes.append(self.machine.spawn(
                self._worker_body(index), f"sctp-worker-{index}",
                nice=self.config.worker_nice))
        self.processes.append(self.machine.spawn(
            self._timer_body(), "timer-proc", nice=self.config.worker_nice))

    # ------------------------------------------------------------------
    def _worker_body(self, index: int):
        who = f"sctp-worker-{index}"
        while True:
            assoc, payload = yield from self.endpoint.recvmsg()
            yield Compute(self.costs.sctp_recv_us, "sctp_rcv_loop")
            actions = yield from self.core.process(payload, source=assoc,
                                                   who=who)
            yield from self._execute(actions)

    def _execute(self, actions):
        for action in actions:
            yield Compute(self.costs.sctp_send_us, "sctp_send")
            assoc = self._resolve(action)
            if assoc is None or not assoc.established:
                self.stats.send_failures += 1
                continue
            self.endpoint.sendmsg(assoc, action.text)
            self.stats.messages_sent += 1

    def _resolve(self, action: SendAction):
        target = action.target
        if isinstance(target, ToSource):
            return target.source
        if isinstance(target, ToBinding):
            binding = target.binding
            assoc = binding.assoc
            if assoc is None:
                # Direct next-hop URI: the kernel already has (or will
                # implicitly set up) the association to that peer.
                assoc = self.endpoint.associations.get(
                    (binding.addr, binding.port))
                binding.assoc = assoc
            return assoc
        if isinstance(target, ToVia):
            return self.endpoint.associations.get((target.addr, target.port))
        raise TypeError(f"unroutable target {target!r}")

    def _timer_send(self, action: SendAction):
        yield Compute(self.costs.sctp_send_us, "sctp_send")
        assoc = self._resolve(action)
        if assoc is not None and assoc.established:
            self.endpoint.sendmsg(assoc, action.text)
            self.stats.messages_sent += 1
