"""Transport-independent SIP proxy logic.

``ProxyCore.process`` is what an OpenSER worker does with one received
message: parse it, match or create transaction state (shared, locked),
route it, and emit the messages to transmit.  It is a generator so that
every step charges calibrated CPU on the simulated cores; the transport
architectures wrap it with their own receive/transmit machinery.
"""

from typing import List, Optional

from repro.proxy.routing import SendAction, ToBinding, ToSource, ToVia
from repro.proxy.txn_table import ProxyTransaction, TimerList, TransactionTable
from repro.sim.primitives import Compute
from repro.sip.builder import BRANCH_MAGIC
from repro.sip.headers import Via
from repro.sip.location import Binding, LocationService
from repro.sip.message import SipRequest, SipResponse
from repro.sip.parser import SipParseError, parse_message

#: how long a completed transaction lingers to absorb retransmissions
GC_LINGER_US = 1_000_000.0


class ProxyCore:
    """The proxy's message-processing brain (shared by all workers)."""

    def __init__(self, engine, config, costs, location: LocationService,
                 txn_table: TransactionTable, timer_list: TimerList,
                 stats, via_host: str) -> None:
        self.engine = engine
        self.config = config
        self.costs = costs
        self.location = location
        self.txn_table = txn_table
        self.timer_list = timer_list
        self.stats = stats
        self.via_host = via_host
        self.via_port = config.port
        self._branch_counter = 0
        self._pending_register_contact = None
        #: optional span tracer (set by BaseProxyServer when tracing)
        self.tracer = None
        #: optional causal tracer (set by BaseProxyServer); the transport
        #: loops own the per-message context, the core only counts the
        #: paths that skip the normal pipeline (503 shed, rtx absorb)
        self.causal = None
        #: optional overload controller (set by BaseProxyServer); None
        #: means no admission check at all — the collapse baseline pays
        #: zero overhead
        self.controller = None

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def process(self, text: str, source, who: str = "worker"):
        """Generator: handle one received message; returns [SendAction]."""
        tracer = self.tracer
        if tracer is None:
            return (yield from self._process(text, source, who))
        span = tracer.begin("process_msg", cat="proxy",
                            who=f"{self.via_host}/{who}",
                            transport=self.config.transport)
        try:
            actions = yield from self._process(text, source, who, span)
        finally:
            tracer.end(span)
        span.set(actions=len(actions))
        return actions

    def _process(self, text: str, source, who: str, span=None):
        self._pending_register_contact = None
        self.stats.messages_received += 1
        controller = self.controller
        if (controller is not None and text.startswith("INVITE ")
                and not controller.admit(self.engine.now, source)):
            # Shed before the full parse: the whole point of 503-based
            # overload control is that rejection costs a fraction of
            # processing (method sniff + shallow header scan), so the
            # server keeps capacity for the calls it does admit.  A
            # rejected retransmission is shed too — the 503 terminates
            # the upstream transaction and stops the retransmit clock.
            return (yield from self._reject_overload(text, source, span))
        parse_span = (self.tracer.begin("parse_msg", cat="proxy",
                                        who=f"{self.via_host}/{who}")
                      if span is not None else None)
        yield Compute(self.costs.parse_cost(len(text), len(self.location)),
                      "parse_msg")
        try:
            message = parse_message(text)
        except SipParseError:
            self.stats.parse_errors += 1
            if parse_span is not None:
                self.tracer.end(parse_span.set(error="parse"))
            return []
        if parse_span is not None:
            self.tracer.end(parse_span)
            span.set(call_id=message.call_id,
                     kind=(message.method if message.is_request
                           else f"{message.status}"))
        if message.is_request:
            return (yield from self._process_request(message, source, who))
        return (yield from self._process_response(message, source, who))

    def _reject_overload(self, text: str, source, span=None):
        """Generator: 503-shed an INVITE the controller refused.

        Charges ``reject_503_us`` — the cost of the method sniff, a
        shallow scan for the headers the 503 must echo, and building the
        tiny response — instead of the full parse/route/forward
        pipeline, and creates **no** transaction state.
        """
        yield Compute(self.costs.reject_503_us, "reject_503")
        try:
            request = parse_message(text)
        except SipParseError:
            self.stats.parse_errors += 1
            return []
        self.stats.invites_rejected += 1
        if span is not None:
            span.set(call_id=request.call_id, kind="INVITE", rejected=True)
        if self.causal is not None:
            self.causal.count("core.rejected_503")
        reply = self._make_response(request, 503, "Service Unavailable")
        reply.add("Retry-After", str(self.controller.retry_after_s))
        return [SendAction(reply.render(), ToSource(source), "reply")]

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def _process_request(self, request: SipRequest, source,
                         who: str) -> List[SendAction]:
        method = request.method
        if method == "REGISTER":
            return (yield from self._process_register(request, source))
        if method == "ACK":
            return (yield from self._process_ack(request, who))
        if method in ("INVITE", "BYE"):
            return (yield from self._process_relay(request, source, who))
        # Anything else: politely decline.
        reply = self._make_response(request, 501, "Not Implemented")
        return [SendAction(reply.render(), ToSource(source), "reply")]

    def _process_register(self, request: SipRequest,
                          source) -> List[SendAction]:
        yield Compute(self.costs.registrar_update_us, "save_usrloc")
        contact = request.contact
        to_addr = request.to_addr
        if contact is None or to_addr is None:
            self.stats.parse_errors += 1
            reply = self._make_response(request, 400)
            return [SendAction(reply.render(), ToSource(source), "reply")]
        binding = Binding(
            aor=to_addr.uri.aor,
            contact=contact.uri,
            addr=contact.uri.host,
            port=contact.uri.port or 5060,
            transport=contact.uri.params.get("transport",
                                             self.config.transport),
            conn=source if self.config.transport in ("tcp", "tcp-threaded")
            else None,
            assoc=source if self.config.transport == "sctp" else None,
            registered_at=self.engine.now,
        )
        self.location.register(binding)
        self.stats.registrations += 1
        self._pending_register_contact = (binding.addr, binding.port)
        reply = self._make_response(request, 200)
        return [SendAction(reply.render(), ToSource(source), "reply")]

    def _process_relay(self, request: SipRequest, source,
                       who: str) -> List[SendAction]:
        upstream_key = request.transaction_key()
        tracer = self.tracer
        match_span = (tracer.begin("txn_match", cat="proxy",
                                   who=f"{self.via_host}/{who}",
                                   method=request.method)
                      if tracer is not None else None)
        txn = yield from self.txn_table.lookup_upstream(upstream_key, who)
        if match_span is not None:
            tracer.end(match_span.set(hit=txn is not None))
        if txn is not None:
            # A retransmission from the caller: the stateful proxy absorbs
            # it and replays the best response it has (§2).
            self.stats.retransmissions_absorbed += 1
            if self.causal is not None:
                self.causal.count("core.rtx_absorbed")
            if txn.last_response_text is not None:
                return [SendAction(txn.last_response_text,
                                   ToSource(txn.source), "reply")]
            return []

        actions: List[SendAction] = []
        self.stats.transactions_created += 1
        trying_text: Optional[str] = None
        if request.method == "INVITE" and self.config.stateful:
            trying = self._make_response(request, 100)
            trying_text = trying.render()
            actions.append(SendAction(trying_text, ToSource(source), "reply"))

        # Max-Forwards (RFC 3261 §16.3 check 2).
        max_forwards = request.max_forwards
        if max_forwards is not None and max_forwards <= 0:
            reply = self._make_response(request, 483)
            return [SendAction(reply.render(), ToSource(source), "reply")]

        yield Compute(self.costs.route_lookup_us, "lookup_contact")
        binding = self._resolve_uri(request.uri)
        if binding is None:
            self.stats.routing_failures += 1
            reply = self._make_response(request, 404)
            return [SendAction(reply.render(), ToSource(source), "reply")]

        forwarded, our_branch = yield from self._build_forward(request)
        if self.config.stateful:
            txn = ProxyTransaction(
                upstream_key=upstream_key,
                our_branch=our_branch,
                method=request.method,
                source=source,
                forward_target=binding,
                forwarded_text=forwarded,
                created_at=self.engine.now,
            )
            txn.last_response_text = trying_text
            yield from self.txn_table.insert(txn, who)
            if not self.config.reliable_transport:
                txn.rtx_interval_us = self.config.sip_t1_us
                yield from self.timer_list.insert(
                    self.engine.now + txn.rtx_interval_us, "rtx",
                    our_branch, who)
        if self.controller is not None and request.method == "INVITE":
            # Charged against the window only once routing succeeded —
            # retransmissions, 404s and 483s never occupy a slot.
            self.controller.note_admitted(source)
        actions.append(SendAction(forwarded, ToBinding(binding),
                                  "forward_request"))
        return actions

    def _process_ack(self, request: SipRequest, who: str) -> List[SendAction]:
        # ACK for a 2xx is end-to-end: route it like a new request, no
        # transaction state (RFC 3261 §16.11 last paragraph behaviour).
        yield Compute(self.costs.route_lookup_us, "lookup_contact")
        binding = self._resolve_uri(request.uri)
        if binding is None:
            self.stats.routing_failures += 1
            return []
        forwarded, __ = yield from self._build_forward(request)
        return [SendAction(forwarded, ToBinding(binding), "forward_request")]

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    def _process_response(self, response: SipResponse, source,
                          who: str) -> List[SendAction]:
        top = response.top_via
        if top is None or top.host != self.via_host:
            self.stats.routing_failures += 1
            return []
        our_branch = top.branch
        yield Compute(self.costs.build_forward_us, "forward_reply")
        response.remove_first("Via")
        if not self.config.stateful:
            # Stateless proxying: forward by the next Via (§16.11).
            next_via = response.top_via
            if next_via is None:
                self.stats.routing_failures += 1
                return []
            return [SendAction(response.render(),
                               ToVia(next_via.host, next_via.port),
                               "forward_response")]
        txn = yield from self.txn_table.lookup_branch(our_branch, who)
        if txn is None:
            self.stats.routing_failures += 1
            return []
        forwarded_text = response.render()
        yield from self.txn_table.update(
            txn, who, responded=True, last_response_text=forwarded_text)
        if response.is_final and not txn.completed:
            txn.completed = True
            self.stats.transactions_completed += 1
            if txn.method == "INVITE":
                self.stats.invite_completed += 1
                if self.controller is not None:
                    self.controller.note_done(
                        txn.source, success=response.status < 300)
            elif txn.method == "BYE":
                self.stats.bye_completed += 1
            yield from self.timer_list.insert(
                self.engine.now + GC_LINGER_US, "gc", our_branch, who)
        return [SendAction(forwarded_text, ToSource(txn.source),
                           "forward_response")]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def take_register_contact(self):
        """The (host, port) contact of a REGISTER handled by the most
        recent ``process`` call on this worker's stack, or None.

        Must be read immediately after ``yield from core.process(...)``
        returns (no intervening yields): the TCP architecture uses it to
        alias the arrival connection to the phone's advertised address.
        """
        contact = self._pending_register_contact
        self._pending_register_contact = None
        return contact

    def _resolve_uri(self, uri) -> Optional[Binding]:
        """Next-hop resolution (RFC 3261 §16.5/§16.6).

        A request-URI in our domain goes through the location service; any
        other URI (a phone's contact, as in mid-dialog ACK/BYE) is a
        direct next hop at its own host:port.
        """
        if uri.host == self.config.domain:
            return self.location.lookup(uri.aor, now=self.engine.now)
        return Binding(
            aor=uri.aor,
            contact=uri,
            addr=uri.host,
            port=uri.port or 5060,
            transport=uri.params.get("transport", self.config.transport),
        )

    def new_branch(self) -> str:
        self._branch_counter += 1
        return f"{BRANCH_MAGIC}-pxy-{self._branch_counter:x}"

    def _build_forward(self, request: SipRequest):
        """Generator: clone-and-forward a request with our Via pushed."""
        yield Compute(self.costs.build_forward_us, "forward_request")
        our_branch = self.new_branch()
        via = Via(self.config.transport.split("-")[0], self.via_host,
                  self.via_port, {"branch": our_branch})
        forwarded = SipRequest(request.method, request.uri,
                               list(request.headers), request.body)
        forwarded.add_first("Via", via.render())
        max_forwards = request.max_forwards
        if max_forwards is not None:
            forwarded.set("Max-Forwards", str(max_forwards - 1))
        return forwarded.render(), our_branch

    def _make_response(self, request: SipRequest, status: int,
                       reason: Optional[str] = None) -> SipResponse:
        response = SipResponse(status, reason)
        for value in request.get_all("Via"):
            response.add("Via", value)
        for name in ("From", "To", "Call-ID", "CSeq"):
            value = request.get(name)
            if value is not None:
                response.add(name, value)
        response.add("Content-Length", "0")
        return response

    # ------------------------------------------------------------------
    # timer-process hooks (retransmission + GC)
    # ------------------------------------------------------------------
    def timer_pass(self, limit: int = 64, who: str = "timer"):
        """Generator: one timer-process sweep; returns retransmit actions."""
        expired = yield from self.timer_list.pop_expired(self.engine.now,
                                                         limit, who)
        actions: List[SendAction] = []
        for kind, branch in expired:
            txn = yield from self.txn_table.lookup_branch(branch, who)
            if txn is None:
                continue
            if kind == "gc":
                if txn.completed:
                    yield from self.txn_table.remove(txn, who)
                continue
            # kind == "rtx": retransmit if still unanswered.
            if txn.responded or txn.completed:
                continue
            age = self.engine.now - txn.created_at
            if age >= 64.0 * self.config.sip_t1_us:
                self.stats.transactions_timed_out += 1
                if self.controller is not None and txn.method == "INVITE":
                    self.controller.note_done(txn.source, success=False)
                yield from self.txn_table.remove(txn, who)
                continue
            yield Compute(self.costs.retransmit_us, "t_retransmit")
            self.stats.retransmissions_sent += 1
            txn.rtx_attempts += 1
            txn.rtx_interval_us = min(txn.rtx_interval_us * 2.0,
                                      self.config.sip_t2_us)
            yield from self.timer_list.insert(
                self.engine.now + txn.rtx_interval_us, "rtx", branch, who)
            actions.append(SendAction(txn.forwarded_text,
                                      ToBinding(txn.forward_target),
                                      "retransmit"))
        return actions
