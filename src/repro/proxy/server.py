"""Facade: build the right architecture from a config."""

from repro.proxy.base import BaseProxyServer
from repro.proxy.config import ProxyConfig
from repro.proxy.costs import CostModel
from repro.proxy.sctp_server import SctpProxyServer
from repro.proxy.tcp_server import TcpProxyServer
from repro.proxy.threaded_server import ThreadedTcpProxyServer
from repro.proxy.udp_server import UdpProxyServer

_ARCHITECTURES = {
    "udp": UdpProxyServer,
    "tcp": TcpProxyServer,
    "sctp": SctpProxyServer,
    "tcp-threaded": ThreadedTcpProxyServer,
}


def build_proxy(machine, config: ProxyConfig,
                costs: CostModel = None) -> BaseProxyServer:
    """Construct (but not start) the proxy architecture ``config`` names.

    Usage::

        proxy = build_proxy(server_machine, ProxyConfig(transport="tcp",
                                                        workers=32,
                                                        fd_cache=True))
        proxy.start()
    """
    config.validate()
    cls = _ARCHITECTURES[config.transport]
    return cls(machine, config, costs)
