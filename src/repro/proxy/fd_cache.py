"""The §5.2 fix: a per-worker connection→descriptor cache.

Before requesting a socket descriptor from the supervisor, a worker
checks its cache; a hit skips both the IPC round trip and the wait for
the supervisor to be scheduled.  A miss falls through to the IPC path and
the received descriptor is cached for reuse.

Cached descriptors pin the connection open (they hold a reference on the
shared :class:`~repro.kernel.fdtable.FileDescription`), so the worker's
idle pass calls :meth:`FdCache.evict_dead` to drop entries whose
connection has been released or closed — otherwise the supervisor could
never finish tearing those connections down.
"""

from typing import Dict, Optional, Tuple

from repro.proxy.conn_table import ConnRecord


class FdCache:
    """conn_id → (fd, record) mapping private to one worker."""

    def __init__(self, fdtable, who: str = "worker") -> None:
        self.fdtable = fdtable
        self.who = who
        self._entries: Dict[int, Tuple[int, ConnRecord]] = {}
        #: optional span tracer (evictions only — probes are traced by
        #: the caller, which knows the send context)
        self.tracer = None
        #: optional causal tracer: hit/miss counters feed the attribution
        #: figure's fd-cache effectiveness line
        self.causal = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def probe(self, record: ConnRecord) -> Optional[int]:
        """The cached fd for a live connection, else None."""
        entry = self._entries.get(record.conn_id)
        if entry is None:
            self.misses += 1
            if self.causal is not None:
                self.causal.count("fdcache.miss")
            return None
        fd, __ = entry
        if record.closed or record.released:
            self._evict(record.conn_id, fd)
            self.misses += 1
            if self.causal is not None:
                self.causal.count("fdcache.miss")
            return None
        self.hits += 1
        if self.causal is not None:
            self.causal.count("fdcache.hit")
        return fd

    def store(self, record: ConnRecord, fd: int) -> None:
        existing = self._entries.get(record.conn_id)
        if existing is not None and existing[0] != fd:
            self._evict(record.conn_id, existing[0])
        self._entries[record.conn_id] = (fd, record)

    def evict_record(self, record: ConnRecord) -> bool:
        """Drop (and close) the cached fd for one connection."""
        entry = self._entries.get(record.conn_id)
        if entry is None:
            return False
        self._evict(record.conn_id, entry[0])
        return True

    def evict_dead(self) -> int:
        """Idle-pass hook: drop entries whose connection is going away."""
        dead = [record for __, record in self._entries.values()
                if record.closed or record.released]
        for record in dead:
            self.evict_record(record)
        return len(dead)

    def _evict(self, conn_id: int, fd: int) -> None:
        del self._entries[conn_id]
        self.evictions += 1
        if self.tracer is not None:
            self.tracer.instant("fd_cache_evict", cat="proxy", who=self.who,
                                conn=conn_id)
        if fd in self.fdtable:
            self.fdtable.close(fd)

    def __repr__(self) -> str:
        return (f"<FdCache {self.who} entries={len(self._entries)} "
                f"hit_rate={self.hits}/{self.hits + self.misses}>")
