"""The calibrated cost model.

Every operation the proxy performs on the server's CPUs has a cost here,
in microseconds of simulated CPU time.  The absolute values were
calibrated once (see ``benchmarks/calibration`` and EXPERIMENTS.md) so
that UDP at 100 clients lands near the paper's 33,695 ops/s on the
modeled 4-core Opteron; every other cell in every figure is *emergent*
from the architecture models, not fitted.

Relative magnitudes encode the paper's measured findings:

- TCP's kernel send/receive path is moderately longer than UDP's (after
  the fd cache removed the IPC, "TCP-related functions" replaced IPC
  functions in the profile top-15 — §5.2), but this difference alone is
  nowhere near the baseline gap;
- each fd request costs both the worker and the supervisor IPC work
  (~12% of CPU time in the baseline profile);
- the baseline idle sweep touches *every* connection object under the
  hash-table lock (§5.2), while the priority queue touches only expired
  ones (§5.3).
"""

from dataclasses import dataclass, field, asdict
from typing import Dict


@dataclass
class CostModel:
    """Per-operation CPU costs (µs) on the server."""

    # -- SIP processing (shared by every architecture) ---------------------
    parse_msg_us: float = 9.0          #: parse one SIP message
    parse_per_100b_us: float = 0.6      #: size-dependent parse component
    route_lookup_us: float = 7.0        #: location-service lookup (cached DB row)
    build_forward_us: float = 4.0       #: Via push/pop, Max-Forwards, serialize
    txn_lookup_us: float = 2.5          #: transaction-table probe (empty table)
    txn_insert_us: float = 3.5
    txn_update_us: float = 1.5
    txn_load_factor_us: float = 1.0     #: extra probe cost at load factor 1.0

    # -- UDP path -----------------------------------------------------------
    udp_recv_us: float = 5.0            #: recvfrom syscall + copy
    udp_send_us: float = 5.0            #: sendto syscall + copy

    # -- TCP path -----------------------------------------------------------
    tcp_recv_us: float = 9.0            #: read syscall + TCP rx processing
    tcp_send_us: float = 9.0            #: write syscall + TCP tx processing
    tcp_frame_us: float = 2.0           #: app-level stream framing per message
    accept_us: float = 20.0             #: accept + server-side handshake work
    connect_us: float = 25.0            #: outbound connect (proxy->phone)
    conn_create_us: float = 6.0         #: TCP connection object + hash insert
    conn_destroy_us: float = 4.0
    conn_hash_lookup_us: float = 1.5    #: find connection record (under lock)
    fd_install_us: float = 1.2          #: install a received descriptor
    fd_close_us: float = 0.8
    fd_dup_us: float = 1.0              #: supervisor duplicating for transfer

    # -- IPC between workers and the supervisor ------------------------------
    ipc_send_us: float = 6.0            #: one blocking send on a unix socket
    ipc_recv_us: float = 6.0
    fd_request_handle_us: float = 4.0   #: supervisor-side bookkeeping per request
    #: extra supervisor bookkeeping per request per 1000 table entries
    #: (hash maintenance and timestamp updates walk more state as the
    #: connection table grows — the TCP-specific §5.1 scalability drag)
    fd_request_per_kconn_us: float = 1.0

    # -- event waiting --------------------------------------------------------
    poll_syscall_us: float = 2.0        #: entering select/poll
    poll_per_fd_us: float = 0.02        #: re-arming one watched descriptor

    # -- idle-connection management -------------------------------------------
    idle_scan_entry_us: float = 0.35    #: examine one conn object (lock held)
    idle_pq_op_us: float = 1.0          #: one priority-queue push/pop
    fd_cache_probe_us: float = 0.3      #: per-worker cache hit path

    # -- timers / retransmission ------------------------------------------------
    timer_insert_us: float = 0.8
    timer_scan_entry_us: float = 0.2
    retransmit_us: float = 3.0          #: rebuild + resend bookkeeping

    # -- SCTP path ---------------------------------------------------------------
    sctp_recv_us: float = 7.0           #: recvmsg syscall (message-based)
    sctp_send_us: float = 7.0

    # -- registration ---------------------------------------------------------
    registrar_update_us: float = 12.0   #: usrloc write (DB-backed)

    # -- overload control -------------------------------------------------
    #: 503-shed an INVITE without admitting it: method sniff, shallow
    #: header scan, build the stock response.  Deliberately a small
    #: fraction of the full parse+route+forward pipeline — if rejection
    #: cost full price, shedding could not defend capacity (the
    #: rejection-cost premise of SIP overload control).
    reject_503_us: float = 4.0

    # -- working-set pressure -----------------------------------------------
    #: extra per-message cost per 1000 registered phones.  On real hardware
    #: a larger usrloc/transaction working set means more cache misses per
    #: message; this term reproduces the gentle throughput decline every
    #: transport shows as the client population grows (Fig. 3's UDP curve
    #: calibrates it).
    working_set_us_per_kphone: float = 1.3

    def parse_cost(self, wire_bytes: int, registered_phones: int = 0) -> float:
        """Parsing scales mildly with message size; the working-set term
        (cache pressure from the phone population) is charged here because
        parsing touches the most memory."""
        return (self.parse_msg_us
                + self.parse_per_100b_us * wire_bytes / 100.0
                + self.working_set_us_per_kphone * registered_phones / 1000.0)

    def txn_probe_cost(self, entries: int, buckets: int) -> float:
        """Hash-probe cost grows with the table's load factor."""
        return self.txn_lookup_us + self.txn_load_factor_us * entries / buckets

    def fd_request_cost(self, table_entries: int) -> float:
        """Supervisor-side cost of honouring one descriptor request."""
        return (self.fd_request_handle_us
                + self.fd_request_per_kconn_us * table_entries / 1000.0)

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly slower/faster CPU (for sensitivity studies)."""
        values: Dict[str, float] = {
            name: value * factor for name, value in asdict(self).items()
        }
        return CostModel(**values)

    def __repr__(self) -> str:
        return f"<CostModel parse={self.parse_msg_us}us udp={self.udp_recv_us}us tcp={self.tcp_recv_us}us>"
