"""Shared-memory transaction state (§3: "transaction state must be shared
among worker processes").

The table lives in shared memory and is guarded by an OpenSER-style
spinlock; every probe charges hash-lookup CPU that grows with the load
factor.  Two indexes are kept, mirroring OpenSER's transaction matching:

- by *upstream key* (the caller's top-Via branch + method) to absorb
  request retransmissions, and
- by *our branch* (the Via the proxy pushed when forwarding) to match
  responses arriving from the callee side.

``TimerList`` is the shared retransmission/GC list that the timer process
scans (essential under UDP, §3.2; present but idle for request
retransmission under TCP, §3.1).
"""

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from repro.kernel.locks import SpinLock
from repro.sim.primitives import Compute


class ProxyTransaction:
    """One relayed request's state at the proxy."""

    __slots__ = (
        "upstream_key", "our_branch", "method", "source", "forward_target",
        "forwarded_text", "last_response_text", "responded", "completed",
        "created_at", "rtx_attempts", "rtx_interval_us",
    )

    def __init__(self, upstream_key: Tuple, our_branch: str, method: str,
                 source, forward_target, forwarded_text: str,
                 created_at: float) -> None:
        self.upstream_key = upstream_key
        self.our_branch = our_branch
        self.method = method
        #: where the request came from: the worker replies here
        self.source = source
        #: where the forwarded request went (binding / conn alias)
        self.forward_target = forward_target
        self.forwarded_text = forwarded_text
        self.last_response_text: Optional[str] = None
        self.responded = False
        self.completed = False
        self.created_at = created_at
        self.rtx_attempts = 0
        self.rtx_interval_us = 0.0

    def __repr__(self) -> str:
        state = "completed" if self.completed else (
            "responded" if self.responded else "pending")
        return f"<ProxyTransaction {self.method} {state}>"


class TransactionTable:
    """The shared transaction hash table."""

    def __init__(self, costs, buckets: int = 16384,
                 lock: Optional[SpinLock] = None) -> None:
        self.costs = costs
        self.buckets = buckets
        self.lock = lock or SpinLock("txn_table")
        self._by_upstream: Dict[Tuple, ProxyTransaction] = {}
        self._by_branch: Dict[str, ProxyTransaction] = {}
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._by_branch)

    def _probe_cost(self) -> float:
        return self.costs.txn_probe_cost(len(self._by_branch), self.buckets)

    # All methods are generators: they charge CPU and take the shared lock.
    def insert(self, txn: ProxyTransaction, who: str = "?"):
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.txn_insert_us, "t_newtran")
            self._by_upstream[txn.upstream_key] = txn
            self._by_branch[txn.our_branch] = txn
            if len(self._by_branch) > self.peak_size:
                self.peak_size = len(self._by_branch)
        finally:
            self.lock.release()

    def lookup_upstream(self, key: Tuple, who: str = "?"):
        yield from self.lock.acquire(who)
        try:
            yield Compute(self._probe_cost(), "t_lookup_request")
            return self._by_upstream.get(key)
        finally:
            self.lock.release()

    def lookup_branch(self, branch: str, who: str = "?"):
        yield from self.lock.acquire(who)
        try:
            yield Compute(self._probe_cost(), "t_reply_matching")
            return self._by_branch.get(branch)
        finally:
            self.lock.release()

    def update(self, txn: ProxyTransaction, who: str = "?", **fields):
        """Write fields under the lock (the paper's synchronized access)."""
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.txn_update_us, "t_update")
            for name, value in fields.items():
                setattr(txn, name, value)
        finally:
            self.lock.release()

    def remove(self, txn: ProxyTransaction, who: str = "?"):
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.txn_update_us, "t_unref")
            self._by_upstream.pop(txn.upstream_key, None)
            self._by_branch.pop(txn.our_branch, None)
        finally:
            self.lock.release()


class TimerList:
    """Shared, lock-guarded deadline heap scanned by the timer process.

    Entries are ``(deadline, kind, branch)`` where kind is ``"rtx"``
    (retransmit the forwarded request) or ``"gc"`` (forget a completed
    transaction).  Lazy deletion: stale entries are discarded at pop time.
    """

    def __init__(self, costs, lock: Optional[SpinLock] = None) -> None:
        self.costs = costs
        self.lock = lock or SpinLock("timer_list")
        self._heap: List[Tuple[float, int, str, str]] = []
        self._seq = 0
        self.inserted = 0

    def __len__(self) -> int:
        return len(self._heap)

    def insert(self, deadline: float, kind: str, branch: str, who: str = "?"):
        """Generator: add an entry (charged to the calling process)."""
        yield from self.lock.acquire(who)
        try:
            yield Compute(self.costs.timer_insert_us, "timer_add")
            self._push(deadline, kind, branch)
        finally:
            self.lock.release()

    def _push(self, deadline: float, kind: str, branch: str) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (deadline, self._seq, kind, branch))
        self.inserted += 1

    def pop_expired(self, now: float, limit: int, who: str = "?"):
        """Generator: pop up to ``limit`` expired entries (timer process)."""
        yield from self.lock.acquire(who)
        try:
            out = []
            examined = 0
            while self._heap and len(out) < limit:
                deadline, __, kind, branch = self._heap[0]
                if deadline > now:
                    break
                heapq.heappop(self._heap)
                examined += 1
                out.append((kind, branch))
            if examined:
                yield Compute(self.costs.timer_scan_entry_us * examined,
                              "timer_scan")
            return out
        finally:
            self.lock.release()
