"""Shared scaffolding for the proxy architectures."""

from typing import List, Optional

from repro.overload import build_controller
from repro.proxy.core import ProxyCore
from repro.proxy.costs import CostModel
from repro.proxy.stats import ProxyStats
from repro.proxy.txn_table import TimerList, TransactionTable
from repro.sim.primitives import Sleep
from repro.sip.location import LocationService


class BaseProxyServer:
    """State common to every architecture: the SIP core and its shared
    (shm) structures, plus the retransmission/GC timer process."""

    def __init__(self, machine, config, costs: Optional[CostModel] = None):
        config.validate()
        self.machine = machine
        self.engine = machine.engine
        self.config = config
        self.costs = costs or CostModel()
        self.stats = ProxyStats()
        self.location = LocationService()
        #: span tracer inherited from the machine (None = tracing off)
        self.tracer = getattr(machine, "tracer", None)
        self.txn_table = TransactionTable(self.costs,
                                          buckets=config.shm_buckets)
        self.timer_list = TimerList(self.costs)
        self.core = ProxyCore(self.engine, config, self.costs, self.location,
                              self.txn_table, self.timer_list, self.stats,
                              via_host=machine.name)
        if self.tracer is not None:
            self.core.tracer = self.tracer
            self.txn_table.lock.tracer = self.tracer
            self.timer_list.lock.tracer = self.tracer
        #: causal tracer inherited from the machine (None = attribution off)
        self.causal = getattr(machine, "causal", None)
        if self.causal is not None:
            self.core.causal = self.causal
        #: overload controller ("none" → None; see :mod:`repro.overload`)
        self.controller = build_controller(config.overload_controller,
                                           config.overload_params)
        self.core.controller = self.controller
        self.processes: List = []
        self.started = False
        #: per-worker liveness stamps, written at the top of each worker
        #: loop iteration (zero simulated cost); the watchdog's hang check
        self.worker_heartbeat_us: List[float] = [0.0] * config.workers
        #: set by architectures implementing :meth:`restart_worker`
        self.supports_restart = False

    # ------------------------------------------------------------------
    def start(self) -> "BaseProxyServer":
        """Spawn and start every process of this architecture."""
        if self.started:
            raise RuntimeError("proxy already started")
        self.started = True
        self._spawn_processes()
        for proc in self.processes:
            proc.start()
        if self.controller is not None:
            # Bound after the transports built their receive machinery,
            # so the occupancy signal can see the queue-fill probe.
            self.controller.bind(self)
        return self

    def _spawn_processes(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        if self.controller is not None:
            self.controller.stop()
        for proc in self.processes:
            proc.kill()

    def queue_fill(self) -> float:
        """Receive-queue fill fraction in [0, 1] for the overload
        controllers' panic signal; transports with a meaningful receive
        queue override this."""
        return 0.0

    # ------------------------------------------------------------------
    # fault-injection / watchdog surface (see :mod:`repro.faults`)
    # ------------------------------------------------------------------
    def worker_processes(self):
        """``[(index, KernelProcess), ...]`` for restartable workers;
        architectures without a process-per-worker model return []."""
        return []

    def worker_work_pending(self, index: int) -> bool:
        """Whether worker ``index`` has undrained input (the watchdog's
        hang check only fires for workers that *should* be running)."""
        return False

    def ipc_topology(self):
        """``[(endpoint, owner, peer), ...]`` for the deadlock detector:
        ``owner`` blocked on ``endpoint`` waits on ``peer``.  Empty for
        architectures without blocking IPC."""
        return []

    def crash_worker(self, index: int):
        """Fault injection: kill worker ``index`` outright (no cleanup —
        detecting and repairing the damage is the watchdog's job)."""
        for i, proc in self.worker_processes():
            if i == index:
                proc.kill()
                return proc
        raise ValueError(f"no worker {index} to crash")

    def restart_worker(self, index: int):
        """Replace a dead/hung worker; architectures that support it
        return a JSON-ready summary of the repair."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot restart workers")

    # ------------------------------------------------------------------
    # the timer process (§3: essential for UDP, superfluous-but-present
    # for TCP)
    # ------------------------------------------------------------------
    def _timer_body(self):
        tracer = self.tracer
        who = f"{self.machine.name}/timer-proc"
        while True:
            yield Sleep(self.config.timer_tick_us)
            # The limit must outrun the insertion rate (one rtx + one GC
            # entry per transaction) or the expired backlog — and with it
            # the transaction table — grows without bound.
            span = (tracer.begin("timer_fire", cat="kernel", who=who)
                    if tracer is not None else None)
            actions = yield from self.core.timer_pass(limit=8192,
                                                      who="timer")
            if span is not None:
                tracer.end(span.set(retransmits=len(actions)))
            for action in actions:
                yield from self._timer_send(action)

    def _timer_send(self, action):
        """Generator: transmit a retransmission (transport-specific)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.config.transport} "
                f"workers={self.config.workers}>")
