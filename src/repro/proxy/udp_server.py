"""The Fig. 2 architecture: symmetric UDP worker processes.

Every worker runs the same loop — receive a datagram from the shared
socket, process it, transmit the results — with no connection state and
no supervisor.  Only the transaction table (and the timer list) are
shared, and a timer process retransmits unanswered forwards because UDP
will not.
"""

from repro.net.udp import UdpEndpoint
from repro.proxy.base import BaseProxyServer
from repro.proxy.routing import SendAction, ToBinding, ToSource, ToVia
from repro.sim.primitives import Compute


class UdpProxyServer(BaseProxyServer):
    """OpenSER over UDP."""

    def __init__(self, machine, config, costs=None) -> None:
        super().__init__(machine, config, costs)
        self.socket = UdpEndpoint(machine, config.port,
                                  rcvbuf_datagrams=config.udp_rcvbuf_datagrams)
        self._worker_procs = []
        self.supports_restart = True

    def queue_fill(self) -> float:
        """Socket receive-buffer fill — the UDP overload panic signal:
        once this saturates, arrivals are silently dropped and the
        retransmission spiral begins."""
        buffer = self.socket.buffer
        return len(buffer.queue) / buffer.capacity

    def _spawn_processes(self) -> None:
        for index in range(self.config.workers):
            proc = self.machine.spawn(
                self._worker_body(index), f"udp-worker-{index}",
                nice=self.config.worker_nice)
            self._worker_procs.append(proc)
            self.processes.append(proc)
        self.processes.append(self.machine.spawn(
            self._timer_body(), "timer-proc", nice=self.config.worker_nice))

    # -- fault-injection / watchdog surface -----------------------------
    def worker_processes(self):
        return list(enumerate(self._worker_procs))

    def worker_work_pending(self, index: int) -> bool:
        # Symmetric workers share the socket: any receive backlog is
        # work this worker should be helping drain.
        return len(self.socket.buffer.queue) > 0

    def restart_worker(self, index: int):
        """Replace worker ``index``.  UDP workers hold no connection
        state, so recovery is just reap + respawn; the socket's backlog
        carries over untouched."""
        who = f"udp-worker-{index}"
        old = self._worker_procs[index]
        old.kill()
        # See TcpProxyServer.restart_worker: break any lock a suspended
        # worker died holding (kill() handles the common case).
        for lock in (self.txn_table.lock, self.timer_list.lock):
            if lock.held and lock.owner == who:
                lock.release()
        if old.fdtable is not None:
            old.fdtable.close_all()
        if self.causal is not None:
            # Drop the dead worker's trace-id context before its namesake
            # successor starts (mirrors TcpProxyServer.restart_worker).
            self.causal.ctx_end(f"{self.machine.name}/{who}")
        proc = self.machine.spawn(self._worker_body(index), who,
                                  nice=self.config.worker_nice)
        self._worker_procs[index] = proc
        self.processes[self.processes.index(old)] = proc
        proc.start()
        self.stats.workers_restarted += 1
        return {}

    # ------------------------------------------------------------------
    def _worker_body(self, index: int):
        who = f"udp-worker-{index}"
        proc_name = f"{self.machine.name}/{who}"
        causal = self.causal
        heartbeats = self.worker_heartbeat_us
        while True:
            heartbeats[index] = self.engine.now
            dgram = yield from self.socket.recvfrom()
            heartbeats[index] = self.engine.now
            if causal is not None:
                causal.ctx_begin(proc_name, dgram.trace_id
                                 if dgram.trace_id is not None
                                 else causal.sniff(dgram.payload))
            try:
                yield Compute(self.costs.udp_recv_us, "udp_rcv_loop")
                actions = yield from self.core.process(
                    dgram.payload, source=dgram.source, who=who)
                yield from self._execute(actions)
            finally:
                if causal is not None:
                    causal.ctx_end(proc_name)

    def _execute(self, actions):
        for action in actions:
            yield Compute(self.costs.udp_send_us, "udp_send")
            addr, port = self._resolve(action)
            self.socket.sendto(action.text, addr, port)
            self.stats.messages_sent += 1

    def _resolve(self, action: SendAction):
        target = action.target
        if isinstance(target, ToSource):
            return target.source
        if isinstance(target, ToBinding):
            return (target.binding.addr, target.binding.port)
        if isinstance(target, ToVia):
            return (target.addr, target.port)
        raise TypeError(f"unroutable target {target!r}")

    def _timer_send(self, action: SendAction):
        yield Compute(self.costs.udp_send_us, "udp_send")
        addr, port = self._resolve(action)
        self.socket.sendto(action.text, addr, port)
        self.stats.messages_sent += 1
