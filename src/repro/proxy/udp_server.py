"""The Fig. 2 architecture: symmetric UDP worker processes.

Every worker runs the same loop — receive a datagram from the shared
socket, process it, transmit the results — with no connection state and
no supervisor.  Only the transaction table (and the timer list) are
shared, and a timer process retransmits unanswered forwards because UDP
will not.
"""

from repro.net.udp import UdpEndpoint
from repro.proxy.base import BaseProxyServer
from repro.proxy.routing import SendAction, ToBinding, ToSource, ToVia
from repro.sim.primitives import Compute


class UdpProxyServer(BaseProxyServer):
    """OpenSER over UDP."""

    def __init__(self, machine, config, costs=None) -> None:
        super().__init__(machine, config, costs)
        self.socket = UdpEndpoint(machine, config.port,
                                  rcvbuf_datagrams=config.udp_rcvbuf_datagrams)

    def queue_fill(self) -> float:
        """Socket receive-buffer fill — the UDP overload panic signal:
        once this saturates, arrivals are silently dropped and the
        retransmission spiral begins."""
        buffer = self.socket.buffer
        return len(buffer.queue) / buffer.capacity

    def _spawn_processes(self) -> None:
        for index in range(self.config.workers):
            self.processes.append(self.machine.spawn(
                self._worker_body(index), f"udp-worker-{index}",
                nice=self.config.worker_nice))
        self.processes.append(self.machine.spawn(
            self._timer_body(), "timer-proc", nice=self.config.worker_nice))

    # ------------------------------------------------------------------
    def _worker_body(self, index: int):
        who = f"udp-worker-{index}"
        while True:
            dgram = yield from self.socket.recvfrom()
            yield Compute(self.costs.udp_recv_us, "udp_rcv_loop")
            actions = yield from self.core.process(
                dgram.payload, source=dgram.source, who=who)
            yield from self._execute(actions)

    def _execute(self, actions):
        for action in actions:
            yield Compute(self.costs.udp_send_us, "udp_send")
            addr, port = self._resolve(action)
            self.socket.sendto(action.text, addr, port)
            self.stats.messages_sent += 1

    def _resolve(self, action: SendAction):
        target = action.target
        if isinstance(target, ToSource):
            return target.source
        if isinstance(target, ToBinding):
            return (target.binding.addr, target.binding.port)
        if isinstance(target, ToVia):
            return (target.addr, target.port)
        raise TypeError(f"unroutable target {target!r}")

    def _timer_send(self, action: SendAction):
        yield Compute(self.costs.udp_send_us, "udp_send")
        addr, port = self._resolve(action)
        self.socket.sendto(action.text, addr, port)
        self.stats.messages_sent += 1
