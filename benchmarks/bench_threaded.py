"""Table D1 (§6): the multi-threaded TCP architecture.

"File descriptors cannot be shared among processes without passing them
back and forth using IPC.  This overhead would be completely unnecessary
within a multi-threaded server.  Locking would still be required to
ensure atomic use of each connection, but the threads would be able to
use any file descriptor in the server without any expensive transfer
operations."

The ablation: threaded TCP vs the best process-based TCP (fd cache + PQ)
vs UDP, on persistent and churn workloads.
"""

from conftest import record_report
from repro.analysis import ExperimentSpec
from cells import run_cell


def run_grid():
    cells = {}
    cells["udp"] = run_cell(ExperimentSpec(series="udp", clients=100,
                                           seed=1))
    cells["tcp fixed"] = run_cell(ExperimentSpec(
        series="tcp-persistent", clients=100, fd_cache=True,
        idle_strategy="pq", seed=1))
    cells["tcp threaded"] = run_cell(ExperimentSpec(
        series="tcp-threaded", clients=100, seed=1))
    cells["tcp fixed 50/conn"] = run_cell(ExperimentSpec(
        series="tcp-50", clients=100, fd_cache=True, idle_strategy="pq",
        seed=1))
    cells["tcp threaded 50/conn"] = run_cell(ExperimentSpec(
        series="tcp-threaded-50", clients=100, seed=1))
    return cells


def test_threaded_architecture(benchmark):
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    udp = cells["udp"].throughput_ops_s

    lines = ["== Table D1: threaded TCP vs best process TCP (§6) ==",
             f"{'architecture':<24}{'ops/s':>9}{'vs UDP':>8}{'fd reqs':>9}"]
    for name, result in cells.items():
        fd_requests = result.proxy_stats.get("fd_requests", 0)
        lines.append(f"{name:<24}{result.throughput_ops_s:>9.0f}"
                     f"{result.throughput_ops_s / udp:>8.2f}"
                     f"{fd_requests:>9}")
        benchmark.extra_info[name.replace(" ", "_")] = \
            round(result.throughput_ops_s)
    lines.append("paper: threads remove fd passing entirely, shrinking "
                 "the TCP-UDP gap")
    record_report("tabD1_threaded", "\n".join(lines))

    # Threads do no descriptor passing at all.
    assert cells["tcp threaded"].proxy_stats["fd_requests"] == 0
    # And at least match the best process-based TCP on both workloads
    # (the paper predicts the gap shrinks; with both §5 fixes applied the
    # process design is already close).
    assert cells["tcp threaded"].throughput_ops_s > \
        cells["tcp fixed"].throughput_ops_s * 0.95
    assert cells["tcp threaded 50/conn"].throughput_ops_s > \
        cells["tcp fixed 50/conn"].throughput_ops_s * 0.9
    # But TCP protocol costs keep threads below UDP.
    assert cells["tcp threaded"].throughput_ops_s < udp
