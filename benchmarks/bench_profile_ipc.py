"""Table P1 (§5.1/§5.2 prose): the fd-request IPC in the execution profile.

The paper's OProfile evidence:

- baseline: "About 12% of the time was spent in the function in which the
  IPC occurred", and IPC-related functions fill the kernel top-15;
- with the fd cache: that function drops to 4.6%, IPC functions leave the
  top-15, and TCP-protocol functions take their place.
"""

from conftest import record_report
from repro.analysis import ExperimentSpec
from cells import run_cell
from repro.profiling.report import top_functions

#: the labels that make up the descriptor-request path
WORKER_IPC_LABELS = ("ipc_send_fd_request", "ipc_recv", "receive_fd")
SUPERVISOR_IPC_LABELS = ("tcpconn_send_fd", "ipc_send", "send_fd")


def ipc_share(profile):
    total = sum(profile.values())
    ipc = sum(profile.get(label, 0.0)
              for label in WORKER_IPC_LABELS + SUPERVISOR_IPC_LABELS)
    return ipc / total if total else 0.0


def run_pair():
    base = run_cell(ExperimentSpec(series="tcp-persistent", clients=100,
                                   fd_cache=False, profile=True, seed=1))
    cached = run_cell(ExperimentSpec(series="tcp-persistent", clients=100,
                                     fd_cache=True, profile=True, seed=1))
    return base, cached


def test_profile_ipc_share(benchmark):
    base, cached = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    share_base = ipc_share(base.profile)
    share_cached = ipc_share(cached.profile)

    lines = ["== Table P1: CPU share of the fd-request IPC path ==",
             f"{'configuration':<22}{'IPC share':>10}   paper",
             f"{'baseline (Fig. 3)':<22}{share_base * 100:>9.1f}%   12.0%",
             f"{'fd cache (Fig. 4)':<22}{share_cached * 100:>9.1f}%    4.6%",
             "",
             "top functions, baseline:"]
    for label, us, share in top_functions(base.profile, 8):
        lines.append(f"  {label:<24}{share * 100:>6.1f}%")
    lines.append("top functions, fd cache:")
    for label, us, share in top_functions(cached.profile, 8):
        lines.append(f"  {label:<24}{share * 100:>6.1f}%")
    record_report("tabP1_profile_ipc", "\n".join(lines))

    benchmark.extra_info["ipc_share_baseline"] = round(share_base, 4)
    benchmark.extra_info["ipc_share_cached"] = round(share_cached, 4)

    # Shape: ~12% -> ~4.6%; allow generous bands.
    assert 0.06 <= share_base <= 0.25, share_base
    assert share_cached <= share_base / 2.0
    assert share_cached <= 0.08

    # "IPC-related functions drop out of the top functions, replaced by
    # TCP-related functions."
    top_cached = [label for label, __, __ in top_functions(cached.profile, 6)]
    assert "ipc_send_fd_request" not in top_cached
    assert any(label.startswith("tcp_") for label in top_cached)
