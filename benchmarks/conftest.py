"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables/figures and appends
its rendered table to ``benchmarks/results/``; a terminal-summary hook
prints everything at the end of the run so ``pytest benchmarks/
--benchmark-only`` leaves the full measured-vs-paper story in the log.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_session_reports = []


def record_report(name: str, text: str) -> None:
    """Persist one experiment's rendered table and queue it for echo."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    _session_reports.append((name, text))


def pytest_terminal_summary(terminalreporter):
    if not _session_reports:
        return
    terminalreporter.write_sep("=", "reproduction results (vs paper)")
    for name, text in _session_reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
