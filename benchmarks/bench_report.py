"""Perf-trajectory baseline: the standard grid as one diffable JSON file.

Runs the standard cell grid — every transport series, with and without
the paper's fixes — and records throughput plus tail latency per cell in
``BENCH_7.json`` at the repository root.  Future PRs regenerate the file
and diff it against the committed baseline, so a regression in any
transport/fix combination shows up as a one-line change instead of a
vague "benchmarks feel slower".

Cells run through the shared disk cache (:mod:`cells`), so regenerating
the file after unrelated changes costs well under a second.  Everything
recorded is deterministic given the seeds; the file contains no
wall-clock timings, which keeps the diff meaningful.
"""

import json
import pathlib

from repro.analysis import ExperimentSpec

try:
    from cells import run_cell
    from conftest import record_report
except ImportError:  # running as a plain script, not under pytest
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from cells import run_cell
    from conftest import record_report

#: where the committed baseline lives
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_7.json"

SERIES = ("udp", "tcp-persistent", "tcp-500", "tcp-50")

#: fix name -> (fd_cache, idle_strategy); "none" is the paper's baseline
#: server, "fdcache" is §5.2 alone, "all" adds the §5.3 priority queue
FIXES = {
    "none": (False, "scan"),
    "fdcache": (True, "scan"),
    "all": (True, "pq"),
}

LOADS = (100, 1000)
SEED = 1


def _cell_record(result) -> dict:
    return {
        "throughput_ops_s": round(result.throughput_ops_s, 1),
        "setup_p99_us": round(result.setup_latency_us.get("p99", 0.0), 1),
        "processing_p99_us": round(
            result.processing_latency_us.get("p99", 0.0), 1),
        "calls_failed": result.calls_failed,
    }


def collect() -> dict:
    grid = {}
    for series in SERIES:
        grid[series] = {}
        for fix, (fd_cache, idle_strategy) in FIXES.items():
            grid[series][fix] = {}
            for clients in LOADS:
                result = run_cell(ExperimentSpec(
                    series=series, clients=clients, fd_cache=fd_cache,
                    idle_strategy=idle_strategy, seed=SEED))
                grid[series][fix][str(clients)] = _cell_record(result)
    return {
        "schema": "bench-report-v1",
        "seed": SEED,
        "loads": list(LOADS),
        "grid": grid,
    }


def write_report(data: dict, path=REPORT_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


def render(data: dict) -> str:
    lines = ["== perf trajectory (BENCH_7.json) =="]
    for series, fixes in data["grid"].items():
        for fix, cells in fixes.items():
            row = "  ".join(
                f"{clients}c {cell['throughput_ops_s']:8.0f} ops/s "
                f"p99 {cell['setup_p99_us']:7.0f}us"
                for clients, cell in cells.items())
            lines.append(f"{series:>15}/{fix:<7} {row}")
    return "\n".join(lines)


def test_bench_report(benchmark):
    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    write_report(data)
    record_report("bench_report", render(data))

    grid = data["grid"]
    for series in SERIES:
        for fix in FIXES:
            for clients in map(str, LOADS):
                cell = grid[series][fix][clients]
                assert cell["throughput_ops_s"] > 0, (series, fix, clients)
                assert cell["setup_p99_us"] > 0, (series, fix, clients)
    # The paper's ordering must hold in the recorded baseline: UDP out in
    # front, and the fixes never hurting the churn-heavy TCP series.
    for clients in map(str, LOADS):
        assert grid["udp"]["none"][clients]["throughput_ops_s"] > \
            grid["tcp-50"]["none"][clients]["throughput_ops_s"]
        assert grid["tcp-50"]["all"][clients]["throughput_ops_s"] > \
            grid["tcp-50"]["none"][clients]["throughput_ops_s"]


if __name__ == "__main__":
    report = collect()
    write_report(report)
    print(render(report))
    print(f"wrote {REPORT_PATH}")
