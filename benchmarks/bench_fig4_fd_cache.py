"""Figure 4: the file-descriptor cache.

Same grid as Fig. 3, with every worker keeping the descriptors it fetched
(``fd_cache=True``).  The §5.2 shape claims:

- a dramatic improvement over baseline TCP everywhere;
- persistent-connection TCP lands within 66–78% of UDP;
- 500 ops/conn becomes "very similar to the persistent case";
- 50 ops/conn improves (~doubles) but remains ~2× below the other TCP
  workloads — the connection-management bottleneck is still there.
"""

from conftest import record_report
from cells import run_figure
from repro.analysis.paper_data import PAPER_FIGURES
from repro.analysis.tables import render_comparison, throughput_grid


def test_fig4_fd_cache(benchmark):
    grid = benchmark.pedantic(
        lambda: run_figure(fd_cache=True, idle_strategy="scan", seed=1, clients=(100, 1000)),
        rounds=1, iterations=1)
    tput = throughput_grid(grid)
    record_report("fig4_fd_cache", render_comparison("fig4", tput))
    for count in (100, 1000):
        benchmark.extra_info[f"tcp_pers_{count}"] = \
            round(tput["tcp-persistent"][count])

    udp = tput["udp"]
    pers = tput["tcp-persistent"]
    t500 = tput["tcp-500"]
    t50 = tput["tcp-50"]

    # Persistent TCP within 66-78% of UDP (±10 points of slack).
    for count in (100, 1000):
        ratio = pers[count] / udp[count]
        assert 0.56 <= ratio <= 0.88, (count, ratio)
    # 500 ops/conn close to persistent (paper: near-identical; our
    # compressed-churn model leaves a somewhat larger residual gap).
    for count in (100, 1000):
        assert abs(t500[count] - pers[count]) / pers[count] < 0.35
        # ...and far above the 50 ops/conn workload.
        assert t500[count] > t50[count] * 1.3
    # 50 ops/conn: better than baseline but ~2x below the other TCP
    # workloads (the §5.2 surprise).
    baseline_t50 = PAPER_FIGURES["fig3"]["tcp-50"]
    for count in (100, 1000):
        assert t50[count] < 0.75 * pers[count], (count, t50, pers)

    # The cache must actually be hitting.
    totals = grid["tcp-persistent"][100].proxy_totals
    assert totals["fd_cache_hits"] > totals["fd_cache_misses"]


def test_fig4_cache_improves_over_fig3(benchmark):
    """Cross-figure claim: the cache is a dramatic improvement at every
    TCP cell (throughput roughly doubles for 50 ops/conn)."""
    def run_pair():
        base = run_figure(fd_cache=False, idle_strategy="scan", seed=1,
                          series=("tcp-50", "tcp-persistent"),
                          clients=(100,))
        cached = run_figure(fd_cache=True, idle_strategy="scan", seed=1,
                            series=("tcp-50", "tcp-persistent"),
                            clients=(100,))
        return base, cached

    base, cached = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    for series in ("tcp-50", "tcp-persistent"):
        before = base[series][100].throughput_ops_s
        after = cached[series][100].throughput_ops_s
        assert after > before * 1.3, (series, before, after)
    ipc_before = base["tcp-persistent"][100].proxy_totals["fd_requests"]
    ipc_after = cached["tcp-persistent"][100].proxy_totals["fd_requests"]
    assert ipc_after < ipc_before / 5
