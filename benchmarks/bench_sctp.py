"""Table D2 (§6): SCTP as the transport.

"SCTP allows reliable, message-based communication ... using an
architecture similar to the UDP architecture ...  By relieving the
application of connection management, several of the overheads found in
the TCP architecture of OpenSER would go away ... because SCTP is a
message-based protocol, user-level locking would not be required to send
messages."
"""

from conftest import record_report
from repro.analysis import ExperimentSpec
from cells import run_cell


def run_grid():
    return {
        "udp": run_cell(ExperimentSpec(series="udp", clients=100, seed=1)),
        "sctp": run_cell(ExperimentSpec(series="sctp", clients=100, seed=1)),
        "tcp baseline": run_cell(ExperimentSpec(
            series="tcp-persistent", clients=100, seed=1)),
        "tcp fixed": run_cell(ExperimentSpec(
            series="tcp-persistent", clients=100, fd_cache=True,
            idle_strategy="pq", seed=1)),
    }


def test_sctp_architecture(benchmark):
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    udp = cells["udp"].throughput_ops_s

    lines = ["== Table D2: SCTP — connection-oriented, UDP-like "
             "architecture (§6) ==",
             f"{'transport':<16}{'ops/s':>9}{'vs UDP':>8}"]
    for name, result in cells.items():
        lines.append(f"{name:<16}{result.throughput_ops_s:>9.0f}"
                     f"{result.throughput_ops_s / udp:>8.2f}")
        benchmark.extra_info[name.replace(" ", "_")] = \
            round(result.throughput_ops_s)
    lines.append("paper: SCTP would remove the supervisor, fd passing and "
                 "user-level idle management")
    record_report("tabD2_sctp", "\n".join(lines))

    sctp = cells["sctp"]
    # No supervisor machinery at all.
    assert sctp.proxy_stats["fd_requests"] == 0
    assert sctp.proxy_stats["idle_scans"] == 0
    # Reliable delivery: the timer process never retransmits.
    assert sctp.proxy_stats["retransmissions_sent"] == 0
    # Ordering: tcp baseline < tcp fixed < sctp <= ~udp.
    assert cells["tcp baseline"].throughput_ops_s < \
        cells["tcp fixed"].throughput_ops_s
    assert cells["tcp fixed"].throughput_ops_s < sctp.throughput_ops_s
    assert sctp.throughput_ops_s <= udp * 1.02
    assert sctp.throughput_ops_s >= udp * 0.75
