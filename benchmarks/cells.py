"""Shared experiment cells: parallel execution + persistent memoization.

Several benchmarks need the same (series, clients, fixes) cell — the
figure grids, the §8 conclusion ranges, the §6 ablations.  Simulations
are deterministic given a seed, so identical specs give identical
results.  Cells are therefore:

- cached **on disk** (``benchmarks/results/.cache/``, see
  :mod:`repro.analysis.cache`), so a second benchmark run re-reads every
  grid in well under a second instead of re-simulating it;
- memoized in-process on top, so repeated access inside one pytest run
  costs nothing;
- fanned across CPU cores for grid runs (``REPRO_JOBS`` overrides the
  worker count; set ``REPRO_JOBS=1`` to force serial execution).

Results here are the runner's serializable form: assert on
``result.proxy_totals`` / ``result.open_conns`` rather than the live
``result.proxy`` object (which only a direct, uncached
:func:`repro.analysis.run_cell` call attaches).
"""

from typing import Dict, List, Optional

from repro.analysis import ExperimentSpec, ResultCache, figure_specs, spec_key
from repro.analysis.runner import CellOutcome, run_cells

#: persistent cross-run cache (benchmarks/results/.cache/)
DISK_CACHE = ResultCache()

_memo: Dict[str, object] = {}


def _run_batch(specs: List[ExperimentSpec], jobs: Optional[int]) -> list:
    """Run specs through the shared runner, memoizing per spec key."""
    keys = [spec_key(spec) for spec in specs]
    results: List[object] = [None] * len(specs)
    todo = [index for index, key in enumerate(keys)
            if key is None or key not in _memo]
    if todo:
        outcomes: List[CellOutcome] = run_cells([specs[i] for i in todo],
                                                jobs=jobs, cache=DISK_CACHE)
        for index, outcome in zip(todo, outcomes):
            if keys[index] is not None:
                _memo[keys[index]] = outcome.result
            results[index] = outcome.result
    for index, key in enumerate(keys):
        if results[index] is None:
            results[index] = _memo[key]
    return results


def run_cell(spec: ExperimentSpec):
    """Deterministic cell runner with disk + in-process memoization."""
    return _run_batch([spec], jobs=1)[0]


def run_figure(fd_cache: bool, idle_strategy: str,
               series=("tcp-50", "tcp-500", "tcp-persistent", "udp"),
               clients=(100, 500, 1000), seed: int = 1,
               jobs: Optional[int] = None, **spec_overrides):
    """Parallel, memoizing counterpart of :func:`repro.analysis.run_figure`.

    ``jobs=None`` fans uncached cells across all cores.
    """
    specs = figure_specs(fd_cache, idle_strategy, series=series,
                         clients=clients, seed=seed, **spec_overrides)
    results = _run_batch(specs, jobs=jobs)
    grid: Dict[str, Dict[int, object]] = {name: {} for name in series}
    for spec, result in zip(specs, results):
        grid[spec.series][spec.clients] = result
    return grid
