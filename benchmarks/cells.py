"""Memoized experiment cells shared across benchmarks.

Several benchmarks need the same (series, clients, fixes) cell — the
figure grids, the §8 conclusion ranges, the §6 ablations.  Simulations
are deterministic given a seed, so identical specs give identical
results; caching them makes the whole suite run each unique cell once.
"""

from typing import Dict, Tuple

from repro.analysis import ExperimentSpec, run_cell as _run_cell

_cache: Dict[Tuple, object] = {}


def _key(spec: ExperimentSpec) -> Tuple:
    return (spec.series, spec.clients, spec.fd_cache, spec.idle_strategy,
            spec.supervisor_nice, spec.idle_timeout_us, spec.workers,
            spec.seed, spec.warmup_us, spec.measure_us, spec.profile,
            spec.stateful, spec.server_fd_limit,
            tuple(sorted(spec.config_overrides.items())))


def run_cell(spec: ExperimentSpec):
    """Deterministic cell runner with cross-benchmark memoization."""
    key = _key(spec)
    if key not in _cache:
        _cache[key] = _run_cell(spec)
    return _cache[key]


def run_figure(fd_cache: bool, idle_strategy: str,
               series=("tcp-50", "tcp-500", "tcp-persistent", "udp"),
               clients=(100, 500, 1000), seed: int = 1, **spec_overrides):
    """Memoizing counterpart of :func:`repro.analysis.run_figure`."""
    grid = {}
    for name in series:
        grid[name] = {}
        for count in clients:
            spec = ExperimentSpec(series=name, clients=count,
                                  fd_cache=fd_cache,
                                  idle_strategy=idle_strategy,
                                  seed=seed, **spec_overrides)
            grid[name][count] = run_cell(spec)
    return grid
