"""Table S1 (§4.3): the TCP supervisor must run at nice −20.

"Linux 2.6.20 does not automatically schedule the supervisor frequently
enough, so this type of starvation occurs regularly.  ...  the priority
level of the supervisor process was increased to -20 ...  This led to a
40–100% increases in TCP throughput.  By elevating the supervisor's
priority in this fashion, there is never idle time on the server ...
whereas there is idle time if this is not done."
"""

from conftest import record_report
from repro.analysis import ExperimentSpec, run_cell


def run_pair(clients):
    starved = run_cell(ExperimentSpec(
        series="tcp-persistent", clients=clients, supervisor_nice=0,
        seed=6))
    elevated = run_cell(ExperimentSpec(
        series="tcp-persistent", clients=clients, supervisor_nice=-20,
        seed=6))
    return starved, elevated


def test_supervisor_priority(benchmark):
    results = benchmark.pedantic(
        lambda: {clients: run_pair(clients) for clients in (100,)},
        rounds=1, iterations=1)

    lines = ["== Table S1: supervisor nice level (TCP persistent) ==",
             f"{'clients':>8}{'nice 0':>10}{'nice -20':>10}{'gain':>8}"
             f"{'util@0':>8}{'util@-20':>9}"]
    for clients, (starved, elevated) in results.items():
        gain = elevated.throughput_ops_s / starved.throughput_ops_s
        lines.append(
            f"{clients:>8}{starved.throughput_ops_s:>10.0f}"
            f"{elevated.throughput_ops_s:>10.0f}{gain:>8.2f}"
            f"{starved.cpu_utilization:>8.2f}"
            f"{elevated.cpu_utilization:>9.2f}")
        benchmark.extra_info[f"gain_{clients}"] = round(gain, 2)
    lines.append("paper: +40-100% throughput from elevation; idle cores "
                 "appear only at nice 0")
    record_report("tabS1_supervisor_priority", "\n".join(lines))

    for clients, (starved, elevated) in results.items():
        gain = elevated.throughput_ops_s / starved.throughput_ops_s
        # The paper saw 1.4-2.0x; accept anything clearly material.
        assert gain >= 1.25, (clients, gain)
        # Elevation removes idle time; starvation leaves cores idle.
        assert elevated.cpu_utilization >= starved.cpu_utilization
        assert elevated.cpu_utilization > 0.9
