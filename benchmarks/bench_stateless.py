"""Ablation (§2): stateful vs stateless proxying.

A stateless proxy skips the 100 TRYING, keeps no transaction state and
never retransmits — less work per call, at the cost of pushing
reliability to the endpoints.  The ablation quantifies the transaction
machinery's price in this model.
"""

from conftest import record_report
from repro.analysis import ExperimentSpec
from cells import run_cell


def run_pair():
    stateful = run_cell(ExperimentSpec(series="udp", clients=100,
                                       stateful=True, seed=1))
    stateless = run_cell(ExperimentSpec(series="udp", clients=100,
                                        stateful=False, seed=1))
    return stateful, stateless


def test_stateless_ablation(benchmark):
    stateful, stateless = benchmark.pedantic(run_pair, rounds=1,
                                             iterations=1)
    lines = ["== Ablation: stateful vs stateless proxy (UDP) ==",
             f"{'mode':<12}{'ops/s':>9}{'msgs sent':>11}",
             f"{'stateful':<12}{stateful.throughput_ops_s:>9.0f}"
             f"{stateful.proxy_stats['messages_sent']:>11}",
             f"{'stateless':<12}{stateless.throughput_ops_s:>9.0f}"
             f"{stateless.proxy_stats['messages_sent']:>11}"]
    gain = stateless.throughput_ops_s / stateful.throughput_ops_s
    lines.append(f"stateless speedup: {gain:.2f}x (no TRYING, no "
                 "transaction table, no timers)")
    record_report("ablation_stateless", "\n".join(lines))
    benchmark.extra_info["speedup"] = round(gain, 2)

    assert stateless.throughput_ops_s > stateful.throughput_ops_s
    assert gain < 1.6  # the state machinery is real but not dominant
    # Stateless sends fewer messages per op (no 100 Trying).
    per_op_stateful = stateful.proxy_stats["messages_sent"] / stateful.ops
    per_op_stateless = stateless.proxy_stats["messages_sent"] / stateless.ops
    assert per_op_stateless < per_op_stateful
