"""Figure 3: baseline OpenSER performance, UDP vs TCP.

Four series (TCP at 50 ops/conn, 500 ops/conn, persistent connections;
UDP) × three loads (100/500/1000 concurrent clients), with the baseline
TCP architecture: no fd cache, scan-everything idle management, but the
§4.3 tuning applied (supervisor at nice −20, 10 s idle timeout).

Shape claims asserted (§5.1 prose):
- UDP beats every TCP workload everywhere;
- persistent TCP ≈ half of UDP at 100 clients, ≥3× gap at 1000;
- 50 ops/conn TCP is 4–7× below UDP;
- UDP scales better: every TCP series falls further behind as clients grow.
"""

from conftest import record_report
from cells import run_figure
from repro.analysis.tables import render_comparison, throughput_grid


def test_fig3_baseline(benchmark):
    grid = benchmark.pedantic(
        lambda: run_figure(fd_cache=False, idle_strategy="scan", seed=1, clients=(100, 1000)),
        rounds=1, iterations=1)
    tput = throughput_grid(grid)
    report = render_comparison("fig3", tput)
    record_report("fig3_baseline", report)
    for count in (100, 1000):
        benchmark.extra_info[f"udp_{count}"] = round(tput["udp"][count])
        benchmark.extra_info[f"tcp_pers_{count}"] = \
            round(tput["tcp-persistent"][count])

    udp = tput["udp"]
    pers = tput["tcp-persistent"]
    t500 = tput["tcp-500"]
    t50 = tput["tcp-50"]

    # UDP wins everywhere.
    for count in (100, 1000):
        assert udp[count] > pers[count] > 0
        assert udp[count] > t500[count] > 0
        assert udp[count] > t50[count] > 0
        # Reuse ordering: more ops/conn can only help TCP.
        assert pers[count] >= t500[count] * 0.9
        assert t500[count] >= t50[count] * 0.9

    # "UDP throughput is twice that of TCP under persistent" (±40%).
    assert 1.5 <= udp[100] / pers[100] <= 3.2
    # The gap widens with load (paper: more than three-fold at 1000;
    # our persistent decline is milder, see EXPERIMENTS.md).
    assert udp[1000] / pers[1000] >= 2.0
    assert udp[1000] / pers[1000] >= udp[100] / pers[100] - 0.05
    # 50 ops/conn: "about 4 to 7 times" (allow 3–9).
    for count in (100, 1000):
        assert 3.0 <= udp[count] / t50[count] <= 9.0
    # Scalability: TCP/UDP ratio shrinks from 100 to 1000 clients.
    assert pers[1000] / udp[1000] < pers[100] / udp[100] + 0.02
