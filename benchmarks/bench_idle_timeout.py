"""Table S2 (§4.3): the idle-connection timeout, 120 s vs 10 s.

"By default, OpenSER keeps idle TCP connections open for 120 seconds ...
this caused the server to run out of available ports in many experiments
that did not heavily reuse connections.  To avoid port starvation,
OpenSER was configured to keep idle TCP connections open for only 10
seconds."

With clients that never close their connections, the open-connection
(and descriptor) population grows at ``churn_rate × timeout``.  We run
the non-reuse workload at the experiments' standard 5× time compression
(so 120 s → 24 s, 10 s → 2 s) against a deliberately modest descriptor
budget: with the long timeout the abandoned population blows through the
budget and accepts start failing; with the short one it plateaus well
below it.
"""

from conftest import record_report
from repro.analysis import ExperimentSpec
from cells import run_cell

FD_BUDGET = 4000
COMPRESSION = 5.0


def run_with_timeout(nominal_timeout_s):
    return run_cell(ExperimentSpec(
        series="tcp-50", clients=50, fd_cache=True, idle_strategy="pq",
        idle_timeout_us=nominal_timeout_s * 1_000_000.0 / COMPRESSION,
        ops_per_conn_override=20,
        server_fd_limit=FD_BUDGET,
        seed=7,
        warmup_us=300_000.0, measure_us=6_000_000.0,
        scale_windows=False))


def test_idle_timeout_starvation(benchmark):
    results = benchmark.pedantic(
        lambda: {s: run_with_timeout(s) for s in (120.0, 10.0)},
        rounds=1, iterations=1)
    long_run = results[120.0]
    short_run = results[10.0]

    lines = ["== Table S2: idle timeout and descriptor starvation ==",
             f"(timeouts compressed 5x; descriptor budget {FD_BUDGET})",
             f"{'timeout':>8}{'ops/s':>9}{'open conns':>12}"
             f"{'accept fails':>14}{'failed calls':>14}"]
    for timeout, result in results.items():
        stats = result.proxy_stats
        lines.append(f"{timeout:>7.0f}s{result.throughput_ops_s:>9.0f}"
                     f"{result.open_conns:>12}"
                     f"{stats['accept_failures']:>14}"
                     f"{result.calls_failed:>14}")
    lines.append("paper: 120 s exhausts the server under churn; 10 s "
                 "keeps it healthy")
    record_report("tabS2_idle_timeout", "\n".join(lines))

    long_fails = long_run.proxy_stats["accept_failures"]
    short_fails = short_run.proxy_stats["accept_failures"]
    # 120 s: the abandoned population blows through the budget.
    assert long_fails > 0
    # 10 s: bounded population, (essentially) healthy accepts.
    assert short_fails <= long_fails / 10
    assert short_run.open_conns < long_run.open_conns
    # And the short timeout performs at least as well.
    assert short_run.throughput_ops_s >= long_run.throughput_ops_s * 0.9
