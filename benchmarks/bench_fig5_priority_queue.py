"""Figure 5: priority-queue idle-connection management (+ fd cache).

The §5.3 shape claims:

- the 50 ops/conn workload improves dramatically and becomes "very
  similar to the other TCP workloads";
- all TCP workloads land within 50–78% of UDP;
- for the low-churn workloads the PQ has little effect (their sweeps were
  cheap anyway).
"""

from conftest import record_report
from cells import run_figure
from repro.analysis.tables import render_comparison, throughput_grid


def test_fig5_priority_queue(benchmark):
    grid = benchmark.pedantic(
        lambda: run_figure(fd_cache=True, idle_strategy="pq", seed=1, clients=(100, 1000)),
        rounds=1, iterations=1)
    tput = throughput_grid(grid)
    record_report("fig5_priority_queue", render_comparison("fig5", tput))
    for count in (100, 1000):
        benchmark.extra_info[f"tcp_50_{count}"] = round(tput["tcp-50"][count])

    udp = tput["udp"]
    series = ("tcp-50", "tcp-500", "tcp-persistent")

    # Every TCP workload within ~50-78% of UDP (generous band 0.40-0.90).
    for name in series:
        for count in (100, 1000):
            ratio = tput[name][count] / udp[count]
            assert 0.40 <= ratio <= 0.90, (name, count, ratio)

    # 50 ops/conn now "very similar to the other TCP workloads":
    # within 45% of persistent everywhere (baseline had it 2x+ below).
    for count in (100, 1000):
        gap = abs(tput["tcp-50"][count] - tput["tcp-persistent"][count])
        assert gap / tput["tcp-persistent"][count] < 0.45, count


def test_fig5_pq_rescues_churn_workload(benchmark):
    """Cross-figure claim: the PQ's impact is big for 50 ops/conn and
    negligible for persistent connections (§5.3)."""
    def run_pair():
        scan = run_figure(fd_cache=True, idle_strategy="scan", seed=1,
                          series=("tcp-50", "tcp-persistent"),
                          clients=(500,))
        pq = run_figure(fd_cache=True, idle_strategy="pq", seed=1,
                        series=("tcp-50", "tcp-persistent"),
                        clients=(500,))
        return scan, pq

    scan, pq = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    churn_gain = (pq["tcp-50"][500].throughput_ops_s /
                  scan["tcp-50"][500].throughput_ops_s)
    persistent_gain = (pq["tcp-persistent"][500].throughput_ops_s /
                       scan["tcp-persistent"][500].throughput_ops_s)
    assert churn_gain > 1.15
    assert abs(persistent_gain - 1.0) < 0.15
    benchmark.extra_info["churn_gain"] = round(churn_gain, 2)
    benchmark.extra_info["persistent_gain"] = round(persistent_gain, 2)
