"""Table P2 (§5.2 prose): why 50 ops/conn stays slow with the fd cache.

The paper's profile of the churn workload showed:

- "almost a threefold increase in time spent in the function where the
  supervisor process finds and closes the idle TCP connections"
  (relative to the persistent workload);
- the sweep holds the connection hash lock, whose contention surfaces as
  spinlock yields: "the top ten kernel functions are all in the Linux
  scheduler".
"""

from conftest import record_report
from repro.analysis import ExperimentSpec
from cells import run_cell
from repro.profiling.report import top_functions

IDLE_LABELS = ("tcpconn_timeout", "tcp_receive_timeout")


def idle_share(profile):
    total = sum(profile.values())
    return sum(profile.get(label, 0.0) for label in IDLE_LABELS) / total \
        if total else 0.0


def run_pair():
    persistent = run_cell(ExperimentSpec(
        series="tcp-persistent", clients=100, fd_cache=True,
        idle_strategy="scan", profile=True, seed=1))
    churn = run_cell(ExperimentSpec(
        series="tcp-50", clients=100, fd_cache=True,
        idle_strategy="scan", profile=True, seed=1))
    return persistent, churn


def test_profile_idle_scan_blowup(benchmark):
    persistent, churn = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    share_persistent = idle_share(persistent.profile)
    share_churn = idle_share(churn.profile)

    kernel_top = top_functions(churn.profile, 10, kernel_only=True)
    scheduler_share_of_kernel = sum(
        share for label, __, share in kernel_top
        if label in ("kernel.sched_yield", "kernel.context_switch")
        or ".spin" in label)

    lines = ["== Table P2: idle-connection sweep under churn ==",
             f"{'workload':<22}{'idle-close CPU share':>22}",
             f"{'TCP persistent':<22}{share_persistent * 100:>21.1f}%",
             f"{'TCP 50 ops/conn':<22}{share_churn * 100:>21.1f}%",
             f"ratio: {share_churn / max(share_persistent, 1e-9):.1f}x "
             "(paper: ~3x)",
             "",
             "kernel-side profile under churn (paper: dominated by the "
             "scheduler via sched_yield):"]
    for label, us, share in kernel_top:
        lines.append(f"  {label:<28}{share * 100:>6.1f}%")
    record_report("tabP2_idle_scan", "\n".join(lines))

    benchmark.extra_info["idle_share_persistent"] = round(share_persistent, 4)
    benchmark.extra_info["idle_share_churn"] = round(share_churn, 4)

    # The blowup: churn multiplies time in the idle-close path (≥2x).
    assert share_churn >= 2.0 * share_persistent, \
        (share_persistent, share_churn)
    # The sweep population is the driver: churn examined far more entries.
    assert churn.proxy_totals["idle_scan_entries_examined"] > \
        2 * persistent.proxy_totals["idle_scan_entries_examined"]
    # Lock pressure: spin/yield time grows under churn.
    spin_persistent = sum(us for label, us in
                          persistent.profile.items() if ".spin" in label)
    spin_churn = sum(us for label, us in
                     churn.profile.items() if ".spin" in label)
    assert spin_churn > spin_persistent
