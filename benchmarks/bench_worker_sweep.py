"""Ablation (§4.3): worker-pool sizing.

"The number of worker processes was selected for the UDP and TCP
experiments to maximize overall performance.  The server was configured
to use 24 worker processes for UDP and 32 worker processes for TCP."

The sweep shows the shape behind that choice: throughput rises until the
pool covers the cores plus blocking time, then flattens (and eventually
pays scheduling/locking overhead).  TCP wants a deeper pool than UDP
because its workers block waiting on the supervisor.
"""

from conftest import record_report
from repro.analysis import ExperimentSpec, run_cell

UDP_POOLS = (2, 8, 24)
TCP_POOLS = (2, 8, 32)


def sweep(series, pools, **kwargs):
    out = {}
    for workers in pools:
        result = run_cell(ExperimentSpec(
            series=series, clients=60, workers=workers, seed=10,
            warmup_us=200_000.0, measure_us=300_000.0, **kwargs))
        out[workers] = result.throughput_ops_s
    return out


def test_worker_sweep(benchmark):
    grids = benchmark.pedantic(
        lambda: {"udp": sweep("udp", UDP_POOLS),
                 "tcp": sweep("tcp-persistent", TCP_POOLS, fd_cache=True)},
        rounds=1, iterations=1)

    lines = ["== Ablation: worker-pool size (§4.3) =="]
    for series, grid in grids.items():
        row = "  ".join(f"{w}:{tput:.0f}" for w, tput in grid.items())
        lines.append(f"{series:<5} {row}")
        best = max(grid, key=grid.get)
        lines.append(f"      best pool: {best} workers")
        benchmark.extra_info[f"{series}_best"] = best
    lines.append("paper: 24 workers for UDP, 32 for TCP maximized "
                 "performance")
    record_report("ablation_worker_sweep", "\n".join(lines))

    for series, grid in grids.items():
        pools = sorted(grid)
        # Too few workers clearly starves the 4 cores.
        assert grid[pools[0]] < grid[pools[-1]]
        # The paper-sized pool is within 15% of the sweep's best.
        paper_pool = 24 if series == "udp" else 32
        assert grid[paper_pool] >= max(grid.values()) * 0.85
