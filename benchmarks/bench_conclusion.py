"""The paper's headline numbers (§1/§8).

"OpenSER's performance using TCP increases from 13-51% to 50-78% of the
performance using UDP" once the fd cache and priority-queue idle
management are in place.  This benchmark computes exactly those before
and after ranges across the TCP workloads at 100 and 1000 clients.
"""

from conftest import record_report
from repro.analysis import ExperimentSpec
from cells import run_cell

TCP_SERIES = ("tcp-50", "tcp-500", "tcp-persistent")
LOADS = (100, 1000)


def run_all():
    out = {"udp": {}, "before": {}, "after": {}}
    for clients in LOADS:
        out["udp"][clients] = run_cell(ExperimentSpec(
            series="udp", clients=clients, seed=1)).throughput_ops_s
        for series in TCP_SERIES:
            out["before"][(series, clients)] = run_cell(ExperimentSpec(
                series=series, clients=clients, fd_cache=False,
                idle_strategy="scan", seed=1)).throughput_ops_s
            out["after"][(series, clients)] = run_cell(ExperimentSpec(
                series=series, clients=clients, fd_cache=True,
                idle_strategy="pq", seed=1)).throughput_ops_s
    return out


def test_conclusion_ranges(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    before = [data["before"][(series, clients)] / data["udp"][clients]
              for series in TCP_SERIES for clients in LOADS]
    after = [data["after"][(series, clients)] / data["udp"][clients]
             for series in TCP_SERIES for clients in LOADS]

    lines = ["== Conclusion: TCP as a fraction of UDP, before vs after ==",
             f"before (baseline):  {min(before) * 100:.0f}%-"
             f"{max(before) * 100:.0f}%   (paper: 13%-51%)",
             f"after (both fixes): {min(after) * 100:.0f}%-"
             f"{max(after) * 100:.0f}%   (paper: 50%-78%)"]
    record_report("conclusion_ranges", "\n".join(lines))
    benchmark.extra_info["before_range"] = (round(min(before), 2),
                                            round(max(before), 2))
    benchmark.extra_info["after_range"] = (round(min(after), 2),
                                           round(max(after), 2))

    # Shape: the "before" range sits where the paper's did and the fixes
    # materially improve every single (series, load) cell.
    assert max(before) < 0.60
    assert min(before) < 0.30
    assert min(after) >= 0.35
    assert max(after) <= 0.92
    for series in TCP_SERIES:
        for clients in LOADS:
            improvement = (data["after"][(series, clients)] /
                           data["before"][(series, clients)])
            assert improvement > 1.15, (series, clients, improvement)
