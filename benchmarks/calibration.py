#!/usr/bin/env python
"""Cost-model calibration helper (not a test).

The single fitted target is UDP at 100 clients ≈ the paper's 33,695
ops/s; the working-set term is additionally checked against the UDP
decline at 1000 clients.  Everything else in Figs. 3–5 must *emerge*
from the architecture models.  Run this after touching
``repro.proxy.costs`` and compare:

    python benchmarks/calibration.py
"""

from repro.analysis import ExperimentSpec, run_cell
from repro.analysis.paper_data import PAPER_FIGURES


def main() -> None:
    print("calibration targets (UDP):")
    for clients in (100, 1000):
        result = run_cell(ExperimentSpec(series="udp", clients=clients))
        paper = PAPER_FIGURES["fig3"]["udp"][clients]
        print(f"  {clients:>5} clients: {result.throughput_ops_s:8.0f} "
              f"ops/s   paper {paper}   "
              f"({result.throughput_ops_s / paper * 100:.0f}%)")
    print("\nemergent spot checks (TCP persistent, baseline):")
    for clients in (100,):
        result = run_cell(ExperimentSpec(series="tcp-persistent",
                                         clients=clients))
        udp = run_cell(ExperimentSpec(series="udp", clients=clients))
        ratio = result.throughput_ops_s / udp.throughput_ops_s
        print(f"  {clients:>5} clients: ratio {ratio:.2f} "
              "(paper ~0.43; emergent, not fitted)")


if __name__ == "__main__":
    main()
